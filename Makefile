# Convenience targets for the dbwm reproduction.

PY ?= python
export PYTHONPATH := src:.

.PHONY: test bench bench-full bench-baseline artifacts lint

test:
	$(PY) -m pytest tests/ -q

# Static checks (ruff, config in pyproject.toml).  CI installs ruff;
# locally the target degrades to a no-op when ruff is unavailable.
lint:
	@$(PY) -m ruff --version >/dev/null 2>&1 \
		&& $(PY) -m ruff check src/ tests/ benchmarks/ examples/ \
		|| echo "ruff not installed; skipping lint (pip install ruff)"

# Quick perf-regression gate: scaled-down macro-scenarios, fails if any
# scenario runs >2x slower than the committed BENCH_core.json or if a
# seeded digest changed (determinism break).
bench:
	$(PY) -m benchmarks.perf

# Full macro-scenarios (the committed before/after record).
bench-full:
	$(PY) -m benchmarks.perf --mode full

# Re-record the committed baseline after an intentional perf change.
bench-baseline:
	$(PY) -m benchmarks.perf --update-baseline
	$(PY) -m benchmarks.perf --mode full --update-baseline

# Regenerate every paper artifact under benchmarks/results/.
artifacts:
	$(PY) -m pytest benchmarks/ -q
