# Convenience targets for the dbwm reproduction.

PY ?= python
export PYTHONPATH := src:.

.PHONY: test bench bench-full bench-parallel bench-placement bench-baseline bench-matcher bench-matcher-full bench-million bench-million-full bench-backend bench-backend-full bench-scenarios profile equivalence artifacts lint

test:
	$(PY) -m pytest tests/ -q

# Static checks (ruff, config in pyproject.toml).  CI installs ruff;
# locally the target degrades to a no-op when ruff is unavailable.
lint:
	@$(PY) -m ruff --version >/dev/null 2>&1 \
		&& $(PY) -m ruff check src/ tests/ benchmarks/ examples/ \
		|| echo "ruff not installed; skipping lint (pip install ruff)"

# Quick perf-regression gate: scaled-down macro-scenarios, fails if any
# scenario runs >2x slower than the committed BENCH_core.json or if a
# seeded digest changed (determinism break).
bench:
	$(PY) -m benchmarks.perf

# Full macro-scenarios (the committed before/after record).
bench-full:
	$(PY) -m benchmarks.perf --mode full

# Parallel == serial invariant: run the quick suite sharded over two
# worker processes; fails unless every reduced digest is bit-identical
# to the committed serial baseline.
bench-parallel:
	$(PY) -m benchmarks.perf --workers 2

# Placement-path micro-bench: eligible-node caching win at 16+ nodes.
bench-placement:
	$(PY) -m benchmarks.perf.micro_placement

# Push-vs-pull dispatch A/B at 64 nodes (heterogeneous speeds, churn
# waves, flash crowd): digest + wall gates against the matcher section
# of BENCH_core.json; writes the run's JSON for the CI bench artifact.
bench-matcher:
	$(PY) -m benchmarks.perf.matcher --mode ci --json-out bench-matcher.json

# The EXPERIMENTS.md numbers: 64 and 256 nodes at the full horizon.
bench-matcher-full:
	$(PY) -m benchmarks.perf.matcher --mode full

# CI-sized slice of the million-query macro-scenario: digest + wall
# gates against the committed million_query section of BENCH_core.json;
# writes the run's JSON for the CI bench artifact.
bench-million:
	$(PY) -m benchmarks.perf.million --mode ci --json-out bench-million.json

# The headline >= 1M submitted-query run (digest-gated, sharded over 8
# worker processes; digests are identical to a serial run).
bench-million-full:
	$(PY) -m benchmarks.perf.million --mode full --workers 8

# Real-backend macro-bench: >= 1,000 statements against in-process
# SQLite under rate control, trace-captured via QueryLog, with the
# sim-vs-real comparison (admission + throttling) and the calibration
# gate; plan digest checked against the backend section of
# BENCH_core.json.  Writes the run's JSON for the CI bench artifact.
bench-backend:
	$(PY) -m benchmarks.perf.backend --mode ci --json-out bench-backend.json

# Longer-horizon backend run (>= 6,000 statements, digest-gated).
bench-backend-full:
	$(PY) -m benchmarks.perf.backend --mode full

# Chaos-scenario survival matrix: every committed scenario under every
# isolation policy (plus leakage companions); digest + wall gates
# against the scenarios section of BENCH_core.json.  Writes the run's
# JSON for the CI bench artifact.
bench-scenarios:
	$(PY) -m benchmarks.perf.scenario_matrix --json-out bench-scenarios.json

# One-command hotspot profile: cProfile over a shortened high_mpl,
# top-25 cumulative functions (the kill-list workflow).
profile:
	$(PY) -m benchmarks.perf.profile

# Old-vs-new engine equivalence: run every macro-scenario in compat
# mode (scalar fill, no batch hooks) and default mode, compare outcome
# counters and digests (the committed re-baseline evidence).
equivalence:
	$(PY) -m benchmarks.perf.equivalence

# Re-record the committed baseline after an intentional perf change.
bench-baseline:
	$(PY) -m benchmarks.perf --update-baseline
	$(PY) -m benchmarks.perf --mode full --update-baseline

# Regenerate every paper artifact under benchmarks/results/, then
# re-run the JSON-emitting bench gates and collect their outputs there
# too, so one target leaves a complete, committable artifact set.
artifacts:
	$(PY) -m pytest benchmarks/ -q
	$(PY) -m benchmarks.perf.matcher --mode ci --json-out bench-matcher.json
	$(PY) -m benchmarks.perf.million --mode ci --json-out bench-million.json
	$(PY) -m benchmarks.perf.backend --mode ci --json-out bench-backend.json
	mkdir -p benchmarks/results
	$(PY) -m benchmarks.perf.scenario_matrix --json-out bench-scenarios.json \
		--report-out benchmarks/results/SURVIVAL_MATRIX.md
	mv bench-matcher.json bench-million.json bench-backend.json \
		bench-scenarios.json benchmarks/results/
