"""Figure rendering: the taxonomy tree and ASCII experiment charts.

:func:`render_figure1` reproduces the paper's Figure 1; the chart
helpers visualize validation-experiment series (throughput-vs-MPL
knees, controller convergence traces...) directly in terminal output so
the benchmark harness needs no plotting dependencies.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.core.taxonomy import TAXONOMY, render_tree


def render_figure1(annotate_descriptions: bool = False) -> str:
    """Figure 1: the taxonomy of workload-management techniques."""
    header = "FIGURE 1 — Taxonomy of Workload Management Techniques for DBMSs"
    tree = render_tree()
    if not annotate_descriptions:
        return f"{header}\n\n{tree}"
    lines = [header, "", tree, "", "Class definitions (paper §3):"]
    for node in TAXONOMY.walk():
        if node is TAXONOMY:
            continue
        lines.append(f"  {node.name} (§{node.paper_section}): {node.description}")
    return "\n".join(lines)


_MARKS = "*o+x#@%&"


def ascii_line_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more y-series against shared x-values.

    Each series gets a marker character; collisions show the later
    series' marker.  Intended for monotone-ish experiment curves, not
    precision graphics.
    """
    xs = list(xs)
    if not xs:
        raise ValueError("xs must be non-empty")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length != len(xs)")
    all_y = [y for ys in series.values() for y in ys if y == y]  # drop NaN
    if not all_y:
        raise ValueError("no plottable y values")
    y_min, y_max = min(all_y), max(all_y)
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max - x_min < 1e-12:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for x, y in zip(xs, ys):
            if y != y:
                continue
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"[{legend}]")
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(
        " " * label_width
        + " +"
        + "-" * width
    )
    lines.append(
        " " * label_width
        + f"  {x_min:.3g}"
        + f"{x_label} -> {x_max:.3g}".rjust(width - len(f"{x_min:.3g}"))
    )
    lines.append(f"({y_label} vs {x_label})")
    return "\n".join(lines)


def ascii_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart of labelled values."""
    if not values:
        raise ValueError("values must be non-empty")
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(name) for name in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in values.items():
        bar = "#" * max(0, int(round(abs(value) / peak * width)))
        lines.append(
            f"{name.rjust(label_width)} | {bar} {value:.4g}{unit}"
        )
    return "\n".join(lines)


def ascii_cluster_timeline(
    lanes: Mapping[str, str],
    horizon: float,
    title: str = "CLUSTER TIMELINE",
) -> str:
    """Render per-node load/health lanes as one labelled timeline.

    ``lanes`` maps node name to an equal-length character lane — load
    shading (`` .:-=+*#``) with health overlays ``x`` (down), ``~``
    (draining) and ``.`` (standby) — as produced by
    :meth:`repro.cluster.metrics.ClusterMetrics.timeline_lanes`.
    """
    if not lanes:
        raise ValueError("lanes must be non-empty")
    widths = {len(lane) for lane in lanes.values()}
    if len(widths) != 1:
        raise ValueError(f"lanes must share one width, got {sorted(widths)}")
    width = widths.pop()
    label_width = max(len(name) for name in lanes)
    lines: List[str] = [title] if title else []
    lines.append(
        " " * label_width
        + "  load: ' .:-=+*#' (running/MPL)   health: x=down ~=draining .=standby"
    )
    for name, lane in lanes.items():
        lines.append(f"{name.rjust(label_width)} |{lane}|")
    lines.append(" " * label_width + " +" + "-" * width + "+")
    left = "0s"
    right = f"{horizon:.0f}s"
    lines.append(
        " " * label_width + f"  {left}" + right.rjust(width - len(left))
    )
    return "\n".join(lines)
