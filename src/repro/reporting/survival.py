"""The taxonomy survival matrix: scenario × policy, rendered.

Consumes the summary dicts the scenario sweep produces
(:func:`repro.scenarios.runner.summarize_run`) and renders the
markdown/ASCII report: a top-level survival grid — per scenario ×
policy, how many tenant SLAs held — followed by per-scenario detail
tables (per-tenant ledger, p95 per class, rejections, isolation
leakage).  Pure string building over already-reduced data, so the
report is byte-identical whenever the sweep digest is.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _fmt(value: Optional[float], precision: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value:.{precision}f}"


def _fmt_leak(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.2f}x"


def tenant_leakage(
    summary: Dict[str, object], companion: Optional[Dict[str, object]]
) -> Dict[str, Optional[float]]:
    """Per-tenant isolation leakage against the companion run.

    Leakage is the worst per-workload p95 ratio between the run with
    the noisy tenants present and the companion run without them —
    1.0x means perfect isolation, 5x means the well-behaved tenant's
    tail latency quintupled because of its neighbors.  ``None`` when
    there is no companion (scenario has no noisy tenants) or no
    overlapping data.
    """
    out: Dict[str, Optional[float]] = {}
    tenants: Dict[str, dict] = summary["tenants"]  # type: ignore[assignment]
    if companion is None:
        return {name: None for name in tenants}
    base_tenants: Dict[str, dict] = companion["tenants"]  # type: ignore[assignment]
    for name, info in tenants.items():
        if info.get("noisy") or name not in base_tenants:
            out[name] = None
            continue
        worst: Optional[float] = None
        base_workloads = base_tenants[name]["workloads"]
        for label, workload in info["workloads"].items():
            p95 = workload.get("p95")
            base_p95 = base_workloads.get(label, {}).get("p95")
            if p95 is None or base_p95 is None or base_p95 <= 0:
                continue
            ratio = p95 / base_p95
            if worst is None or ratio > worst:
                worst = ratio
        out[name] = worst
    return out


def _sla_cell(summary: Dict[str, object]) -> str:
    met = total = 0
    for info in summary["tenants"].values():  # type: ignore[union-attr]
        met += info["sla_met"]
        total += info["sla_total"]
    if total == 0:
        return "no SLAs"
    mark = "OK" if met == total else "BREACH"
    return f"{met}/{total} SLA {mark}"


def render_survival_matrix(
    scenarios: Sequence[str],
    policies: Sequence[str],
    cells: Dict[tuple, Dict[str, object]],
    leakage: Dict[tuple, Dict[str, Optional[float]]],
) -> str:
    """The top-level markdown grid: one row per scenario."""
    lines = [
        "| scenario | " + " | ".join(policies) + " |",
        "|---" * (len(policies) + 1) + "|",
    ]
    for scenario in scenarios:
        row = [scenario]
        for policy in policies:
            summary = cells.get((scenario, policy))
            if summary is None:
                row.append("-")
                continue
            cell = _sla_cell(summary)
            leaks = [
                value
                for value in leakage.get((scenario, policy), {}).values()
                if value is not None
            ]
            if leaks:
                cell += f", leak {_fmt_leak(max(leaks))}"
            row.append(cell)
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_scenario_detail(
    summary: Dict[str, object],
    leakage: Dict[str, Optional[float]],
) -> str:
    """One scenario × policy detail block: the per-tenant table."""
    header = (
        f"{'tenant':<10} {'intake':>7} {'done':>7} {'rej':>6} {'kill':>5} "
        f"{'quota-rej':>9} {'p95 (per class)':<26} {'SLA':<8} {'leak':>6}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(summary["tenants"]):  # type: ignore[call-overload]
        info = summary["tenants"][name]  # type: ignore[index]
        p95s = ", ".join(
            f"{label}={_fmt(workload['p95'])}"
            for label, workload in sorted(info["workloads"].items())
        )
        if info["sla_total"]:
            verdict = (
                "MET"
                if info["sla_met"] == info["sla_total"]
                else f"MISS {info['sla_total'] - info['sla_met']}"
            )
        else:
            verdict = "-"
        rejected = info["rejected"]
        tag = " (noisy)" if info.get("noisy") else ""
        lines.append(
            f"{name + tag:<10} {info['intake']:>7} {info['completed']:>7} "
            f"{rejected:>6} {info['killed']:>5} "
            f"{info['quota_rejections']:>9} {p95s:<26.26} {verdict:<8} "
            f"{_fmt_leak(leakage.get(name)):>6}"
        )
    return "\n".join(lines)


def render_survival_report(
    scenarios: Sequence[str],
    policies: Sequence[str],
    cells: Dict[tuple, Dict[str, object]],
    leakage: Dict[tuple, Dict[str, Optional[float]]],
    digest: str = "",
    title: str = "Scenario survival matrix",
) -> str:
    """The full report: the grid plus every detail block."""
    parts: List[str] = [f"# {title}", ""]
    if digest:
        parts.append(f"Matrix digest: `{digest}`")
        parts.append("")
    parts.append(
        "Cells: tenant SLAs met / declared; `leak` is the worst "
        "well-behaved-tenant p95 ratio vs. the same run without its "
        "noisy neighbors (1.00x = perfect isolation)."
    )
    parts.append("")
    parts.append(
        render_survival_matrix(scenarios, policies, cells, leakage)
    )
    for scenario in scenarios:
        for policy in policies:
            summary = cells.get((scenario, policy))
            if summary is None:
                continue
            parts.append("")
            parts.append(f"## {scenario} × {policy}")
            parts.append("")
            parts.append("```")
            parts.append(
                render_scenario_detail(
                    summary, leakage.get((scenario, policy), {})
                )
            )
            parts.append("```")
    parts.append("")
    return "\n".join(parts)
