"""Rendering of the paper's tables and figures, plus experiment charts.

* :mod:`repro.reporting.tables` — regenerates Tables 1–5 from the
  registry + classification engine as aligned text tables;
* :mod:`repro.reporting.figures` — renders Figure 1 (the taxonomy tree)
  and ASCII charts for the validation experiments.
"""

from repro.reporting.tables import (
    TextTable,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    all_tables,
)
from repro.reporting.figures import (
    render_figure1,
    ascii_line_chart,
    ascii_bar_chart,
)

__all__ = [
    "TextTable",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "all_tables",
    "render_figure1",
    "ascii_line_chart",
    "ascii_bar_chart",
]
