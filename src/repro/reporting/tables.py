"""Regenerate the paper's Tables 1–5 as aligned text tables.

Every table is *derived*: Table 1 from the :class:`ControlType`
descriptors, Tables 2/3 from the approach registry, and Tables 4/5 by
running the classification engine over the system/technique feature
descriptors — so the reproduction asserts that our classifier agrees
with the paper's §4.1.4/§4.2.5 conclusions, rather than copying them.
"""

from __future__ import annotations

import textwrap
from typing import List, Sequence

from repro.core.classify import classify_descriptor, major_classes_of
from repro.core.registry import (
    ADMISSION_APPROACHES,
    COMMERCIAL_SYSTEMS,
    CONTROL_TYPES,
    EXECUTION_APPROACHES,
    RESEARCH_TECHNIQUES,
    ApproachDescriptor,
)


class TextTable:
    """Minimal aligned text table with word-wrapped cells."""

    def __init__(self, headers: Sequence[str], widths: Sequence[int]) -> None:
        if len(headers) != len(widths):
            raise ValueError("headers and widths must align")
        self.headers = list(headers)
        self.widths = list(widths)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: str) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def _render_row(self, cells: Sequence[str]) -> List[str]:
        wrapped = [
            textwrap.wrap(
                cell, width, break_on_hyphens=False, break_long_words=True
            )
            or [""]
            for cell, width in zip(cells, self.widths)
        ]
        height = max(len(lines) for lines in wrapped)
        out = []
        for line_index in range(height):
            parts = []
            for lines, width in zip(wrapped, self.widths):
                text = lines[line_index] if line_index < len(lines) else ""
                parts.append(text.ljust(width))
            out.append("| " + " | ".join(parts) + " |")
        return out

    def render(self, title: str = "") -> str:
        separator = (
            "+" + "+".join("-" * (width + 2) for width in self.widths) + "+"
        )
        lines: List[str] = []
        if title:
            lines.append(title)
        lines.append(separator)
        lines.extend(self._render_row(self.headers))
        lines.append(separator)
        for row in self.rows:
            lines.extend(self._render_row(row))
            lines.append(separator)
        return "\n".join(lines)


def _classes_text(descriptor: ApproachDescriptor, majors_only: bool) -> str:
    if majors_only:
        classes = major_classes_of(descriptor)
    else:
        classes = classify_descriptor(descriptor)
    return ", ".join(cls.display_name for cls in classes)


def render_table1() -> str:
    """Table 1: three types of controls in a workload-management process."""
    table = TextTable(
        ["Control Type", "Description", "Control Point", "Associated Policy"],
        [18, 34, 24, 28],
    )
    for control in CONTROL_TYPES:
        table.add_row(
            control.value,
            control.description,
            control.control_point,
            control.associated_policy,
        )
    return table.render(
        "TABLE 1 — Three Types of Controls in a Workload Management Process"
    )


def render_table2() -> str:
    """Table 2: approaches used for workload admission control."""
    table = TextTable(
        ["Threshold", "Type", "Description", "Taxonomy Class"],
        [16, 14, 40, 24],
    )
    for descriptor in ADMISSION_APPROACHES:
        table.add_row(
            f"{descriptor.name} {descriptor.citation}",
            descriptor.threshold_basis,
            descriptor.mechanism,
            _classes_text(descriptor, majors_only=False),
        )
    return table.render(
        "TABLE 2 — Summary of the Approaches Used for Workload Admission Control"
    )


def render_table3() -> str:
    """Table 3: approaches used for workload execution control."""
    table = TextTable(
        ["Approach", "Type", "Description", "Taxonomy Class"],
        [20, 16, 38, 24],
    )
    for descriptor in EXECUTION_APPROACHES:
        table.add_row(
            f"{descriptor.name} {descriptor.citation}",
            descriptor.threshold_basis,
            descriptor.mechanism,
            _classes_text(descriptor, majors_only=False),
        )
    return table.render(
        "TABLE 3 — Summary of the Approaches Used for Workload Execution Control"
    )


def render_table4() -> str:
    """Table 4: the commercial systems, classified by the taxonomy."""
    table = TextTable(
        [
            "Workload Management System",
            "Identified Technique Classes (derived)",
            "Mechanisms",
        ],
        [26, 34, 40],
    )
    for descriptor in COMMERCIAL_SYSTEMS:
        table.add_row(
            f"{descriptor.name} {descriptor.citation}",
            _classes_text(descriptor, majors_only=False),
            descriptor.mechanism,
        )
    return table.render("TABLE 4 — Summary of the Workload Management Systems")


def render_table5() -> str:
    """Table 5: the research techniques, classified by the taxonomy."""
    table = TextTable(
        ["Proposed Technique", "Technique Classes (derived)", "Features", "Objectives"],
        [20, 26, 34, 26],
    )
    for descriptor in RESEARCH_TECHNIQUES:
        table.add_row(
            f"{descriptor.name} {descriptor.citation}",
            _classes_text(descriptor, majors_only=False),
            descriptor.mechanism,
            descriptor.objective,
        )
    return table.render("TABLE 5 — Summary of the Workload Management Techniques")


def all_tables() -> str:
    """All five tables, ready to print."""
    return "\n\n".join(
        [
            render_table1(),
            render_table2(),
            render_table3(),
            render_table4(),
            render_table5(),
        ]
    )
