"""The Niu et al. query scheduler [60] (paper §4.2.1, Table 5).

The scheduler intercepts arriving queries, classifies them by service
class (workload), and periodically generates a *scheduling plan*: a
cost limit per service class — "the allowable total cost of all
concurrently running queries belonging to the service class".  Utility
functions estimate how effective a candidate cost limit will be in
achieving each class's performance goal; an analytical model predicts
the performance a plan would deliver; the plan maximizing total utility
is applied.  Queued queries of a class are released while the class's
in-flight estimated cost stays below its limit.

Concrete model used here (§4.2.1's structure with explicit math):

* demand rate of class ``c``: ``rho_c = lambda_c * w_c`` (measured
  arrival rate × mean estimated work) in device-seconds per second;
* a plan allocates the machine's work capacity ``C`` (total
  device-units) among classes; the analytical model predicts a class's
  mean response time as ``w_c / min(1, alloc_c / rho_c)`` scaled by the
  unloaded duration — i.e. a fluid model: service dilates by the
  fraction of demanded capacity granted;
* per-class utility: ``importance_c * min(1, goal_c / predicted_rt_c)``
  — 1 while the goal is met, falling as the class misses it;
* the plan is found by greedy marginal-utility water-filling over
  capacity quanta (the objective-function maximization of [60]);
* cost limits: ``limit_c = alloc_c * outstanding_window`` device-seconds
  of estimated work allowed in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.classify import Feature
from repro.core.interfaces import ManagerContext, Scheduler
from repro.engine.query import Query

#: Utility saturates here: no extra utility for beating the goal.
_UTILITY_CAP = 1.0


@dataclass
class ServiceClassConfig:
    """Goal and importance of one service class (workload)."""

    workload: str
    response_time_goal: float
    importance: int = 1

    def __post_init__(self) -> None:
        if self.response_time_goal <= 0:
            raise ValueError("response_time_goal must be positive")
        if self.importance < 1:
            raise ValueError("importance must be >= 1")


@dataclass
class _ClassState:
    config: ServiceClassConfig
    queue: List[Query] = field(default_factory=list)
    arrivals: int = 0
    total_estimated_work: float = 0.0
    cost_limit: float = float("inf")
    allocation: float = 0.0

    def mean_work(self) -> float:
        if self.arrivals == 0:
            return 1.0
        return max(self.total_estimated_work / self.arrivals, 1e-6)


class UtilityScheduler(Scheduler):
    """Cost-limit scheduling plans maximizing total utility [60]."""

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_ARRIVAL,
            Feature.ACTS_BEFORE_EXECUTION,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_SYSTEM_PARAMETER,
            Feature.DETERMINES_EXECUTION_ORDER,
            Feature.MANAGES_WAIT_QUEUES,
            Feature.USES_UTILITY_FUNCTIONS,
            Feature.PREDICTS_MPL,
        }
    )

    def __init__(
        self,
        service_classes: List[ServiceClassConfig],
        replan_interval: float = 5.0,
        outstanding_window: float = 8.0,
        rate_window: float = 30.0,
        quanta: int = 200,
    ) -> None:
        if not service_classes:
            raise ValueError("need at least one service class")
        self.replan_interval = replan_interval
        self.outstanding_window = outstanding_window
        self.rate_window = rate_window
        self.quanta = quanta
        self._classes: Dict[str, _ClassState] = {
            cfg.workload: _ClassState(config=cfg) for cfg in service_classes
        }
        self._default = _ClassState(
            config=ServiceClassConfig(
                workload="<unassigned>", response_time_goal=60.0, importance=1
            )
        )
        self._arrival_times: Dict[str, List[float]] = {
            name: [] for name in self._classes
        }
        self.plans_generated = 0
        self.plan_history: List[Tuple[float, Dict[str, float]]] = []

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def attach(self, context: ManagerContext) -> None:
        context.sim.schedule_periodic(
            self.replan_interval,
            lambda: self._replan(context),
            start=0.0,
            label="utility-scheduler:replan",
        )

    def _state_for(self, query: Query) -> _ClassState:
        if query.workload_name in self._classes:
            return self._classes[query.workload_name]
        return self._default

    def enqueue(self, query: Query, context: ManagerContext) -> None:
        state = self._state_for(query)
        state.queue.append(query)
        state.arrivals += 1
        state.total_estimated_work += query.estimated_cost.total_work
        times = self._arrival_times.setdefault(state.config.workload, [])
        times.append(context.now)

    def next_batch(self, context: ManagerContext) -> List[Query]:
        in_flight = self._in_flight_costs(context)
        batch: List[Query] = []
        states = sorted(
            self._all_states(),
            key=lambda s: s.config.importance,
            reverse=True,
        )
        progressed = True
        while progressed:
            progressed = False
            for state in states:
                if not state.queue:
                    continue
                name = state.config.workload
                head = state.queue[0]
                cost = head.estimated_cost.total_work
                if in_flight.get(name, 0.0) + cost <= state.cost_limit:
                    state.queue.pop(0)
                    batch.append(head)
                    in_flight[name] = in_flight.get(name, 0.0) + cost
                    progressed = True
        if not batch and context.engine.running_count == 0:
            # Work conservation: never idle the machine while work waits.
            for state in states:
                if state.queue:
                    batch.append(state.queue.pop(0))
                    break
        return batch

    def queued_count(self) -> int:
        return sum(len(s.queue) for s in self._all_states())

    def queued_queries(self) -> List[Query]:
        return [q for s in self._all_states() for q in s.queue]

    def remove(self, query_id: int) -> Optional[Query]:
        for state in self._all_states():
            for index, query in enumerate(state.queue):
                if query.query_id == query_id:
                    return state.queue.pop(index)
        return None

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _all_states(self) -> List[_ClassState]:
        return list(self._classes.values()) + [self._default]

    def _in_flight_costs(self, context: ManagerContext) -> Dict[str, float]:
        costs: Dict[str, float] = {}
        for query in context.engine.running_queries():
            name = (
                query.workload_name
                if query.workload_name in self._classes
                else "<unassigned>"
            )
            costs[name] = costs.get(name, 0.0) + query.estimated_cost.total_work
        return costs

    def _arrival_rate(self, workload: str, now: float) -> float:
        times = self._arrival_times.get(workload, [])
        cutoff = now - self.rate_window
        recent = [t for t in times if t >= cutoff]
        self._arrival_times[workload] = recent
        # clamp the divisor away from zero so a burst at t=0 does not
        # read as an infinite arrival rate
        window = min(self.rate_window, max(now, 1.0))
        return len(recent) / window

    def predicted_response_time(
        self, state: _ClassState, allocation: float, now: float
    ) -> float:
        """Analytical model: service dilation by granted capacity share."""
        rate = self._arrival_rate(state.config.workload, now)
        mean_work = state.mean_work()
        demand = rate * mean_work
        if demand <= 1e-9:
            return mean_work / 2.0  # unloaded: nominal duration-ish
        granted = min(1.0, allocation / demand)
        if granted <= 1e-9:
            return float("inf")
        return (mean_work / 2.0) / granted

    def _utility(self, state: _ClassState, allocation: float, now: float) -> float:
        predicted = self.predicted_response_time(state, allocation, now)
        if predicted <= 0:
            return state.config.importance * _UTILITY_CAP
        ratio = state.config.response_time_goal / predicted
        return state.config.importance * min(_UTILITY_CAP, ratio)

    def _replan(self, context: ManagerContext) -> None:
        machine = context.engine.machine
        capacity = machine.cpu_capacity + machine.disk_capacity
        quantum = capacity / self.quanta
        allocations = {s.config.workload: 0.0 for s in self._all_states()}
        now = context.now
        states = self._all_states()
        for _ in range(self.quanta):
            best_state = None
            best_gain = 0.0
            for state in states:
                name = state.config.workload
                gain = self._utility(
                    state, allocations[name] + quantum, now
                ) - self._utility(state, allocations[name], now)
                if gain > best_gain + 1e-12:
                    best_gain, best_state = gain, state
            if best_state is None:
                break
            allocations[best_state.config.workload] += quantum
        leftover = capacity - sum(allocations.values())
        if leftover > 0:
            # spread slack by importance so spare capacity is not wasted
            total_importance = sum(s.config.importance for s in states)
            for state in states:
                allocations[state.config.workload] += (
                    leftover * state.config.importance / total_importance
                )
        for state in states:
            name = state.config.workload
            state.allocation = allocations[name]
            state.cost_limit = allocations[name] * self.outstanding_window
        self.plans_generated += 1
        self.plan_history.append(
            (now, {name: round(a, 3) for name, a in allocations.items()})
        )
        if context.manager is not None:
            context.manager.pump()
