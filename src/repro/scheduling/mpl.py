"""Dynamic multiprogramming-level (MPL) determination (paper §3.3).

"Request scheduling aims to dynamically set MPLs ... to decide which
and how many requests can be sent to the database to execute
concurrently."  Two surveyed families:

* **analytical** (:class:`QueueingModelMpl`) — queueing-network-style
  bounds [35][40][69]: saturate the bottleneck device without
  oversubscribing memory.  With per-request demand vector ``(cpu, io,
  mem)`` the bottleneck saturates at ``N* = total demand / bottleneck
  demand`` concurrent requests, and memory fits ``M / mem`` requests;
  the model takes the min (times a safety factor).
* **feedback** (:class:`FeedbackMpl`) — model-free hill climbing on
  observed throughput, the control-theoretic approach of [17][28]
  applied to the MPL knob (same algorithm as Heiss & Wagner admission,
  but living at the scheduler's dispatch point).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.core.interfaces import ManagerContext
from repro.engine.query import Query


class MplController(abc.ABC):
    """Supplies the current concurrency limit to a scheduler."""

    @abc.abstractmethod
    def current_limit(self, context: ManagerContext) -> Optional[int]:
        """Max concurrently running requests (None = unlimited)."""

    def attach(self, context: ManagerContext) -> None:
        """Optional hook for periodic measurement."""

    def notify_completion(self) -> None:
        """Optional hook: a request completed (feedback controllers)."""


class StaticMpl(MplController):
    """A fixed MPL — the manual threshold the paper calls "static"."""

    def __init__(self, limit: Optional[int]) -> None:
        if limit is not None and limit < 1:
            raise ValueError("limit must be >= 1 or None")
        self.limit = limit

    def current_limit(self, context: ManagerContext) -> Optional[int]:
        return self.limit


class QueueingModelMpl(MplController):
    """Analytical MPL from demand vectors of the current work mix.

    The estimate is refreshed on every call from the running + queued
    queries' *estimated* costs (the scheduler never sees true costs):

    * bottleneck bound: ``N_rate = sum_r capacity_r / demand_bottleneck``
      where the per-request bottleneck demand uses mean estimated costs;
    * memory bound: ``N_mem = memory_capacity / mean estimated memory``.

    ``utilization_target`` scales the rate bound (running right at 100%
    leaves no slack for estimate error); ``floor``/``ceiling`` clamp.
    """

    def __init__(
        self,
        utilization_target: float = 1.0,
        memory_headroom: float = 1.0,
        floor: int = 1,
        ceiling: int = 500,
    ) -> None:
        if not 0 < utilization_target <= 2.0:
            raise ValueError("utilization_target must be in (0, 2]")
        self.utilization_target = utilization_target
        self.memory_headroom = memory_headroom
        self.floor = floor
        self.ceiling = ceiling

    def _mean_costs(self, queries: List[Query]) -> Tuple[float, float, float]:
        if not queries:
            return 0.0, 0.0, 0.0
        n = len(queries)
        cpu = sum(q.estimated_cost.cpu_seconds for q in queries) / n
        io = sum(q.estimated_cost.io_seconds for q in queries) / n
        mem = sum(q.estimated_cost.memory_mb for q in queries) / n
        return cpu, io, mem

    def current_limit(self, context: ManagerContext) -> Optional[int]:
        sample = context.engine.running_queries()
        manager = context.manager
        if manager is not None and hasattr(manager.scheduler, "queued_queries"):
            sample = sample + manager.scheduler.queued_queries()  # type: ignore[attr-defined]
        cpu, io, mem = self._mean_costs(sample)
        if cpu <= 0 and io <= 0:
            return self.ceiling
        machine = context.engine.machine
        bottleneck = max(cpu / machine.cpu_capacity, io / machine.disk_capacity)
        duration = max(cpu, io)
        if bottleneck <= 0:
            rate_bound = self.ceiling
        else:
            # N requests of duration `duration` each put `cpu` (resp `io`)
            # device-seconds on the machine per `duration` seconds; the
            # bottleneck saturates at duration/bottleneck-demand-share.
            rate_bound = self.utilization_target * duration / bottleneck
        if mem > 0:
            mem_bound = (
                self.memory_headroom * machine.memory_mb / mem
            )
        else:
            mem_bound = self.ceiling
        limit = int(min(rate_bound, mem_bound))
        return max(self.floor, min(self.ceiling, limit))


class FeedbackMpl(MplController):
    """Hill-climbing MPL from observed completion throughput.

    The scheduler calls :meth:`notify_completion` per finished request;
    :meth:`attach` arms the periodic adjustment.
    """

    def __init__(
        self,
        initial: int = 8,
        minimum: int = 1,
        maximum: int = 200,
        interval: float = 5.0,
        step: int = 2,
        hysteresis: float = 0.02,
    ) -> None:
        if not minimum <= initial <= maximum:
            raise ValueError("need minimum <= initial <= maximum")
        self.limit = initial
        self.minimum = minimum
        self.maximum = maximum
        self.interval = interval
        self.step = step
        self.hysteresis = hysteresis
        self._direction = 1
        self._completions = 0
        self._last_throughput: Optional[float] = None
        self.history: List[Tuple[float, int]] = []

    def attach(self, context: ManagerContext) -> None:
        context.sim.schedule_periodic(
            self.interval, lambda: self._adjust(context), label="feedback-mpl"
        )
        self.history.append((context.now, self.limit))

    def notify_completion(self) -> None:
        self._completions += 1

    def current_limit(self, context: ManagerContext) -> Optional[int]:
        return self.limit

    def _adjust(self, context: ManagerContext) -> None:
        throughput = self._completions / self.interval
        self._completions = 0
        if self._last_throughput is not None:
            reference = max(self._last_throughput, 1e-9)
            if (throughput - self._last_throughput) / reference < -self.hysteresis:
                self._direction = -self._direction
        self._last_throughput = throughput
        self.limit = int(
            min(self.maximum, max(self.minimum, self.limit + self._direction * self.step))
        )
        self.history.append((context.now, self.limit))
