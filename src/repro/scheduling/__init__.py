"""Scheduling techniques (paper §3.3, Figure 1 scheduling class).

* :mod:`repro.scheduling.queues` — wait-queue management: FCFS,
  priority, shortest-job-first and per-workload multi-queue dispatch
  with static or controller-driven MPLs;
* :mod:`repro.scheduling.mpl` — dynamic MPL determination: analytical
  queueing-model bounds [35][40][69] and feedback hill-climbing [17][28];
* :mod:`repro.scheduling.utility` — the Niu et al. query scheduler:
  per-class cost limits chosen by utility functions under an analytical
  performance model [60];
* :mod:`repro.scheduling.batch` — batch-order optimization with rank
  functions (WSPT) and interaction-aware memory packing [2][24];
* :mod:`repro.scheduling.restructuring` — query slicing: large queries
  are decomposed into serial slices scheduled individually [6][36][54].
"""

from repro.scheduling.queues import (
    FCFSScheduler,
    PriorityScheduler,
    ShortestJobFirstScheduler,
    MultiQueueScheduler,
    TenantShareScheduler,
    tenant_mpl_caps,
)
from repro.scheduling.mpl import (
    MplController,
    StaticMpl,
    QueueingModelMpl,
    FeedbackMpl,
)
from repro.scheduling.utility import UtilityScheduler, ServiceClassConfig
from repro.scheduling.batch import wspt_order, interaction_aware_order, BatchScheduler
from repro.scheduling.restructuring import RestructuringScheduler

__all__ = [
    "FCFSScheduler",
    "PriorityScheduler",
    "ShortestJobFirstScheduler",
    "MultiQueueScheduler",
    "TenantShareScheduler",
    "tenant_mpl_caps",
    "MplController",
    "StaticMpl",
    "QueueingModelMpl",
    "FeedbackMpl",
    "UtilityScheduler",
    "ServiceClassConfig",
    "wspt_order",
    "interaction_aware_order",
    "BatchScheduler",
    "RestructuringScheduler",
]
