"""Batch-order optimization (paper §3.3, [2][24]).

For report-generation batch workloads the scheduler sees all requests
at once and picks an execution order.  Two surveyed flavours:

* **rank functions** [24] — order by a scalar rank; we provide weighted
  shortest processing time (WSPT: rank = estimated work / weight),
  which is the optimal order for weighted total completion time on a
  single resource and is the canonical "fair, effective, efficient and
  differentiated" rank;
* **interaction-aware ordering** [2] — queries interact through shared
  memory: co-scheduling several memory-heavy queries causes spill.
  The greedy variant interleaves memory-heavy and memory-light queries
  so no dispatch window oversubscribes the pool.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.interfaces import ManagerContext, Scheduler
from repro.engine.query import Query
from repro.scheduling.queues import MplLike, _as_controller


def wspt_order(queries: Sequence[Query]) -> List[Query]:
    """Weighted-shortest-processing-time order (rank = work / priority).

    Minimizes sum of priority-weighted completion times for serial
    execution; a strong heuristic under processor sharing too.
    """
    return sorted(
        queries,
        key=lambda q: (
            q.estimated_cost.total_work / max(q.priority, 1),
            q.query_id,
        ),
    )


def optimal_order_exhaustive(queries: Sequence[Query]) -> List[Query]:
    """Exact minimum-weighted-completion-time order by enumeration.

    Serial-execution model: completing in order ``q1..qn`` costs
    ``sum_i priority_i * (work_1 + ... + work_i)``.  Exponential in the
    batch size (guarded at 9), so this exists to *validate* the WSPT
    rank function, not to schedule production batches — Smith's rule
    says :func:`wspt_order` attains the same objective value.
    """
    queries = list(queries)
    if len(queries) > 9:
        raise ValueError("exhaustive search is limited to 9 queries")
    import itertools

    best = min(itertools.permutations(queries), key=weighted_completion_time)
    return list(best)


def weighted_completion_time(order: Sequence[Query]) -> float:
    """Objective value of a serial execution order (see above)."""
    elapsed = 0.0
    total = 0.0
    for query in order:
        elapsed += query.estimated_cost.total_work
        total += max(query.priority, 1) * elapsed
    return total


def interaction_aware_order(
    queries: Sequence[Query],
    memory_capacity_mb: float,
    window: int = 4,
) -> List[Query]:
    """Greedy interaction-aware ordering over memory footprints [2].

    Builds the sequence window by window: each window of size ``window``
    (≈ expected co-runners) is filled starting from the WSPT order while
    keeping the window's total memory within ``memory_capacity_mb`` when
    possible — memory-heavy queries get spread across windows instead of
    clustering and causing spill.
    """
    remaining = wspt_order(queries)
    ordered: List[Query] = []
    while remaining:
        window_queries: List[Query] = []
        window_memory = 0.0
        index = 0
        while index < len(remaining) and len(window_queries) < window:
            query = remaining[index]
            memory = query.estimated_cost.memory_mb
            if (
                window_memory + memory <= memory_capacity_mb
                or not window_queries
            ):
                window_queries.append(query)
                window_memory += memory
                remaining.pop(index)
            else:
                index += 1
        ordered.extend(window_queries)
    return ordered


class BatchScheduler(Scheduler):
    """Dispatch a (re)orderable queue under an MPL.

    ``order_fn`` re-sorts the whole queue on every enqueue — fine for
    batch workloads, where the queue is long-lived and the point *is*
    the order.
    """

    def __init__(
        self,
        order_fn: Optional[Callable[[Sequence[Query]], List[Query]]] = None,
        mpl: MplLike = 4,
    ) -> None:
        self.order_fn = order_fn or wspt_order
        self.mpl = _as_controller(mpl)
        self._queue: List[Query] = []

    def attach(self, context: ManagerContext) -> None:
        self.mpl.attach(context)
        context.engine.on_exit(lambda q, o: self.mpl.notify_completion())

    def enqueue(self, query: Query, context: ManagerContext) -> None:
        self._queue.append(query)
        self._queue = self.order_fn(self._queue)

    def next_batch(self, context: ManagerContext) -> List[Query]:
        limit = self.mpl.current_limit(context)
        batch: List[Query] = []
        running = context.engine.running_count
        while self._queue:
            if limit is not None and running + len(batch) >= limit:
                break
            batch.append(self._queue.pop(0))
        return batch

    def queued_count(self) -> int:
        return len(self._queue)

    def queued_queries(self) -> List[Query]:
        return list(self._queue)

    def remove(self, query_id: int) -> Optional[Query]:
        for index, query in enumerate(self._queue):
            if query.query_id == query_id:
                return self._queue.pop(index)
        return None
