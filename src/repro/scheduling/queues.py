"""Wait-queue management schedulers (paper §3.3, queue management).

"After passing through an admission control (if any), requests are
placed in a wait queue or classified into multiple wait queues
according to their performance objectives and/or business priorities.
A scheduler then orders requests from the wait queue(s)."

Disciplines provided:

* :class:`FCFSScheduler` — arrival order (the baseline);
* :class:`PriorityScheduler` — business priority, FIFO within a level;
* :class:`ShortestJobFirstScheduler` — estimated work order (the
  simplest rank function of [24]);
* :class:`MultiQueueScheduler` — one queue per workload with
  per-workload MPLs plus a global MPL (Teradata-style object throttles).

Every scheduler takes its global MPL either as an int (static
threshold) or as an :class:`~repro.scheduling.mpl.MplController`
(dynamic determination — the paper's criticism of static thresholds is
exactly that they cannot adapt).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Union

from repro.core.interfaces import ManagerContext, Scheduler
from repro.engine.query import Query
from repro.scheduling.mpl import MplController, StaticMpl

MplLike = Union[None, int, MplController]


def _as_controller(mpl: MplLike) -> MplController:
    if isinstance(mpl, MplController):
        return mpl
    return StaticMpl(mpl)


def _attach_mpl_feedback(
    scheduler: Scheduler, mpl: MplController, context: ManagerContext
) -> None:
    """Register the engine-exit → ``mpl.notify_completion`` feedback once.

    ``attach`` runs again whenever a scheduler is re-attached (manager
    rebuild, scheduler swap, node reactivation).  Registering a fresh
    listener each time would double-count completions in dynamic MPL
    controllers (:class:`~repro.scheduling.mpl.FeedbackMpl` would see
    2x, 3x… throughput), so the engines already hooked are remembered
    and only a *new* engine gets a listener.
    """
    hooked = getattr(scheduler, "_mpl_hooked_engines", None)
    if hooked is None:
        hooked = scheduler._mpl_hooked_engines = []
    engine = context.engine
    if any(seen is engine for seen in hooked):
        return
    hooked.append(engine)
    engine.on_exit(lambda q, o: mpl.notify_completion())


class _QueueSchedulerBase(Scheduler):
    """Shared machinery: a reorderable queue + an MPL controller."""

    def __init__(self, mpl: MplLike = None) -> None:
        self._queue: List[Query] = []
        self.mpl = _as_controller(mpl)
        self.dispatched_count = 0

    # -- Scheduler interface -------------------------------------------
    def attach(self, context: ManagerContext) -> None:
        """Idempotent per engine: safe to call on every re-attach."""
        self.mpl.attach(context)
        _attach_mpl_feedback(self, self.mpl, context)

    def enqueue(self, query: Query, context: ManagerContext) -> None:
        self._insert(query)

    def next_batch(self, context: ManagerContext) -> List[Query]:
        limit = self.mpl.current_limit(context)
        batch: List[Query] = []
        running = context.engine.running_count
        while self._queue:
            if limit is not None and running + len(batch) >= limit:
                break
            batch.append(self._pop_next(context))
        self.dispatched_count += len(batch)
        return batch

    def queued_count(self) -> int:
        return len(self._queue)

    def queued_queries(self) -> List[Query]:
        return list(self._queue)

    def remove(self, query_id: int) -> Optional[Query]:
        for index, query in enumerate(self._queue):
            if query.query_id == query_id:
                return self._queue.pop(index)
        return None

    # -- discipline hooks ----------------------------------------------
    def _insert(self, query: Query) -> None:
        self._queue.append(query)

    def _pop_next(self, context: ManagerContext) -> Query:
        return self._queue.pop(0)


class FCFSScheduler(_QueueSchedulerBase):
    """First-come-first-served dispatch under an MPL.

    Stores its queue in a deque: FCFS only ever pops the head, and the
    list-based ``pop(0)`` the base class uses is O(queue length) — a
    real cost in backlogged scenarios where thousands of requests wait.
    """

    def __init__(self, mpl: MplLike = None) -> None:
        super().__init__(mpl)
        self._queue: deque = deque()

    def _pop_next(self, context: ManagerContext) -> Query:
        return self._queue.popleft()

    def queued_queries(self) -> List[Query]:
        return list(self._queue)

    def remove(self, query_id: int) -> Optional[Query]:
        for index, query in enumerate(self._queue):
            if query.query_id == query_id:
                del self._queue[index]
                return query
        return None


class PriorityScheduler(_QueueSchedulerBase):
    """Higher business priority first; FIFO within a priority level."""

    def _pop_next(self, context: ManagerContext) -> Query:
        best_index = 0
        best_priority = self._queue[0].priority
        for index, query in enumerate(self._queue[1:], start=1):
            if query.priority > best_priority:
                best_index, best_priority = index, query.priority
        return self._queue.pop(best_index)


class ShortestJobFirstScheduler(_QueueSchedulerBase):
    """Smallest estimated total work first (starvation-prone by design —
    the experiments show why rank functions blend in wait time)."""

    def __init__(self, mpl: MplLike = None, aging_weight: float = 0.0) -> None:
        super().__init__(mpl)
        self.aging_weight = aging_weight

    def _rank(self, query: Query, now: float) -> float:
        submit = query.submit_time if query.submit_time is not None else now
        return query.estimated_cost.total_work - self.aging_weight * (now - submit)

    def _pop_next(self, context: ManagerContext) -> Query:
        now = context.now
        best_index = min(
            range(len(self._queue)),
            key=lambda i: (self._rank(self._queue[i], now), i),
        )
        return self._queue.pop(best_index)


class MultiQueueScheduler(Scheduler):
    """One wait queue per workload, per-workload MPLs, global MPL.

    Dispatch sweeps workloads by descending priority; within a workload
    FIFO.  This is the structure of Teradata's workload-definition
    concurrency throttles and DB2's concurrent-activities thresholds.
    """

    def __init__(
        self,
        global_mpl: MplLike = None,
        per_workload_mpl: Optional[Dict[str, int]] = None,
        default_workload_mpl: Optional[int] = None,
    ) -> None:
        self.global_mpl = _as_controller(global_mpl)
        self.per_workload_mpl = dict(per_workload_mpl or {})
        self.default_workload_mpl = default_workload_mpl
        self._queues: Dict[str, List[Query]] = {}
        self.dispatched_count = 0

    def attach(self, context: ManagerContext) -> None:
        """Idempotent per engine: safe to call on every re-attach."""
        self.global_mpl.attach(context)
        _attach_mpl_feedback(self, self.global_mpl, context)

    def _workload_key(self, query: Query) -> str:
        return query.workload_name or "<unassigned>"

    def enqueue(self, query: Query, context: ManagerContext) -> None:
        self._queues.setdefault(self._workload_key(query), []).append(query)

    def _workload_limit(self, workload: str) -> Optional[int]:
        if workload in self.per_workload_mpl:
            return self.per_workload_mpl[workload]
        return self.default_workload_mpl

    def next_batch(self, context: ManagerContext) -> List[Query]:
        limit = self.global_mpl.current_limit(context)
        running_by_workload: Dict[str, int] = {}
        for query in context.engine.running_queries():
            key = self._workload_key(query)
            running_by_workload[key] = running_by_workload.get(key, 0) + 1
        running_total = context.engine.running_count

        batch: List[Query] = []
        # workloads by priority of their queue heads, descending
        def head_priority(workload: str) -> int:
            queue = self._queues[workload]
            return queue[0].priority if queue else -1

        progressed = True
        at_global_limit = False
        while progressed and not at_global_limit:
            progressed = False
            for workload in sorted(
                self._queues, key=head_priority, reverse=True
            ):
                queue = self._queues[workload]
                if not queue:
                    continue
                if limit is not None and running_total + len(batch) >= limit:
                    at_global_limit = True
                    break
                workload_limit = self._workload_limit(workload)
                in_flight = running_by_workload.get(workload, 0)
                if workload_limit is not None and in_flight >= workload_limit:
                    continue
                query = queue.pop(0)
                batch.append(query)
                running_by_workload[workload] = in_flight + 1
                progressed = True
        self.dispatched_count += len(batch)
        return batch

    def queued_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def queued_queries(self) -> List[Query]:
        return [q for queue in self._queues.values() for q in queue]

    def remove(self, query_id: int) -> Optional[Query]:
        for queue in self._queues.values():
            for index, query in enumerate(queue):
                if query.query_id == query_id:
                    return queue.pop(index)
        return None

    def queue_length(self, workload: str) -> int:
        return len(self._queues.get(workload, []))


def tenant_mpl_caps(mpl: int, shares: Dict[str, float]) -> Dict[str, int]:
    """Apportion ``mpl`` execution slots to tenants by share weight.

    Largest-remainder apportionment with a floor of one slot per tenant
    (a tenant with any share may always run *something*), deterministic
    tie-break by tenant name.  The caps are the per-tenant MPL limits a
    :class:`TenantShareScheduler` enforces — strict reservations, so a
    noisy tenant's backlog cannot consume a quiet tenant's slots.
    """
    if mpl < 1:
        raise ValueError(f"mpl must be >= 1, got {mpl}")
    if not shares:
        return {}
    for tenant, share in shares.items():
        if share <= 0:
            raise ValueError(f"share for {tenant!r} must be > 0")
    total = sum(shares.values())
    caps: Dict[str, int] = {}
    remainders: List[tuple] = []
    assigned = 0
    for tenant in sorted(shares):
        raw = mpl * shares[tenant] / total
        caps[tenant] = max(1, int(raw))
        assigned += caps[tenant]
        remainders.append((-(raw - int(raw)), tenant))
    remainders.sort()
    index = 0
    while assigned < mpl and remainders:
        _, tenant = remainders[index % len(remainders)]
        caps[tenant] += 1
        assigned += 1
        index += 1
    return caps


class TenantShareScheduler(MultiQueueScheduler):
    """Per-tenant MPL reservations on one node (multi-tenant isolation).

    One wait queue per *tenant* — the part of ``workload_name`` before
    the first ``/`` — with per-tenant MPL caps apportioned from share
    weights (:func:`tenant_mpl_caps`) under the node's global MPL.
    Dispatch sweeps tenants by queue-head priority exactly like
    :class:`MultiQueueScheduler` sweeps workloads, so a flash-crowding
    tenant saturates its own reservation and then *waits*, leaving the
    other tenants' slots untouched — the node-tier half of the scenario
    suite's isolation story (the cluster-tier half is tenant admission
    quotas + task-queue tenant shares).
    """

    def __init__(
        self,
        mpl: int,
        shares: Dict[str, float],
        untenanted_mpl: Optional[int] = None,
    ) -> None:
        super().__init__(
            global_mpl=mpl,
            per_workload_mpl=tenant_mpl_caps(mpl, shares),
            default_workload_mpl=untenanted_mpl,
        )
        self.shares = dict(shares)

    def _workload_key(self, query: Query) -> str:
        name = query.workload_name
        if not name and ":" in query.sql:
            name = query.sql.split(":", 1)[0]
        if name and "/" in name:
            return name.split("/", 1)[0]
        return name or "<unassigned>"
