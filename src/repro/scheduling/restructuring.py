"""Query restructuring: slice large queries, schedule slices (paper §3.3).

"Query restructuring techniques decompose a query into a set of small
queries... no short queries will be stuck behind large queries and no
large queries will be required to wait in the queue for long periods of
time.  By restructuring the original query, the work is executed, but
with a lesser impact on the performance of the other requests running
concurrently" [6][36][54].

:class:`RestructuringScheduler` wraps any inner scheduler.  Queries
whose estimated work exceeds ``slice_threshold`` are decomposed into
slices of ≈``slice_work`` device-seconds.  Slices of one query execute
*serially* (they are sub-plans with a required order [54]); the wrapper
releases the next slice when the previous completes and records the
original query's end-to-end response time when the last slice finishes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.classify import Feature
from repro.core.interfaces import ManagerContext, Scheduler
from repro.engine.query import Query, QueryState, split_query


@dataclass
class _SliceGroup:
    original: Query
    pending: List[Query] = field(default_factory=list)  # not yet released
    outstanding: int = 0                                # released, unfinished

    @property
    def finished(self) -> bool:
        return not self.pending and self.outstanding == 0


class RestructuringScheduler(Scheduler):
    """Slice-large-queries wrapper around an inner scheduler."""

    TECHNIQUE_FEATURES = frozenset(
        {Feature.ACTS_BEFORE_EXECUTION, Feature.DECOMPOSES_QUERIES}
    )

    def __init__(
        self,
        inner: Scheduler,
        slice_threshold: float = 20.0,
        slice_work: float = 5.0,
        max_slices: int = 50,
    ) -> None:
        if slice_threshold <= 0 or slice_work <= 0:
            raise ValueError("slice_threshold and slice_work must be positive")
        self.inner = inner
        self.slice_threshold = slice_threshold
        self.slice_work = slice_work
        self.max_slices = max_slices
        self._groups: Dict[int, _SliceGroup] = {}      # slice id -> group
        self.restructured_count = 0
        #: response times of restructured originals (end-to-end)
        self.original_response_times: List[float] = []

    def attach(self, context: ManagerContext) -> None:
        self.inner.attach(context)
        if context.manager is not None:
            context.manager.add_completion_listener(
                lambda query: self._on_done(query, context)
            )

    def enqueue(self, query: Query, context: ManagerContext) -> None:
        work = query.estimated_cost.total_work
        if work <= self.slice_threshold or query.true_cost.lock_count > 0:
            self.inner.enqueue(query, context)
            return
        pieces = min(self.max_slices, max(2, math.ceil(work / self.slice_work)))
        slices = split_query(query, pieces)
        group = _SliceGroup(original=query, pending=slices)
        self.restructured_count += 1
        self._release_next(group, context)

    def _release_next(self, group: _SliceGroup, context: ManagerContext) -> None:
        if not group.pending:
            return
        piece = group.pending.pop(0)
        self._groups[piece.query_id] = group
        group.outstanding += 1
        piece.workload_name = group.original.workload_name
        piece.priority = group.original.priority
        piece.transition(QueryState.SUBMITTED)
        piece.submit_time = (
            group.original.submit_time
            if group.original.submit_time is not None
            else context.now
        )
        piece.transition(QueryState.QUEUED)
        self.inner.enqueue(piece, context)

    def _on_done(self, query: Query, context: ManagerContext) -> None:
        group = self._groups.pop(query.query_id, None)
        if group is None:
            return
        group.outstanding -= 1
        if query.state is not QueryState.COMPLETED:
            # a slice was killed/rejected: abandon the rest of the query
            group.pending.clear()
            return
        if group.pending:
            self._release_next(group, context)
            if context.manager is not None:
                context.manager.pump()
        elif group.finished:
            group.original.end_time = context.now
            if group.original.submit_time is not None:
                self.original_response_times.append(
                    context.now - group.original.submit_time
                )

    # ------------------------------------------------------------------
    # delegation
    # ------------------------------------------------------------------
    def next_batch(self, context: ManagerContext) -> List[Query]:
        return self.inner.next_batch(context)

    def queued_count(self) -> int:
        return self.inner.queued_count()

    def queued_queries(self) -> List[Query]:
        getter = getattr(self.inner, "queued_queries", None)
        return getter() if getter else []

    def remove(self, query_id: int) -> Optional[Query]:
        return self.inner.remove(query_id)
