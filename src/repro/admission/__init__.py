"""Admission control techniques (paper §3.2, Table 2).

One module per surveyed approach:

* :mod:`repro.admission.threshold` — query-cost and MPL thresholds
  (system parameters) as in DB2 / SQL Server / Teradata [9][50][72];
* :mod:`repro.admission.conflict_ratio` — Moenkeberg & Weikum's
  conflict-ratio load control [56];
* :mod:`repro.admission.throughput_feedback` — Heiss & Wagner's
  adaptive throughput feedback [26];
* :mod:`repro.admission.indicators` — monitor-metric indicators gating
  low-priority work [79][80];
* :mod:`repro.admission.prediction` — prediction-based admission with
  learned execution-time models (PQR [23], Ganapathi et al. [21]);
* :mod:`repro.admission.base` — composition helpers.
"""

from repro.admission.base import CompositeAdmission, PriorityExemptAdmission
from repro.admission.threshold import ThresholdAdmission
from repro.admission.conflict_ratio import ConflictRatioAdmission
from repro.admission.throughput_feedback import ThroughputFeedbackAdmission
from repro.admission.indicators import IndicatorAdmission, Indicator
from repro.admission.prediction import (
    PredictionBasedAdmission,
    QueryFeatureExtractor,
    RuntimePredictor,
)

__all__ = [
    "CompositeAdmission",
    "PriorityExemptAdmission",
    "ThresholdAdmission",
    "ConflictRatioAdmission",
    "ThroughputFeedbackAdmission",
    "IndicatorAdmission",
    "Indicator",
    "PredictionBasedAdmission",
    "QueryFeatureExtractor",
    "RuntimePredictor",
]
