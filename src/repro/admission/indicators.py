"""Indicator-based admission control (Zhang et al. [79][80], Table 2).

"The indicator approach uses a set of monitor metrics of a DBMS to
detect the performance failure.  If the indicator's values exceed
pre-defined thresholds, low priority requests are no longer admitted"
(paper §3.2).

Indicators are congestion signals computable from ordinary monitoring:
CPU/disk utilization, memory pressure, conflict ratio, queue length and
running count.  When any indicator fires, requests below the protected
priority are delayed; high-priority work keeps flowing — the asymmetry
is the point of the technique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.classify import Feature
from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    ManagerContext,
)
from repro.engine.query import Query


@dataclass(frozen=True)
class Indicator:
    """One monitor metric with a congestion threshold."""

    name: str
    read: Callable[[ManagerContext], float]
    threshold: float

    def fired(self, context: ManagerContext) -> bool:
        """True when the metric currently exceeds the threshold."""
        return self.read(context) > self.threshold

    def value(self, context: ManagerContext) -> float:
        """Current value of the monitored metric."""
        return self.read(context)


def default_indicators(
    memory_pressure: float = 1.5,
    conflict_ratio: float = 1.5,
    queue_length: float = 50.0,
) -> List[Indicator]:
    """The congestion-indicator set used in the experiments.

    Mirrors the spirit of [79]: memory (sort/hash spill pressure), lock
    contention, and queueing backlog.
    """
    return [
        Indicator(
            "memory_pressure",
            lambda ctx: ctx.engine.memory_pressure(),
            memory_pressure,
        ),
        Indicator(
            "conflict_ratio",
            lambda ctx: min(ctx.engine.conflict_ratio(), 1e6),
            conflict_ratio,
        ),
        Indicator(
            "queue_length",
            lambda ctx: float(
                ctx.manager.queued_count if ctx.manager is not None else 0
            ),
            queue_length,
        ),
    ]


class IndicatorAdmission(AdmissionController):
    """Delay low-priority requests while congestion indicators fire."""

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_MONITOR_METRICS,
        }
    )

    def __init__(
        self,
        indicators: Optional[Sequence[Indicator]] = None,
        protected_priority: int = 2,
    ) -> None:
        self.indicators = (
            default_indicators() if indicators is None else list(indicators)
        )
        if not self.indicators:
            raise ValueError("need at least one indicator")
        self.protected_priority = protected_priority
        self.delays = 0
        self.firings = {indicator.name: 0 for indicator in self.indicators}

    def fired_indicators(self, context: ManagerContext) -> List[Indicator]:
        """The subset of indicators currently signalling congestion."""
        return [i for i in self.indicators if i.fired(context)]

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        if query.priority >= self.protected_priority:
            return AdmissionDecision.accept(
                f"priority {query.priority} protected"
            )
        fired = self.fired_indicators(context)
        if fired:
            for indicator in fired:
                self.firings[indicator.name] += 1
            self.delays += 1
            names = ", ".join(
                f"{i.name}={i.value(context):.2f}>{i.threshold:g}" for i in fired
            )
            return AdmissionDecision.delay(f"indicators fired: {names}")
        return AdmissionDecision.accept("no congestion indicators fired")
