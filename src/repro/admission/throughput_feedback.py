"""Adaptive load control by throughput feedback (Heiss & Wagner [26]).

"The approach measures the transaction throughput over time intervals.
If the throughput in the last measurement interval has increased
(compared to the interval before), more transactions are admitted; if
the throughput has decreased, fewer transactions are admitted"
(paper §3.2, Table 2).

This is hill-climbing on the throughput-vs-MPL curve: the controller
keeps an admission limit (MPL), perturbs it in the current direction
each interval, and reverses direction when the measured throughput
drops.  It converges to a neighbourhood of the curve's knee — the
optimal MPL — without a model of the system, which is what the
experiment EXP4 validates against the exhaustive sweep of EXP1.
"""

from __future__ import annotations

from repro.core.classify import Feature
from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    ManagerContext,
)
from repro.engine.query import Query, QueryState


class ThroughputFeedbackAdmission(AdmissionController):
    """Hill-climbing MPL controller driven by completion throughput.

    Parameters
    ----------
    initial_mpl, min_mpl, max_mpl:
        Start and bounds of the admission limit.
    interval:
        Measurement-interval length in simulated seconds.
    step:
        MPL change applied each interval.
    hysteresis:
        Relative throughput change below which the controller holds
        its direction (avoids flapping on noise).
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_PERFORMANCE_METRIC,
            Feature.USES_FEEDBACK_CONTROLLER,
        }
    )

    def __init__(
        self,
        initial_mpl: int = 8,
        min_mpl: int = 1,
        max_mpl: int = 200,
        interval: float = 5.0,
        step: int = 2,
        hysteresis: float = 0.02,
    ) -> None:
        if not min_mpl <= initial_mpl <= max_mpl:
            raise ValueError("need min_mpl <= initial_mpl <= max_mpl")
        if interval <= 0 or step < 1:
            raise ValueError("interval must be > 0 and step >= 1")
        self.mpl = initial_mpl
        self.min_mpl = min_mpl
        self.max_mpl = max_mpl
        self.interval = interval
        self.step = step
        self.hysteresis = hysteresis
        self._direction = 1
        self._completions_this_interval = 0
        self._last_throughput = None
        self.mpl_history = []          # (time, mpl) trace for experiments
        self.delays = 0

    def attach(self, context: ManagerContext) -> None:
        context.sim.schedule_periodic(
            self.interval,
            lambda: self._adjust(context),
            label="heiss-wagner:interval",
        )
        self.mpl_history.append((context.now, self.mpl))

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        if context.engine.running_count >= self.mpl:
            self.delays += 1
            return AdmissionDecision.delay(
                f"feedback MPL {self.mpl} reached"
            )
        return AdmissionDecision.accept(f"within feedback MPL {self.mpl}")

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        if query.state is QueryState.COMPLETED:
            self._completions_this_interval += 1

    def _adjust(self, context: ManagerContext) -> None:
        throughput = self._completions_this_interval / self.interval
        self._completions_this_interval = 0
        if self._last_throughput is not None:
            reference = max(self._last_throughput, 1e-9)
            change = (throughput - self._last_throughput) / reference
            if change < -self.hysteresis:
                self._direction = -self._direction
            # increases (or flat within hysteresis) keep the direction
        self._last_throughput = throughput
        self.mpl = int(
            min(self.max_mpl, max(self.min_mpl, self.mpl + self._direction * self.step))
        )
        self.mpl_history.append((context.now, self.mpl))
