"""Conflict-ratio admission control (Moenkeberg & Weikum [56], Table 2).

"The conflict ratio is the ratio of the total number of locks that are
held by all transactions in the system and total number of locks held
by active transactions.  If the conflict ratio exceeds a (critical)
threshold, then new transactions are suspended, otherwise they are
admitted" (paper §3.2).

The critical ratio in [56] is ≈1.3: beyond it, most held locks belong
to blocked transactions and admitting more work only deepens the data
contention.  Read-only requests take no locks and pass through.
"""

from __future__ import annotations

from repro.core.classify import Feature
from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    ManagerContext,
)
from repro.engine.query import Query


class ConflictRatioAdmission(AdmissionController):
    """Suspend new transactions while the conflict ratio is critical."""

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_PERFORMANCE_METRIC,
        }
    )

    def __init__(self, critical_ratio: float = 1.3) -> None:
        if critical_ratio < 1.0:
            raise ValueError("critical_ratio must be >= 1.0")
        self.critical_ratio = critical_ratio
        self.suspensions = 0

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        if query.true_cost.lock_count == 0:
            return AdmissionDecision.accept("read-only request takes no locks")
        ratio = context.engine.conflict_ratio()
        if ratio > self.critical_ratio:
            self.suspensions += 1
            return AdmissionDecision.delay(
                f"conflict ratio {ratio:.2f} exceeds critical "
                f"{self.critical_ratio:.2f}"
            )
        return AdmissionDecision.accept(f"conflict ratio {ratio:.2f} ok")
