"""Composition helpers for admission controllers.

Workloads with different priorities are associated with different
admission-control policies (paper §2.3), and real facilities stack
several gates (Teradata applies filters *and* throttles).  These
combinators express that without each controller reimplementing it.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    AdmissionOutcome,
    ManagerContext,
)
from repro.engine.query import Query


class CompositeAdmission(AdmissionController):
    """Chain of admission gates; the first non-ACCEPT decision wins.

    Mirrors commercial stacking, e.g. Teradata's filters (reject) in
    front of throttles (delay).
    """

    def __init__(self, gates: Sequence[AdmissionController]) -> None:
        if not gates:
            raise ValueError("CompositeAdmission needs at least one gate")
        self.gates = list(gates)

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        for gate in self.gates:
            decision = gate.decide(query, context)
            if decision.outcome is not AdmissionOutcome.ACCEPT:
                return decision
        return AdmissionDecision.accept("all gates passed")

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        for gate in self.gates:
            gate.notify_exit(query, context)

    def attach(self, context: ManagerContext) -> None:
        for gate in self.gates:
            gate.attach(context)


class PriorityExemptAdmission(AdmissionController):
    """Exempt high-priority requests from an inner gate.

    "A high priority workload usually has higher (less restrictive)
    thresholds, so high priority requests can be guaranteed to be
    admitted" (§2.3).  Requests with priority >= ``exempt_priority``
    bypass ``inner`` entirely.
    """

    def __init__(self, inner: AdmissionController, exempt_priority: int = 3) -> None:
        self.inner = inner
        self.exempt_priority = exempt_priority

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        if query.priority >= self.exempt_priority:
            return AdmissionDecision.accept(
                f"priority {query.priority} exempt from admission control"
            )
        return self.inner.decide(query, context)

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        self.inner.notify_exit(query, context)

    def attach(self, context: ManagerContext) -> None:
        self.inner.attach(context)
