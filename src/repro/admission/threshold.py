"""Threshold-based admission control on system parameters (Table 2).

The two classic thresholds of §2.3/§3.2:

* **query cost** — "if a newly arriving query has estimated costs
  greater than the threshold, then the query is rejected, otherwise it
  is admitted";
* **MPL** — "if the number of concurrently running requests reaches
  the threshold, then no new requests are admitted".

Both consume the *optimizer's estimates* and the *running count*, never
the true costs, exactly as commercial facilities do.  Per-workload
policies give higher-priority workloads less restrictive thresholds,
and period overrides support day/night operating rules.

This class implements both — the features of the DB2 work-class cost
gates, SQL Server's Query Governor Cost Limit, and Teradata's query
resource filters + object throttles.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.classify import Feature
from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    ManagerContext,
)
from repro.core.policy import AdmissionPolicy
from repro.engine.query import Query


class ThresholdAdmission(AdmissionController):
    """Cost and MPL thresholds, per workload.

    Parameters
    ----------
    default_policy:
        Applied to workloads with no specific policy; if None, the
        manager's :class:`WorkloadManagementPolicy` supplies it.
    per_workload:
        Workload name → :class:`AdmissionPolicy` overrides.
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_SYSTEM_PARAMETER,
        }
    )

    def __init__(
        self,
        default_policy: Optional[AdmissionPolicy] = None,
        per_workload: Optional[Mapping[str, AdmissionPolicy]] = None,
    ) -> None:
        self.default_policy = default_policy
        self.per_workload: Dict[str, AdmissionPolicy] = dict(per_workload or {})
        # exposed for experiments
        self.cost_rejections = 0
        self.mpl_delays = 0
        self.mpl_rejections = 0

    def policy_for(
        self, query: Query, context: ManagerContext
    ) -> AdmissionPolicy:
        """Resolve the admission policy applying to this request."""
        if query.workload_name in self.per_workload:
            return self.per_workload[query.workload_name]
        if self.default_policy is not None:
            return self.default_policy
        return context.policy.admission_for(query.workload_name)

    def _workload_running(self, workload: Optional[str], context: ManagerContext) -> int:
        return sum(
            1
            for q in context.engine.iter_running()
            if q.workload_name == workload
        )

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        policy = self.policy_for(query, context)

        cost_limit = policy.cost_limit_at(context.now)
        if cost_limit is not None:
            estimated = query.estimated_cost.total_work
            if estimated > cost_limit:
                self.cost_rejections += 1
                return AdmissionDecision.reject(
                    f"estimated cost {estimated:.1f}s exceeds limit "
                    f"{cost_limit:.1f}s"
                )
        if policy.queue_over_cost is not None:
            if query.estimated_cost.total_work > policy.queue_over_cost:
                return AdmissionDecision.delay(
                    "estimated cost over queueing threshold"
                )

        if policy.max_concurrency is not None:
            # Per-workload MPL if the policy came from a per-workload
            # entry, global otherwise: we count conservatively at the
            # scope the policy was configured for.
            scoped = query.workload_name in self.per_workload
            running = (
                self._workload_running(query.workload_name, context)
                if scoped
                else context.engine.running_count
            )
            if running >= policy.max_concurrency:
                if policy.queue_when_full:
                    self.mpl_delays += 1
                    return AdmissionDecision.delay(
                        f"MPL {policy.max_concurrency} reached ({running} running)"
                    )
                self.mpl_rejections += 1
                return AdmissionDecision.reject(
                    f"MPL {policy.max_concurrency} reached ({running} running)"
                )

        return AdmissionDecision.accept("within thresholds")
