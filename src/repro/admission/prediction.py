"""Prediction-based admission control (paper §3.2, [21][23][42]).

"Prediction-based techniques attempt to predict the performance
behaviour characteristics of a query before the query begins running...
build prediction models for queries using machine-learning approaches."

Two surveyed flavours are provided by :class:`RuntimePredictor`:

* ``method="tree"`` — Gupta et al.'s PQR [23]: a decision tree over
  pre-execution features predicting execution-time *ranges* (we predict
  log-runtime with a regression tree, which subsumes the ranges);
* ``method="statistical"`` — the Ganapathi et al. [21] flavour:
  correlate pre-execution features with observed performance (here a
  per-feature-bucket statistical table, i.e. nearest-centroid
  regression on the same features).

Features are things genuinely available before execution: the
optimizer's estimates, plan shape, statement type and the session's
workload mapping.  The predictor trains on the query log's completed
records — exactly the historical observations the paper says estimates
derive from (§2.1).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classify import Feature
from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    ManagerContext,
)
from repro.engine.query import Query
from repro.ml.tree import DecisionTreeRegressor
from repro.workloads.traces import QueryLog, QueryLogRecord


class QueryFeatureExtractor:
    """Pre-execution feature vector for a query.

    The workload tag is one-hot encoded over the training vocabulary —
    request origin is the single strongest pre-execution predictor and
    is exactly what commercial classification exposes.
    """

    def __init__(self) -> None:
        self._workloads: List[str] = []

    def fit_vocabulary(self, workloads: Sequence[Optional[str]]) -> None:
        """Learn the workload one-hot vocabulary from training labels."""
        seen = []
        for name in workloads:
            key = name or "<unknown>"
            if key not in seen:
                seen.append(key)
        self._workloads = seen

    @property
    def n_features(self) -> int:
        """Length of the produced feature vectors."""
        return 5 + len(self._workloads)

    def _base_features(
        self,
        estimated_total: float,
        estimated_memory: float,
        estimated_rows: float,
        plan_length: int,
        statement_code: int,
    ) -> List[float]:
        return [
            math.log1p(max(0.0, estimated_total)),
            math.log1p(max(0.0, estimated_memory)),
            math.log1p(max(0.0, estimated_rows)),
            float(plan_length),
            float(statement_code),
        ]

    def features_for_query(self, query: Query) -> List[float]:
        """Feature vector for a live (pre-execution) query."""
        row = self._base_features(
            query.estimated_cost.total_work,
            query.estimated_cost.memory_mb,
            query.estimated_cost.rows,
            len(query.plan),
            hash_statement(query.statement_type.value),
        )
        return row + self._one_hot(query.workload_name)

    def features_for_record(self, record: QueryLogRecord) -> List[float]:
        """Feature vector for a logged request (training path)."""
        row = self._base_features(
            record.estimated_cost.total_work,
            record.estimated_cost.memory_mb,
            record.estimated_cost.rows,
            record.plan_operators,
            hash_statement(record.statement_type.value),
        )
        return row + self._one_hot(record.workload)

    def _one_hot(self, workload: Optional[str]) -> List[float]:
        key = workload or "<unknown>"
        return [1.0 if key == name else 0.0 for name in self._workloads]


def hash_statement(value: str) -> int:
    """Stable small integer code for a statement type."""
    return sum(ord(c) for c in value) % 97


class RuntimePredictor:
    """Learned model of true total work from pre-execution features."""

    def __init__(self, method: str = "tree", max_depth: int = 8) -> None:
        if method not in ("tree", "statistical"):
            raise ValueError(f"unknown method {method!r}")
        self.method = method
        self.extractor = QueryFeatureExtractor()
        self._tree = DecisionTreeRegressor(max_depth=max_depth)
        self._table: Dict[Tuple, Tuple[float, int]] = {}
        self._global_mean = 0.0
        self.trained = False

    def fit_from_log(self, log: QueryLog) -> int:
        """Train on completed records; returns the training-set size."""
        records = [r for r in log if r.completed]
        return self.fit_records(records)

    def fit_records(self, records: Sequence[QueryLogRecord]) -> int:
        """Train on explicit records; returns the training-set size."""
        if not records:
            return 0
        self.extractor.fit_vocabulary([r.workload for r in records])
        X = [self.extractor.features_for_record(r) for r in records]
        y = [math.log1p(r.true_cost.total_work) for r in records]
        if self.method == "tree":
            self._tree.fit(X, y)
        else:
            self._fit_table(X, y)
        self._global_mean = float(np.mean(y))
        self.trained = True
        return len(records)

    def _bucket(self, row: Sequence[float]) -> Tuple:
        # statistical flavour: bucket by workload one-hot + coarse size
        return tuple(round(v, 0) for v in row)

    def _fit_table(self, X: List[List[float]], y: List[float]) -> None:
        sums: Dict[Tuple, Tuple[float, int]] = {}
        for row, target in zip(X, y):
            key = self._bucket(row)
            total, count = sums.get(key, (0.0, 0))
            sums[key] = (total + target, count + 1)
        self._table = sums

    def predict_total_work(self, query: Query) -> float:
        """Predicted true total work (device-seconds) for ``query``."""
        if not self.trained:
            return query.estimated_cost.total_work
        row = self.extractor.features_for_query(query)
        if self.method == "tree":
            log_work = float(self._tree.predict([row])[0])
        else:
            total, count = self._table.get(self._bucket(row), (0.0, 0))
            log_work = total / count if count else self._global_mean
        return math.expm1(max(0.0, log_work))


class PredictionBasedAdmission(AdmissionController):
    """Admit by *predicted* runtime instead of the raw optimizer cost.

    Rejects requests whose predicted total work exceeds ``work_limit``.
    Until ``min_training`` completions are available the controller
    falls back to the optimizer estimate, then (re)trains every
    ``retrain_interval`` completions — an online-learning deployment, as
    the surveyed systems operate.
    """

    TECHNIQUE_FEATURES = frozenset(
        {Feature.ACTS_AT_ARRIVAL, Feature.PREDICTS_PERFORMANCE}
    )

    def __init__(
        self,
        work_limit: float,
        predictor: Optional[RuntimePredictor] = None,
        min_training: int = 50,
        retrain_interval: int = 200,
    ) -> None:
        if work_limit <= 0:
            raise ValueError("work_limit must be positive")
        self.work_limit = work_limit
        self.predictor = predictor or RuntimePredictor()
        self.min_training = min_training
        self.retrain_interval = retrain_interval
        self._completions_since_train = 0
        self.rejections = 0
        self.fallback_decisions = 0

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        if self.predictor.trained:
            predicted = self.predictor.predict_total_work(query)
            source = "predicted"
        else:
            predicted = query.estimated_cost.total_work
            source = "estimated (model not yet trained)"
            self.fallback_decisions += 1
        if predicted > self.work_limit:
            self.rejections += 1
            return AdmissionDecision.reject(
                f"{source} work {predicted:.1f}s exceeds limit "
                f"{self.work_limit:.1f}s"
            )
        return AdmissionDecision.accept(f"{source} work {predicted:.1f}s ok")

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        self._completions_since_train += 1
        completed = sum(1 for r in context.query_log if r.completed)
        should_train = (
            not self.predictor.trained and completed >= self.min_training
        ) or (
            self.predictor.trained
            and self._completions_since_train >= self.retrain_interval
        )
        if should_train:
            self.predictor.fit_from_log(context.query_log)
            self._completions_since_train = 0
