"""The matcher: late binding of queued work to node capacity.

This is the pull counterpart of the placement policies (DIRAC's
MatcherHandler): instead of the dispatcher choosing a node when a
request *arrives*, a node asks for work at the moment it has a free
execution slot — when a running query exits, when the node is
(re)activated, and on every dispatcher tick (the pilot's poll cadence).
Work therefore binds to capacity as late as possible: a request waiting
in the :class:`~repro.cluster.taskqueue.TaskQueue` is never committed
to a node that is busy, degraded away from it, or about to crash.

Matching checks, per (node, entry) pair:

* **health** — only UP nodes pull (``NodeHealth.accepts_placements``);
* **slot headroom** — the node must have a free execution slot
  (``running < mpl``) *and* be under its ``max_outstanding`` ceiling;
* **capabilities** — the entry's requirement tags must be covered by
  the node's capability set (which includes its static tags plus the
  derived ``speed:full`` tag, so degraded nodes stop matching entries
  that demand full speed);
* **exclusions** — a node that locally refused a request never pulls
  that same request again (the dispatcher's per-query exclusion set).

When several idle nodes compete for the head of the queue the fastest
one wins (``speed_factor`` descending, then fewest outstanding, then
name) — deterministic, so pull dispatch digests are seed-stable.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cluster.node import ClusterNode
from repro.cluster.taskqueue import TaskEntry, TaskQueue
from repro.engine.query import Query

#: Callback the dispatcher provides to commit one match (records the
#: placement and submits to the node's manager).
PlaceFn = Callable[[Query, ClusterNode], None]
#: Per-(query, node) exclusion test — True means "this node refused it".
ExclusionFn = Callable[[Query, ClusterNode], bool]


class Matcher:
    """Serves :class:`TaskQueue` entries to nodes with free slots."""

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        queue: TaskQueue,
        place: PlaceFn,
        excluded: Optional[ExclusionFn] = None,
    ) -> None:
        self.nodes = list(nodes)
        self.queue = queue
        self._place = place
        self._excluded = excluded or (lambda query, node: False)
        self.matches = 0
        self._serving = False  # re-entrancy guard: place() can re-route

    # ------------------------------------------------------------------
    # capacity predicates
    # ------------------------------------------------------------------
    @staticmethod
    def has_slot(node: ClusterNode) -> bool:
        """A free execution slot: the node could *start* work right now."""
        return (
            node.health.accepts_placements
            and node.running < node.mpl
            and node.outstanding_work < node.max_outstanding
        )

    def _rank(self, node: ClusterNode) -> tuple:
        return (-node.speed_factor, node.outstanding_work, node.name)

    # ------------------------------------------------------------------
    # pull cycles
    # ------------------------------------------------------------------
    def pull(self, node: ClusterNode) -> int:
        """One node pulls work until its slots or the queue run dry.

        Called the moment the node frees a slot (engine exit) or comes
        (back) up.  Returns the number of entries bound.
        """
        if self._serving:
            return 0
        self._serving = True
        try:
            return self._serve(node)
        finally:
            self._serving = False

    def offer(self) -> int:
        """Serve every node that currently has a free slot.

        Called on arrival (an idle pilot's match request is already
        pending, so new work binds immediately) and on the periodic
        tick (the poll cadence that catches anything missed).  Nodes
        are re-ranked after every binding so the fastest, least-loaded
        node always takes the next entry.
        """
        if self._serving:
            return 0
        self._serving = True
        placed = 0
        try:
            while len(self.queue):
                hungry = sorted(
                    (n for n in self.nodes if self.has_slot(n)), key=self._rank
                )
                if not hungry:
                    break
                progressed = False
                for node in hungry:
                    if self._serve_one(node):
                        placed += 1
                        progressed = True
                        break
                if not progressed:
                    break
        finally:
            self._serving = False
        return placed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _serve(self, node: ClusterNode) -> int:
        placed = 0
        while self.has_slot(node) and self._serve_one(node):
            placed += 1
        return placed

    def _serve_one(self, node: ClusterNode) -> bool:
        if not self.has_slot(node):
            return False
        entry: Optional[TaskEntry] = self.queue.match(
            node.capabilities,
            blocked=lambda query: self._excluded(query, node),
        )
        if entry is None:
            return False
        self.matches += 1
        self._place(entry.query, node)
        return True

    def hungry_nodes(self) -> List[ClusterNode]:
        """Nodes with a free slot, in serving order (introspection)."""
        return sorted(
            (n for n in self.nodes if self.has_slot(n)), key=self._rank
        )
