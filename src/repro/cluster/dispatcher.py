"""The cluster dispatcher: admission, placement and re-placement.

The :class:`ClusterDispatcher` is the cluster-level control point — the
DIRAC matcher / WiSeDB advisor of this simulator.  Every arriving
request is placed onto one eligible node by a pluggable
:class:`~repro.cluster.placement.PlacementPolicy`; when every node is
saturated the request waits in a bounded cluster queue, and when that
queue is full the cluster itself rejects (cluster-level admission
control — the paper's §3.2 decision, one level up).

Recovery paths, both deterministic:

* a node manager that *locally* rejects a request hands it back through
  the :meth:`~repro.core.manager.WorkloadManager.set_rejection_interceptor`
  hook and the dispatcher re-places it on another node;
* queries lost to a node crash (killed in-flight, evacuated from its
  wait queue) are resubmitted through normal intake — the same
  record/resubmit lifecycle the replay machinery uses (KILLED →
  SUBMITTED), with progress reset because crashed work is lost.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import ClusterNode, NodeHealth
from repro.cluster.placement import PlacementPolicy, RoundRobinPlacement
from repro.core.interfaces import AdmissionDecision
from repro.core.sla import SLASet
from repro.engine.query import Query, QueryState
from repro.engine.sessions import SessionRegistry
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError

CompletionListener = Callable[[Query], None]


class ClusterDispatcher:
    """Routes one request stream across N simulated DBMS nodes.

    Parameters
    ----------
    sim:
        The shared simulator (the *base* clock, not a scoped view).
    nodes:
        The cluster's nodes in stable order (placement tie-break order).
    placement:
        Placement policy; defaults to round-robin.
    max_queue_depth:
        Bound on the cluster wait queue; ``None`` = unbounded (never
        cluster-reject), ``0`` = reject the moment all nodes saturate.
    control_period:
        Seconds between dispatcher ticks (cluster-queue retry cadence).
    cache_eligible:
        Keep the eligible-node list cached between placements,
        invalidating only when a node's accepting bit flips (health
        transition or ``max_outstanding`` edge crossing).  On by
        default; disable to fall back to a full scan per placement
        (the A/B knob the placement micro-bench uses).
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[ClusterNode],
        placement: Optional[PlacementPolicy] = None,
        slas: Optional[SLASet] = None,
        max_queue_depth: Optional[int] = None,
        control_period: float = 1.0,
        cache_eligible: bool = True,
    ) -> None:
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ConfigurationError("max_queue_depth must be >= 0 or None")
        self.sim = sim
        self.nodes = list(nodes)
        self.placement = placement or RoundRobinPlacement()
        self.slas = slas or SLASet()
        self.max_queue_depth = max_queue_depth
        self.metrics = ClusterMetrics(self.nodes)
        self.sessions = SessionRegistry()
        self._queue: Deque[Query] = deque()
        self._listeners: List[CompletionListener] = []
        self._excluded: Dict[int, Set[str]] = {}  # query_id -> nodes that refused
        self.arrivals = 0
        self.completions = 0
        self.rejections = 0
        self.resubmissions = 0
        self._cache_eligible = cache_eligible
        self._eligible_cache: Optional[List[ClusterNode]] = None
        for node in self.nodes:
            node.manager.add_completion_listener(
                lambda query, n=node: self._on_node_exit(n, query)
            )
            node.manager.set_rejection_interceptor(
                lambda query, decision, n=node: self._intercept_rejection(
                    n, query, decision
                )
            )
            node.on_accepting_change(self._on_accepting_change)
            self.metrics.record_health(sim.now, node)
        self._ticker = sim.schedule_periodic(
            control_period, self._tick, label="cluster:tick"
        )

    # ------------------------------------------------------------------
    # client intake
    # ------------------------------------------------------------------
    def submit(self, query: Query) -> None:
        """A request arrives at the cluster front end."""
        query.transition(QueryState.SUBMITTED)
        if query.submit_time is None:
            query.submit_time = self.sim.now
        self.arrivals += 1
        self._route(query)

    def resubmit(self, query: Query, delay: float = 0.0) -> None:
        """Re-enter a request whose previous placement was lost.

        Crash-lost work restarts from scratch: progress is reset and the
        restart is counted, then the query goes through normal intake
        (same deterministic path as kill-and-resubmit policies).
        """
        query.progress = 0.0
        query.restarts += 1
        self.resubmissions += 1
        self.metrics.record_resubmission(query)
        self._excluded.pop(query.query_id, None)
        if delay > 0:
            self.sim.schedule(
                delay, lambda: self._reenter(query), label="cluster:resubmit"
            )
        else:
            self._reenter(query)

    def _reenter(self, query: Query) -> None:
        query.transition(QueryState.SUBMITTED)
        self._route(query)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def eligible_nodes(self, query: Optional[Query] = None) -> List[ClusterNode]:
        """UP, unsaturated nodes (minus any that refused this query)."""
        return list(self._eligible_for(query))

    def _on_accepting_change(self, node: ClusterNode) -> None:
        self._eligible_cache = None

    def _eligible_for(self, query: Optional[Query]) -> List[ClusterNode]:
        """The eligible set, cached between accepting-bit flips.

        Returns the shared cache list when the query has no exclusions;
        callers must treat it as read-only.  Nodes notify
        :meth:`_on_accepting_change` whenever their accepting bit flips
        (health transitions, ``max_outstanding`` edge crossings), so the
        cached list is always equal to a fresh scan.
        """
        if not self._cache_eligible:
            eligible = [node for node in self.nodes if node.accepting]
        else:
            eligible = self._eligible_cache
            if eligible is None:
                eligible = self._eligible_cache = [
                    node for node in self.nodes if node.accepting
                ]
        excluded = (
            self._excluded.get(query.query_id) if query is not None else None
        )
        if excluded:
            return [node for node in eligible if node.name not in excluded]
        return eligible

    def _route(self, query: Query) -> None:
        candidates = self._eligible_for(query)
        if candidates:
            node = self.placement.choose(query, candidates)
            if node is not None:
                self._place(query, node)
                return
        self._enqueue_or_reject(query)

    def _place(self, query: Query, node: ClusterNode) -> None:
        self.metrics.record_placement(node)
        node.submit(query)
        # a synchronous node-local rejection re-routes via the
        # interceptor before node.submit returns; nothing more to do

    def _enqueue_or_reject(self, query: Query) -> None:
        if (
            self.max_queue_depth is not None
            and len(self._queue) >= self.max_queue_depth
        ):
            self._cluster_reject(query)
            return
        # waiting in the cluster queue wipes per-placement exclusions:
        # by the time it is retried the refusing node may have capacity
        self._excluded.pop(query.query_id, None)
        self._queue.append(query)

    def _cluster_reject(self, query: Query) -> None:
        self._excluded.pop(query.query_id, None)
        query.transition(QueryState.REJECTED)
        query.end_time = self.sim.now
        self.rejections += 1
        self.metrics.record_cluster_rejection(query)
        self._notify(query)

    def _drain_queue(self) -> None:
        """Retry queued requests while any node will take them."""
        for _ in range(len(self._queue)):
            if not self._queue:
                return
            query = self._queue[0]
            candidates = self._eligible_for(query)
            if not candidates:
                return
            node = self.placement.choose(query, candidates)
            if node is None:
                return
            self._queue.popleft()
            self._place(query, node)

    # ------------------------------------------------------------------
    # node feedback
    # ------------------------------------------------------------------
    def _intercept_rejection(
        self, node: ClusterNode, query: Query, decision: AdmissionDecision
    ) -> bool:
        """A node's local admission refused: reclaim and re-place."""
        node.release(query)
        if query.state is QueryState.QUEUED:  # refused from a delayed retry
            query.transition(QueryState.SUBMITTED)
        self._excluded.setdefault(query.query_id, set()).add(node.name)
        self.metrics.record_replacement()
        self._route(query)
        return True

    def _on_node_exit(self, node: ClusterNode, query: Query) -> None:
        if query.state is QueryState.KILLED and node.health is NodeHealth.DOWN:
            # in-flight work lost to a crash: resubmit through intake
            self.resubmit(query)
        else:
            if query.state is QueryState.COMPLETED:
                self.completions += 1
            self._excluded.pop(query.query_id, None)
            self._notify(query)
        self._drain_queue()

    # ------------------------------------------------------------------
    # fault handling (used by repro.cluster.failover)
    # ------------------------------------------------------------------
    def crash_node(self, node: ClusterNode) -> int:
        """Kill a node: evacuate its queue, lose its in-flight work.

        Returns the number of queries reclaimed (evacuated + killed);
        every one re-enters through :meth:`resubmit` / :meth:`_route`.
        """
        node.crash()
        self.metrics.record_health(self.sim.now, node)
        reclaimed = 0
        # queued work survives (it never started): re-place directly
        for queued in node.manager.evacuate_queued():
            node.release(queued)
            queued.transition(QueryState.SUBMITTED)
            self._route(queued)
            reclaimed += 1
        # in-flight work is lost; each kill triggers _on_node_exit which
        # resubmits because the node is already DOWN
        engine = node.manager.engine
        for query_id in list(engine.running_ids()):
            engine.kill(query_id)
            reclaimed += 1
        self._drain_queue()
        return reclaimed

    def drain_node(self, node: ClusterNode) -> None:
        node.drain()
        self.metrics.record_health(self.sim.now, node)

    def activate_node(self, node: ClusterNode) -> None:
        node.activate()
        self.metrics.record_health(self.sim.now, node)
        self._drain_queue()

    def degrade_node(self, node: ClusterNode, factor: float) -> None:
        node.degrade(factor)
        self.metrics.record_health(self.sim.now, node)

    def node(self, name: str) -> ClusterNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def cluster_queue_depth(self) -> int:
        return len(self._queue)

    def active_nodes(self) -> List[ClusterNode]:
        return [n for n in self.nodes if n.health is NodeHealth.UP]

    def outstanding_work(self) -> int:
        return len(self._queue) + sum(n.outstanding_work for n in self.nodes)

    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Called for every client-visible terminal outcome."""
        self._listeners.append(listener)

    def _notify(self, query: Query) -> None:
        for listener in list(self._listeners):
            listener(query)

    def _tick(self) -> None:
        self._drain_queue()

    def shutdown(self) -> None:
        """Stop all periodic processes so the simulator can drain."""
        self._ticker.stop()
        for node in self.nodes:
            node.shutdown()

    def run(self, horizon: float, drain: float = 0.0) -> None:
        """Run the cluster to ``horizon`` plus a drain window."""
        self.sim.run_until(horizon + drain)
        self.shutdown()
