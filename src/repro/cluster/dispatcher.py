"""The cluster dispatcher: admission, binding and re-placement.

The :class:`ClusterDispatcher` is the cluster-level control point — the
DIRAC matcher / WiSeDB advisor of this simulator.  It owns the shared
substrate every dispatch mode uses: request intake and conservation
counters, the per-query exclusion sets, placement commit, node-local
rejection interception, crash reclaim and the cluster metrics rollup.
*When* work binds to a node is a pluggable **binding policy** — the
paper's §3.2/§3.3 split between where decisions happen and when work
binds to capacity:

* **push** (:class:`PushBinding`, the default) — the dispatcher picks a
  node the moment a request arrives, via a
  :class:`~repro.cluster.placement.PlacementPolicy`; saturated clusters
  park arrivals in a bounded FIFO cluster queue retried on capacity
  events (early binding, load-balancer shape);
* **pull** (:class:`PullBinding`) — arrivals park in a priority-ordered
  :class:`~repro.cluster.taskqueue.TaskQueue` and nodes pull matching
  work through the :class:`~repro.cluster.matcher.Matcher` at the
  moment they free an execution slot (late binding, DIRAC pilot shape).

Both modes share recovery paths, all deterministic:

* a node manager that *locally* rejects a request hands it back through
  the :meth:`~repro.core.manager.WorkloadManager.set_rejection_interceptor`
  hook and the dispatcher re-binds it elsewhere (the refusing node is
  excluded for that request);
* queries lost to a node crash (killed in-flight, evacuated from its
  wait queue) are resubmitted through normal intake — the same
  record/resubmit lifecycle the replay machinery uses (KILLED →
  SUBMITTED), with progress reset because crashed work is lost.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set

from repro.cluster.matcher import Matcher
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import ClusterNode, NodeHealth
from repro.cluster.placement import PlacementPolicy, RoundRobinPlacement
from repro.cluster.taskqueue import KeyFn, RequirementsFn, TaskQueue
from repro.core.interfaces import AdmissionDecision
from repro.core.sla import SLASet
from repro.engine.query import Query, QueryState
from repro.engine.sessions import SessionRegistry
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError

CompletionListener = Callable[[Query], None]

#: Binding-policy names accepted by the ``dispatch`` parameter / CLI.
DISPATCH_MODES = ("push", "pull")

#: Extracts a query's tenant for quota accounting; ``None`` exempts it.
TenantFn = Callable[[Query], Optional[str]]


def tenant_key(query: Query) -> Optional[str]:
    """Default tenant extraction: the ``tenant/`` prefix of the class key.

    Multi-tenant scenarios name their workloads ``tenant/workload`` (the
    generator's sql tag is then ``tenant/workload:class``), so the part
    before the first ``/`` is the tenant.  Queries without the prefix —
    every single-tenant scenario in the repo — belong to no tenant and
    are exempt from tenant quotas.
    """
    key = query.workload_name
    if not key and ":" in query.sql:
        key = query.sql.split(":", 1)[0]
    if key and "/" in key:
        return key.split("/", 1)[0]
    return None


class BindingPolicy(abc.ABC):
    """When queued work binds to node capacity (the push/pull seam).

    A binding policy owns the cluster-level wait structure and decides
    the binding moment; everything else — intake, commit, reclaim,
    metrics — lives on the dispatcher substrate it is attached to.
    """

    name: str = "abstract"

    def attach(self, dispatcher: "ClusterDispatcher") -> None:
        self.dispatcher = dispatcher

    @abc.abstractmethod
    def route(self, query: Query) -> None:
        """A request entered intake (arrival, re-entry or reclaim)."""

    @abc.abstractmethod
    def on_capacity(self, node: ClusterNode) -> None:
        """``node`` freed a slot or came (back) up."""

    @abc.abstractmethod
    def sweep(self) -> None:
        """Periodic tick: retry anything waiting at the cluster level."""

    @property
    @abc.abstractmethod
    def queue_depth(self) -> int:
        """Requests waiting at the cluster level."""

    @abc.abstractmethod
    def queued_queries(self) -> List[Query]:
        """Snapshot of the cluster-level wait structure."""


class PushBinding(BindingPolicy):
    """Early binding: place on arrival, FIFO cluster queue as overflow."""

    name = "push"

    def __init__(self) -> None:
        self.queue: Deque[Query] = deque()

    # -- intake --------------------------------------------------------
    def route(self, query: Query) -> None:
        d = self.dispatcher
        candidates = d._eligible_for(query)
        if candidates:
            node = d.placement.choose(query, candidates)
            if node is not None:
                d._place(query, node)
                return
        self._enqueue_or_reject(query)

    def _enqueue_or_reject(self, query: Query) -> None:
        d = self.dispatcher
        if (
            d.max_queue_depth is not None
            and len(self.queue) >= d.max_queue_depth
        ):
            d._cluster_reject(query)
            return
        # waiting in the cluster queue wipes per-placement exclusions:
        # by the time it is retried the refusing node may have capacity
        d._excluded.pop(query.query_id, None)
        self.queue.append(query)

    # -- binding moments -----------------------------------------------
    def on_capacity(self, node: ClusterNode) -> None:
        self.drain()

    def sweep(self) -> None:
        self.drain()

    def drain(self) -> None:
        """Retry queued requests while any node will take them.

        A blocked head no longer starves the tail: when the head's
        placement comes back empty (its exclusions emptied the
        candidate list, or the policy returned ``None``) the scan
        moves past it — bounded to one look at each queued request, in
        FIFO order, with blocked requests keeping their positions.
        Only a cluster-wide lack of eligible nodes stops the scan,
        because then no queued request can be placed at all.
        """
        d = self.dispatcher
        blocked: List[Query] = []
        for _ in range(len(self.queue)):
            if not self.queue:
                break
            query = self.queue.popleft()
            candidates = d._eligible_for(query)
            node = (
                d.placement.choose(query, candidates) if candidates else None
            )
            if node is None:
                blocked.append(query)
                if not d._eligible_for(None):
                    break  # nothing can take anything; stop scanning
                continue
            d._place(query, node)
        for query in reversed(blocked):
            self.queue.appendleft(query)

    # -- introspection -------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def queued_queries(self) -> List[Query]:
        return list(self.queue)


class PullBinding(BindingPolicy):
    """Late binding: task queue + matcher, nodes pull at free slots."""

    name = "pull"

    def __init__(
        self,
        class_shares: Optional[Dict[str, float]] = None,
        requirements_fn: Optional[RequirementsFn] = None,
        key_fn: Optional[KeyFn] = None,
    ) -> None:
        self._class_shares = class_shares
        self._requirements_fn = requirements_fn
        self._key_fn = key_fn
        self.taskqueue: Optional[TaskQueue] = None
        self.matcher: Optional[Matcher] = None

    def attach(self, dispatcher: "ClusterDispatcher") -> None:
        super().attach(dispatcher)
        self.taskqueue = TaskQueue(
            class_shares=self._class_shares,
            requirements_fn=self._requirements_fn,
            key_fn=self._key_fn,
        )
        self.matcher = Matcher(
            dispatcher.nodes,
            self.taskqueue,
            place=dispatcher._place,
            excluded=lambda query, node: node.name
            in dispatcher._excluded.get(query.query_id, ()),
        )

    # -- intake --------------------------------------------------------
    def route(self, query: Query) -> None:
        d = self.dispatcher
        self.taskqueue.push(query, d.sim.now)
        # an idle pilot's match request is always pending: fresh work
        # binds immediately when any node has a free slot for it
        self.matcher.offer()
        if (
            d.max_queue_depth is not None
            and len(self.taskqueue) > d.max_queue_depth
        ):
            # nothing pulled it and the queue is over its bound: the
            # *arriving* request is the one the cluster turns away
            if self.taskqueue.remove(query.query_id) is not None:
                d._cluster_reject(query)

    # -- binding moments -----------------------------------------------
    def on_capacity(self, node: ClusterNode) -> None:
        self.matcher.pull(node)

    def sweep(self) -> None:
        # the poll cadence doubles as exclusion amnesty (the push-mode
        # analogue wipes exclusions when a request enters the cluster
        # queue): a node that refused a request under one load may take
        # it a control period later
        d = self.dispatcher
        for query in self.taskqueue.queued_queries():
            d._excluded.pop(query.query_id, None)
        self.matcher.offer()

    # -- introspection -------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self.taskqueue)

    def queued_queries(self) -> List[Query]:
        return self.taskqueue.queued_queries()


def make_binding(
    dispatch: str,
    class_shares: Optional[Dict[str, float]] = None,
    requirements_fn: Optional[RequirementsFn] = None,
    key_fn: Optional[KeyFn] = None,
) -> BindingPolicy:
    """Build a binding policy from its short CLI name."""
    if dispatch == "push":
        return PushBinding()
    if dispatch == "pull":
        return PullBinding(
            class_shares=class_shares,
            requirements_fn=requirements_fn,
            key_fn=key_fn,
        )
    raise ConfigurationError(
        f"unknown dispatch mode {dispatch!r}; one of {DISPATCH_MODES}"
    )


class ClusterDispatcher:
    """Routes one request stream across N simulated DBMS nodes.

    Parameters
    ----------
    sim:
        The shared simulator (the *base* clock, not a scoped view).
    nodes:
        The cluster's nodes in stable order (placement tie-break order).
    placement:
        Placement policy for push mode; defaults to round-robin.
        Ignored by pull mode, where the matcher binds work to whichever
        node pulls it.
    max_queue_depth:
        Bound on the cluster wait structure; ``None`` = unbounded
        (never cluster-reject), ``0`` = reject the moment no node can
        take the arrival.
    control_period:
        Seconds between dispatcher ticks (queue retry / poll cadence).
    cache_eligible:
        Keep the eligible-node list cached between placements,
        invalidating only when a node's accepting bit flips (health
        transition or ``max_outstanding`` edge crossing).  On by
        default; disable to fall back to a full scan per placement
        (the A/B knob the placement micro-bench uses).
    dispatch:
        ``"push"`` (default) or ``"pull"``; alternatively pass a
        pre-built :class:`BindingPolicy` via ``binding``.
    binding:
        Explicit binding policy instance (overrides ``dispatch``) —
        how pull runs get custom class shares or requirement tags.
    tenant_quotas:
        ``{tenant: max outstanding}`` cluster-tier admission quotas.  A
        tenant at its quota has new arrivals cluster-rejected at intake
        — the noisy neighbor's flood bounces at the front door instead
        of burying every queue.  ``None`` (default) disables quotas.
    tenant_of:
        Tenant extractor for quota accounting; defaults to
        :func:`tenant_key`.  Queries mapping to ``None`` are exempt.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[ClusterNode],
        placement: Optional[PlacementPolicy] = None,
        slas: Optional[SLASet] = None,
        max_queue_depth: Optional[int] = None,
        control_period: float = 1.0,
        cache_eligible: bool = True,
        dispatch: str = "push",
        binding: Optional[BindingPolicy] = None,
        tenant_quotas: Optional[Dict[str, int]] = None,
        tenant_of: Optional[TenantFn] = None,
    ) -> None:
        if not nodes:
            raise ConfigurationError("a cluster needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names: {names}")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ConfigurationError("max_queue_depth must be >= 0 or None")
        for tenant, quota in (tenant_quotas or {}).items():
            if quota < 0:
                raise ConfigurationError(
                    f"tenant quota for {tenant!r} must be >= 0, got {quota}"
                )
        self.sim = sim
        self.nodes = list(nodes)
        self.placement = placement or RoundRobinPlacement()
        self.slas = slas or SLASet()
        self.max_queue_depth = max_queue_depth
        self.metrics = ClusterMetrics(self.nodes)
        self.sessions = SessionRegistry()
        self.binding = binding if binding is not None else make_binding(dispatch)
        self.binding.attach(self)
        self.tenant_quotas = dict(tenant_quotas or {})
        self.tenant_of = tenant_of or tenant_key
        self._tenant_outstanding: Dict[str, int] = {}
        self._query_tenant: Dict[int, str] = {}
        self.quota_rejections: Dict[str, int] = {}
        self._listeners: List[CompletionListener] = []
        self._excluded: Dict[int, Set[str]] = {}  # query_id -> nodes that refused
        self.arrivals = 0
        self.completions = 0
        self.rejections = 0
        self.resubmissions = 0
        self._cache_eligible = cache_eligible
        self._eligible_cache: Optional[List[ClusterNode]] = None
        for node in self.nodes:
            node.manager.add_completion_listener(
                lambda query, n=node: self._on_node_exit(n, query)
            )
            node.manager.set_rejection_interceptor(
                lambda query, decision, n=node: self._intercept_rejection(
                    n, query, decision
                )
            )
            node.on_accepting_change(self._on_accepting_change)
            self.metrics.record_health(sim.now, node)
        self._ticker = sim.schedule_periodic(
            control_period, self._tick, label="cluster:tick"
        )

    @property
    def dispatch(self) -> str:
        """The active binding-policy name (``"push"`` or ``"pull"``)."""
        return self.binding.name

    # ------------------------------------------------------------------
    # client intake
    # ------------------------------------------------------------------
    def submit(self, query: Query) -> None:
        """A request arrives at the cluster front end."""
        query.transition(QueryState.SUBMITTED)
        if query.submit_time is None:
            query.submit_time = self.sim.now
        self.arrivals += 1
        tenant = self.tenant_of(query) if self.tenant_quotas else None
        if tenant is not None:
            quota = self.tenant_quotas.get(tenant)
            if (
                quota is not None
                and self._tenant_outstanding.get(tenant, 0) >= quota
            ):
                self.quota_rejections[tenant] = (
                    self.quota_rejections.get(tenant, 0) + 1
                )
                self._cluster_reject(query)
                return
            # quota accounting follows the query to its terminal outcome
            self._query_tenant[query.query_id] = tenant
            self._tenant_outstanding[tenant] = (
                self._tenant_outstanding.get(tenant, 0) + 1
            )
        self._route(query)

    def tenant_outstanding(self, tenant: str) -> int:
        """Requests a tenant currently has anywhere in the cluster."""
        return self._tenant_outstanding.get(tenant, 0)

    def resubmit(self, query: Query, delay: float = 0.0) -> None:
        """Re-enter a request whose previous placement was lost.

        Crash-lost work restarts from scratch: progress is reset and the
        restart is counted, then the query goes through normal intake
        (same deterministic path as kill-and-resubmit policies).
        """
        query.progress = 0.0
        query.restarts += 1
        self.resubmissions += 1
        self.metrics.record_resubmission(query)
        self._excluded.pop(query.query_id, None)
        if delay > 0:
            self.sim.schedule(
                delay, lambda: self._reenter(query), label="cluster:resubmit"
            )
        else:
            self._reenter(query)

    def _reenter(self, query: Query) -> None:
        query.transition(QueryState.SUBMITTED)
        self._route(query)

    def _route(self, query: Query) -> None:
        self.binding.route(query)

    # ------------------------------------------------------------------
    # eligibility (shared by push placement and the HOL scan)
    # ------------------------------------------------------------------
    def eligible_nodes(self, query: Optional[Query] = None) -> List[ClusterNode]:
        """UP, unsaturated nodes (minus any that refused this query)."""
        return list(self._eligible_for(query))

    def _on_accepting_change(self, node: ClusterNode) -> None:
        self._eligible_cache = None

    def _eligible_for(self, query: Optional[Query]) -> List[ClusterNode]:
        """The eligible set, cached between accepting-bit flips.

        Returns the shared cache list when the query has no exclusions;
        callers must treat it as read-only.  Nodes notify
        :meth:`_on_accepting_change` whenever their accepting bit flips
        (health transitions, ``max_outstanding`` edge crossings), so the
        cached list is always equal to a fresh scan.
        """
        if not self._cache_eligible:
            eligible = [node for node in self.nodes if node.accepting]
        else:
            eligible = self._eligible_cache
            if eligible is None:
                eligible = self._eligible_cache = [
                    node for node in self.nodes if node.accepting
                ]
        excluded = (
            self._excluded.get(query.query_id) if query is not None else None
        )
        if excluded:
            return [node for node in eligible if node.name not in excluded]
        return eligible

    # ------------------------------------------------------------------
    # placement commit + cluster rejection (shared substrate)
    # ------------------------------------------------------------------
    def _place(self, query: Query, node: ClusterNode) -> None:
        self.metrics.record_placement(node)
        node.submit(query)
        # a synchronous node-local rejection re-routes via the
        # interceptor before node.submit returns; nothing more to do

    def _cluster_reject(self, query: Query) -> None:
        self._excluded.pop(query.query_id, None)
        query.transition(QueryState.REJECTED)
        query.end_time = self.sim.now
        self.rejections += 1
        self.metrics.record_cluster_rejection(query, key=self.tenant_of(query))
        self._notify(query)

    # ------------------------------------------------------------------
    # node feedback
    # ------------------------------------------------------------------
    def _intercept_rejection(
        self, node: ClusterNode, query: Query, decision: AdmissionDecision
    ) -> bool:
        """A node's local admission refused: reclaim and re-bind."""
        node.release(query)
        if query.state is QueryState.QUEUED:  # refused from a delayed retry
            query.transition(QueryState.SUBMITTED)
        self._excluded.setdefault(query.query_id, set()).add(node.name)
        self.metrics.record_replacement()
        self._route(query)
        return True

    def _on_node_exit(self, node: ClusterNode, query: Query) -> None:
        if query.state is QueryState.KILLED and node.health is NodeHealth.DOWN:
            # in-flight work lost to a crash: resubmit through intake
            self.resubmit(query)
        else:
            if query.state is QueryState.COMPLETED:
                self.completions += 1
            self._excluded.pop(query.query_id, None)
            self._notify(query)
        self.binding.on_capacity(node)

    # ------------------------------------------------------------------
    # fault handling (used by repro.cluster.failover)
    # ------------------------------------------------------------------
    def crash_node(self, node: ClusterNode) -> int:
        """Kill a node: evacuate its queue, lose its in-flight work.

        Returns the number of queries reclaimed (evacuated + killed);
        every one re-enters through :meth:`resubmit` / :meth:`_route`.
        """
        node.crash()
        self.metrics.record_health(self.sim.now, node)
        reclaimed = 0
        # queued work survives (it never started): re-place directly
        for queued in node.manager.evacuate_queued():
            node.release(queued)
            queued.transition(QueryState.SUBMITTED)
            self._route(queued)
            reclaimed += 1
        # in-flight work is lost; each kill triggers _on_node_exit which
        # resubmits because the node is already DOWN
        engine = node.manager.engine
        for query_id in list(engine.running_ids()):
            engine.kill(query_id)
            reclaimed += 1
        self.binding.sweep()
        return reclaimed

    def drain_node(self, node: ClusterNode) -> None:
        node.drain()
        self.metrics.record_health(self.sim.now, node)

    def activate_node(self, node: ClusterNode) -> None:
        node.activate()
        self.metrics.record_health(self.sim.now, node)
        self.binding.on_capacity(node)

    def degrade_node(self, node: ClusterNode, factor: float) -> None:
        node.degrade(factor)
        self.metrics.record_health(self.sim.now, node)

    def restore_node_speed(self, node: ClusterNode) -> None:
        node.restore_speed()
        self.metrics.record_health(self.sim.now, node)

    def node(self, name: str) -> ClusterNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def cluster_queue_depth(self) -> int:
        return self.binding.queue_depth

    @property
    def _queue(self):
        """Back-compat view of the push binding's FIFO cluster queue."""
        if isinstance(self.binding, PushBinding):
            return self.binding.queue
        return self.binding.queued_queries()

    def active_nodes(self) -> List[ClusterNode]:
        return [n for n in self.nodes if n.health is NodeHealth.UP]

    def outstanding_work(self) -> int:
        return self.binding.queue_depth + sum(
            n.outstanding_work for n in self.nodes
        )

    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Called for every client-visible terminal outcome."""
        self._listeners.append(listener)

    def _notify(self, query: Query) -> None:
        tenant = self._query_tenant.pop(query.query_id, None)
        if tenant is not None:
            self._tenant_outstanding[tenant] -= 1
        for listener in list(self._listeners):
            listener(query)

    def _tick(self) -> None:
        self.binding.sweep()

    def shutdown(self) -> None:
        """Stop all periodic processes so the simulator can drain."""
        self._ticker.stop()
        for node in self.nodes:
            node.shutdown()

    def run(self, horizon: float, drain: float = 0.0) -> None:
        """Run the cluster to ``horizon`` plus a drain window."""
        self.sim.run_until(horizon + drain)
        self.shutdown()
