"""Multi-node workload dispatch, placement and failover (EXP18).

``repro.cluster`` scales the single-server taxonomy pipeline out to a
cluster of independent simulated DBMS engines sharing one deterministic
clock.  Each :class:`~repro.cluster.node.ClusterNode` wraps a full
engine + :class:`~repro.core.manager.WorkloadManager` stack on a scoped
RNG namespace; the :class:`~repro.cluster.dispatcher.ClusterDispatcher`
is the cluster-level workload manager — admission (bounded cluster
queue), placement (pluggable policies from
:mod:`repro.cluster.placement`: round-robin, least-outstanding,
cost-balanced, SLA-aware greedy), and re-placement of locally rejected
or crash-lost work (:mod:`repro.cluster.failover`).  Dispatch itself is
a pluggable binding policy: ``push`` places each request on a node at
arrival, ``pull`` parks it in a :class:`~repro.cluster.taskqueue.TaskQueue`
until a node with a free execution slot pulls matching work through the
:class:`~repro.cluster.matcher.Matcher` (DIRAC-style late binding).
Elastic
provisioning (:mod:`repro.cluster.elastic`) reuses the §3.4 feedback
controllers to grow and shrink the active node set, and
:mod:`repro.cluster.metrics` rolls per-node statistics up into
cluster-level views.
"""

from repro.cluster.dispatcher import (
    DISPATCH_MODES,
    BindingPolicy,
    ClusterDispatcher,
    PullBinding,
    PushBinding,
    make_binding,
    tenant_key,
)
from repro.cluster.elastic import ElasticProvisioner, ProvisioningDecision
from repro.cluster.failover import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.cluster.matcher import Matcher
from repro.cluster.metrics import ClusterMetrics, HealthChange, WorkloadRollup
from repro.cluster.node import (
    NODE_MACHINE,
    ClusterNode,
    NodeHealth,
    NodeHeartbeat,
)
from repro.cluster.placement import (
    POLICY_NAMES,
    CostBalancedPlacement,
    LeastOutstandingPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    SLAAwarePlacement,
    make_policy,
    predict_response_time,
)
from repro.cluster.scenario import (
    CLUSTER_SLAS,
    HETEROGENEOUS_SPEEDS,
    build_cluster,
    churn_plan,
    cluster_overload_scenario,
    matcher_scenario,
    replicate_cluster_scenario,
    run_cluster_scenario,
    run_matcher_scenario,
)
from repro.cluster.taskqueue import TaskEntry, TaskQueue

__all__ = [
    "CLUSTER_SLAS",
    "DISPATCH_MODES",
    "HETEROGENEOUS_SPEEDS",
    "POLICY_NAMES",
    "NODE_MACHINE",
    "BindingPolicy",
    "ClusterDispatcher",
    "ClusterMetrics",
    "ClusterNode",
    "CostBalancedPlacement",
    "ElasticProvisioner",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "HealthChange",
    "LeastOutstandingPlacement",
    "Matcher",
    "NodeHealth",
    "NodeHeartbeat",
    "PlacementPolicy",
    "ProvisioningDecision",
    "PullBinding",
    "PushBinding",
    "RoundRobinPlacement",
    "SLAAwarePlacement",
    "TaskEntry",
    "TaskQueue",
    "WorkloadRollup",
    "build_cluster",
    "churn_plan",
    "cluster_overload_scenario",
    "make_binding",
    "make_policy",
    "matcher_scenario",
    "predict_response_time",
    "replicate_cluster_scenario",
    "run_cluster_scenario",
    "run_matcher_scenario",
    "tenant_key",
]
