"""A cluster node: one simulated DBMS server behind the dispatcher.

A :class:`ClusterNode` wraps a full single-server stack — execution
engine plus :class:`~repro.core.manager.WorkloadManager` — on a
*scoped* view of the shared simulator, so every node draws from its own
seed-stable RNG streams while all nodes advance on one clock
(:meth:`repro.engine.simulator.Simulator.scoped`).

Each node carries:

* a capacity envelope (its machine spec, a node-local MPL and an
  ``max_outstanding`` admission ceiling the dispatcher respects);
* a health state (:class:`NodeHealth`) driving placement eligibility —
  DRAINING nodes finish their work but take no new placements, DOWN
  nodes are dead, STANDBY nodes are provisioned-but-inactive spares;
* a DIRAC-style heartbeat: a periodic snapshot of MPL, queue depth,
  utilization and per-class velocity published into the shared clock,
  the information a matcher/dispatcher would pull before placing work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.interfaces import AdmissionController, Scheduler
from repro.core.manager import FCFSDispatcher, WorkloadManager
from repro.core.sla import SLASet
from repro.engine.executor import EngineConfig
from repro.engine.query import Query
from repro.engine.resources import MachineSpec, ResourceKind
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError

#: The standard per-node machine: a quarter of the single-server
#: ``benchmarks`` box, so a 4-node cluster matches the classic setup.
NODE_MACHINE = MachineSpec(cpu_capacity=4.0, disk_capacity=2.0, memory_mb=2048.0)


class NodeHealth(enum.Enum):
    """Placement-relevant liveness of a node."""

    UP = "up"               # healthy, taking placements
    DRAINING = "draining"   # finishes outstanding work, no new placements
    DOWN = "down"           # crashed: in-flight work is lost
    STANDBY = "standby"     # provisioned spare, inactive until activated

    @property
    def accepts_placements(self) -> bool:
        return self is NodeHealth.UP


@dataclass(frozen=True)
class NodeHeartbeat:
    """One published node snapshot (the DIRAC pilot's status report)."""

    time: float
    node: str
    health: NodeHealth
    running: int                 # current MPL in use
    queued: int                  # node-local wait-queue depth
    cpu_utilization: float
    disk_utilization: float
    memory_pressure: float
    outstanding_estimated_work: float   # device-seconds promised to this node
    class_velocities: Tuple[Tuple[str, float], ...]  # per-workload mean velocity


class ClusterNode:
    """One simulated DBMS engine + manager inside a cluster.

    Parameters
    ----------
    sim:
        The *shared* simulator; the node builds its own scoped view.
    name:
        Unique node name (also the RNG scope).
    machine, engine_config:
        Per-node capacity, default :data:`NODE_MACHINE`.
    mpl:
        Node-local multiprogramming limit (FCFS dispatch ceiling).
    max_outstanding:
        Saturation ceiling the dispatcher checks before placing: a node
        with ``outstanding_work >= max_outstanding`` is not eligible.
        Defaults to ``4 * mpl`` (a bounded node-local backlog).
    health:
        Initial health; STANDBY spares join via :meth:`activate`.
    tags:
        Static capability tags (e.g. ``("big-memory", "ssd")``) matched
        against task-queue requirement tags in pull dispatch.
    speed_factor:
        Initial service speed in (0, 1]; values below 1 model a
        permanently slower machine (heterogeneous clusters).  Runtime
        slowdowns use :meth:`degrade` / :meth:`restore_speed`.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        machine: Optional[MachineSpec] = None,
        engine_config: Optional[EngineConfig] = None,
        mpl: int = 12,
        max_outstanding: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
        admission: Optional[AdmissionController] = None,
        slas: Optional[SLASet] = None,
        control_period: float = 1.0,
        heartbeat_period: float = 1.0,
        health: NodeHealth = NodeHealth.UP,
        tags: Iterable[str] = (),
        speed_factor: float = 1.0,
    ) -> None:
        if mpl < 1:
            raise ConfigurationError(f"node mpl must be >= 1, got {mpl}")
        if not 0.0 < speed_factor <= 1.0:
            raise ConfigurationError(
                f"speed_factor must be in (0,1], got {speed_factor}"
            )
        self.name = name
        self.sim = sim
        self.scope = sim.scoped(f"node:{name}")
        self.mpl = mpl
        self.max_outstanding = 4 * mpl if max_outstanding is None else max_outstanding
        self.machine = machine or NODE_MACHINE
        self.manager = WorkloadManager(
            self.scope,
            machine=self.machine,
            engine_config=engine_config,
            scheduler=scheduler or FCFSDispatcher(max_concurrency=mpl),
            admission=admission,
            slas=slas,
            control_period=control_period,
        )
        self.health = health
        self.tags = frozenset(tags)
        self.base_speed_factor = speed_factor   # what restore/activate return to
        self.speed_factor = speed_factor        # < 1.0 models a slow node
        self.heartbeat_period = heartbeat_period
        self.heartbeats: List[NodeHeartbeat] = []
        self.placed_count = 0
        self._outstanding_est: Dict[int, float] = {}
        self._outstanding_est_total = 0.0
        self.manager.add_completion_listener(self._note_exit)
        self._heartbeat_proc = self.scope.schedule_periodic(
            heartbeat_period, self.publish_heartbeat, label=f"heartbeat:{name}"
        )
        if health is not NodeHealth.UP:
            # spares/down nodes do not tick or beat until activated
            self.manager.shutdown()
            self._heartbeat_proc.stop()
        # Accepting-edge tracking: the manager pings on every backlog
        # change; listeners (the dispatcher's eligible-node cache) are
        # notified only when the accepting bit actually flips — i.e. on
        # health transitions and max_outstanding edge crossings.
        self._accepting_listeners: List[Callable[["ClusterNode"], None]] = []
        self._accepting_last = self.accepting
        self.manager.add_backlog_listener(self._recheck_accepting)

    # ------------------------------------------------------------------
    # capacity and load introspection (what placement policies read)
    # ------------------------------------------------------------------
    @property
    def running(self) -> int:
        return self.manager.running_count

    @property
    def queued(self) -> int:
        return self.manager.queued_count

    @property
    def outstanding_work(self) -> int:
        return self.manager.outstanding_work()

    @property
    def outstanding_estimated_work(self) -> float:
        """Device-seconds of estimated work placed here and not yet done."""
        return self._outstanding_est_total

    @property
    def rate_capacity(self) -> float:
        """Total device-seconds of service per second this node delivers."""
        scale = self.speed_factor if self.speed_factor > 0 else 1e-9
        return (self.machine.cpu_capacity + self.machine.disk_capacity) * scale

    @property
    def accepting(self) -> bool:
        """Eligible for new placements right now."""
        return (
            self.health.accepts_placements
            and self.outstanding_work < self.max_outstanding
        )

    @property
    def capabilities(self) -> FrozenSet[str]:
        """What this node offers to capability matching (pull dispatch).

        The static :attr:`tags` plus the derived ``speed:full`` tag,
        present only while the node runs at full speed — so task-queue
        entries requiring ``speed:full`` stop matching a degraded node
        the instant it slows down.
        """
        if self.speed_factor >= 1.0:
            return self.tags | {"speed:full"}
        return self.tags

    def on_accepting_change(
        self, listener: Callable[["ClusterNode"], None]
    ) -> None:
        """Subscribe to flips of :attr:`accepting` (edge-triggered)."""
        self._accepting_listeners.append(listener)

    def _recheck_accepting(self) -> None:
        current = (
            self.health.accepts_placements
            and self.manager.outstanding_work() < self.max_outstanding
        )
        if current != self._accepting_last:
            self._accepting_last = current
            for listener in self._accepting_listeners:
                listener(self)

    # ------------------------------------------------------------------
    # placement-side intake
    # ------------------------------------------------------------------
    def submit(self, query: Query):
        """Accept a placement from the dispatcher."""
        self.placed_count += 1
        est = query.estimated_cost.total_work
        self._outstanding_est[query.query_id] = est
        self._outstanding_est_total += est
        decision = self.manager.submit(query)
        if self.speed_factor < 1.0:
            self._enforce_speed()
        return decision

    def _note_exit(self, query: Query) -> None:
        est = self._outstanding_est.pop(query.query_id, None)
        if est is not None:
            self._outstanding_est_total -= est

    def release(self, query: Query) -> None:
        """Forget a query the dispatcher reclaimed (evacuation, loss)."""
        self._note_exit(query)

    # ------------------------------------------------------------------
    # health transitions
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Mark the node dead; the dispatcher reclaims its work."""
        self.health = NodeHealth.DOWN
        self.manager.shutdown()
        self._heartbeat_proc.stop()
        self._recheck_accepting()

    def drain(self) -> None:
        """Stop taking placements; outstanding work runs to completion."""
        if self.health is NodeHealth.UP:
            self.health = NodeHealth.DRAINING
            self._recheck_accepting()

    def park(self) -> None:
        """Park a finished (drained) node as a standby spare."""
        self.health = NodeHealth.STANDBY
        self.manager.shutdown()
        self._heartbeat_proc.stop()
        self._recheck_accepting()

    def activate(self) -> None:
        """Bring a STANDBY / DRAINING / recovered node (back) into service."""
        was_stopped = self.health in (NodeHealth.STANDBY, NodeHealth.DOWN)
        self.health = NodeHealth.UP
        self.speed_factor = self.base_speed_factor
        if was_stopped:
            self.manager.resume_ticks()
            self._heartbeat_proc = self.scope.schedule_periodic(
                self.heartbeat_period,
                self.publish_heartbeat,
                label=f"heartbeat:{self.name}",
            )
        self._recheck_accepting()

    def degrade(self, factor: float) -> None:
        """Slow the node to ``factor`` of full speed (fault injection).

        On a DOWN or STANDBY node this is a documented **no-op**: the
        node's manager is shut down (throttling its engine would touch
        a dead server), it holds no placements a slowdown could affect,
        and :meth:`activate` resets speed anyway.  Chaos plans may
        therefore race a degrade against a crash without blowing up the
        run.  DRAINING nodes still run work, so they do degrade.
        """
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(f"degrade factor must be in (0,1], got {factor}")
        if not self.serviceable:
            return
        self.speed_factor = factor
        self._enforce_speed()

    def restore_speed(self) -> None:
        """Undo :meth:`degrade` (no-op on DOWN/STANDBY, like degrade)."""
        if not self.serviceable:
            return
        self.speed_factor = self.base_speed_factor
        self._enforce_speed()

    @property
    def serviceable(self) -> bool:
        """True while the node's manager is live (UP or DRAINING).

        DOWN and STANDBY nodes have a shut-down manager: speed changes
        against them are no-ops by contract.
        """
        return self.health in (NodeHealth.UP, NodeHealth.DRAINING)

    def _enforce_speed(self) -> None:
        engine = self.manager.engine
        with engine.reallocation_batch():
            for query_id in engine.running_ids():
                if engine.throttle_of(query_id) != self.speed_factor:
                    engine.set_throttle(query_id, self.speed_factor)

    # ------------------------------------------------------------------
    # heartbeat
    # ------------------------------------------------------------------
    def snapshot(self) -> NodeHeartbeat:
        """Build (without publishing) the current heartbeat."""
        engine = self.manager.engine
        metrics = self.manager.metrics
        velocities = []
        for workload in sorted(metrics.workloads()):
            velocity = metrics.stats_for(workload).mean_velocity()
            if velocity is not None:
                velocities.append((workload, velocity))
        return NodeHeartbeat(
            time=self.sim.now,
            node=self.name,
            health=self.health,
            running=self.running,
            queued=self.queued,
            cpu_utilization=engine.utilization(ResourceKind.CPU),
            disk_utilization=engine.utilization(ResourceKind.DISK),
            memory_pressure=engine.memory_pressure(),
            outstanding_estimated_work=self.outstanding_estimated_work,
            class_velocities=tuple(velocities),
        )

    def publish_heartbeat(self) -> NodeHeartbeat:
        """Publish a snapshot into the shared clock (periodic)."""
        beat = self.snapshot()
        self.heartbeats.append(beat)
        if self.speed_factor < 1.0:
            # a degraded node re-asserts its slowdown on work started
            # since the last beat (new placements run full-speed for at
            # most one heartbeat period otherwise)
            self._enforce_speed()
        return beat

    @property
    def last_heartbeat(self) -> Optional[NodeHeartbeat]:
        return self.heartbeats[-1] if self.heartbeats else None

    def shutdown(self) -> None:
        """Stop periodic processes so the simulator can drain."""
        self.manager.shutdown()
        self._heartbeat_proc.stop()

    def __repr__(self) -> str:
        return (
            f"ClusterNode({self.name!r}, {self.health.value}, "
            f"run={self.running}, q={self.queued}, "
            f"est={self.outstanding_estimated_work:.1f}s)"
        )
