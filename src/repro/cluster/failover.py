"""Deterministic fault injection: crashes, slow nodes, recovery.

A :class:`FaultPlan` is a declarative schedule of node faults at
simulated times; :class:`FaultInjector` arms it on the shared clock.
Because the events are ordinary simulator events, a faulted run is as
bit-deterministic as a clean one — the digest-determinism gate covers
chaos scenarios unchanged.

Crash semantics (DIRAC-style): in-flight queries on the crashed node
are *lost* and resubmitted through the dispatcher's normal intake (the
same KILLED → SUBMITTED record/resubmit lifecycle replay and
kill-and-resubmit policies use); queued work on the node never started,
so it is evacuated and re-placed without a restart penalty.  DRAINING
nodes finish their outstanding work but take no new placements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.dispatcher import ClusterDispatcher
from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    """What happens to the node at the fault time."""

    CRASH = "crash"          # node dies; in-flight work lost and resubmitted
    DEGRADE = "degrade"      # node slows to `factor` of full speed
    DRAIN = "drain"          # stop placements, finish outstanding work
    RECOVER = "recover"      # back to UP at full speed


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time: float
    node: str
    kind: FaultKind
    factor: float = 1.0      # DEGRADE only: speed multiplier in (0, 1]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.time}")
        if self.kind is FaultKind.DEGRADE and not 0.0 < self.factor <= 1.0:
            raise ConfigurationError(
                f"degrade factor must be in (0,1], got {self.factor}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one run."""

    events: Sequence[FaultEvent] = ()

    @staticmethod
    def node_kill(
        node: str, at: float, recover_at: Optional[float] = None
    ) -> "FaultPlan":
        """The EXP18 chaos shape: kill one node, optionally revive it."""
        events: List[FaultEvent] = [FaultEvent(at, node, FaultKind.CRASH)]
        if recover_at is not None:
            events.append(FaultEvent(recover_at, node, FaultKind.RECOVER))
        return FaultPlan(tuple(events))


class FaultInjector:
    """Arms a :class:`FaultPlan` against a dispatcher's cluster."""

    def __init__(self, dispatcher: ClusterDispatcher) -> None:
        self.dispatcher = dispatcher
        self.fired: List[FaultEvent] = []
        self.lost_and_resubmitted = 0

    def arm(self, plan: FaultPlan) -> None:
        """Schedule every fault in ``plan`` on the shared clock."""
        for event in plan.events:
            self.dispatcher.node(event.node)  # validate the name up front
            self.dispatcher.sim.schedule_at(
                event.time,
                lambda e=event: self._fire(e),
                label=f"fault:{event.kind.value}:{event.node}",
            )

    def _fire(self, event: FaultEvent) -> None:
        dispatcher = self.dispatcher
        node = dispatcher.node(event.node)
        if event.kind is FaultKind.CRASH:
            self.lost_and_resubmitted += dispatcher.crash_node(node)
        elif event.kind is FaultKind.DEGRADE:
            dispatcher.degrade_node(node, event.factor)
        elif event.kind is FaultKind.DRAIN:
            dispatcher.drain_node(node)
        elif event.kind is FaultKind.RECOVER:
            dispatcher.activate_node(node)
        self.fired.append(event)
