"""Cluster scenario builders: one arrival stream, N nodes.

:func:`build_cluster` assembles a homogeneous cluster on a shared
simulator; :func:`cluster_overload_scenario` is the EXP18 workload — an
OLTP stream whose rate saturates any single node plus heavy BI queries
that pile onto whichever node takes them; :func:`run_cluster_scenario`
wires the two together (generator → dispatcher → nodes), optionally
arms a fault plan, runs to the horizon and returns the dispatcher for
inspection.  The CLI ``cluster`` subcommand and the perf harness both
drive this module, so the demo, the bench and the tests share one
deterministic code path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.failover import FaultInjector, FaultPlan
from repro.cluster.node import NODE_MACHINE, ClusterNode, NodeHealth
from repro.cluster.placement import make_policy
from repro.core.sla import SLASet, response_time_sla
from repro.engine.resources import MachineSpec
from repro.engine.simulator import Simulator
from repro.workloads.generator import (
    Scenario,
    WorkloadGenerator,
    bi_workload,
    oltp_workload,
)

#: The cluster SLA used by the demo, EXP18 and the SLA-aware placer.
CLUSTER_SLAS = SLASet(
    [
        response_time_sla("oltp", average=0.5, p95=2.0, importance=3),
        response_time_sla("bi", average=120.0, importance=1),
    ]
)


def build_cluster(
    sim: Simulator,
    nodes: int = 4,
    policy: str = "cost",
    machine: Optional[MachineSpec] = None,
    mpl: int = 12,
    max_outstanding: Optional[int] = None,
    max_queue_depth: Optional[int] = None,
    standby: int = 0,
    slas: Optional[SLASet] = None,
    control_period: float = 1.0,
    heartbeat_period: float = 1.0,
    cache_eligible: bool = True,
) -> ClusterDispatcher:
    """A homogeneous cluster of ``nodes`` active + ``standby`` spares."""
    slas = CLUSTER_SLAS if slas is None else slas
    cluster_nodes = [
        ClusterNode(
            sim,
            name=f"n{index}",
            machine=machine or NODE_MACHINE,
            mpl=mpl,
            max_outstanding=max_outstanding,
            control_period=control_period,
            heartbeat_period=heartbeat_period,
            health=NodeHealth.UP if index < nodes else NodeHealth.STANDBY,
        )
        for index in range(nodes + standby)
    ]
    return ClusterDispatcher(
        sim,
        cluster_nodes,
        placement=make_policy(policy, slas=slas),
        slas=slas,
        max_queue_depth=max_queue_depth,
        control_period=control_period,
        cache_eligible=cache_eligible,
    )


def cluster_overload_scenario(
    horizon: float = 120.0,
    oltp_rate: float = 30.0,
    bi_rate: float = 0.3,
) -> Scenario:
    """The EXP18 mix: a fast OLTP stream plus occasional BI monsters.

    The BI stream (~0.3/s of multi-second scans) amounts to roughly one
    :data:`NODE_MACHINE` node's worth of sustained work — enough to
    saturate one node but leave a 4-node cluster with ample headroom.
    Run it at a tight per-node MPL (EXP18 uses 2) and placement decides
    everything: blind round-robin keeps landing OLTP behind BI monsters
    that hold the dispatch slots for seconds, while load-aware policies
    steer the cheap stream to whichever nodes are clear.
    """
    return Scenario(
        specs=(
            oltp_workload(rate=oltp_rate, priority=3),
            bi_workload(
                rate=bi_rate,
                priority=1,
                median_cpu=6.0,
                median_io=10.0,
                sigma=0.8,
                memory_low=150.0,
                memory_high=600.0,
            ),
        ),
        horizon=horizon,
    )


def run_cluster_scenario(
    seed: int = 42,
    nodes: int = 4,
    policy: str = "cost",
    horizon: float = 120.0,
    drain: Optional[float] = None,
    oltp_rate: float = 30.0,
    bi_rate: float = 0.3,
    mpl: int = 2,
    max_queue_depth: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    sim: Optional[Simulator] = None,
    cache_eligible: bool = True,
) -> ClusterDispatcher:
    """Run the canonical cluster demo end to end; returns the dispatcher.

    The returned dispatcher carries a ``generator`` attribute (arrival
    stream) and, when a fault plan was armed, an ``injector`` attribute.
    """
    sim = sim or Simulator(seed=seed)
    dispatcher = build_cluster(
        sim,
        nodes=nodes,
        policy=policy,
        mpl=mpl,
        max_queue_depth=max_queue_depth,
        cache_eligible=cache_eligible,
    )
    scenario = cluster_overload_scenario(
        horizon=horizon, oltp_rate=oltp_rate, bi_rate=bi_rate
    )
    generator: WorkloadGenerator = scenario.build(
        sim, dispatcher.submit, sessions=dispatcher.sessions
    )
    dispatcher.add_completion_listener(generator.notify_done)
    dispatcher.generator = generator
    if fault_plan is not None:
        injector = FaultInjector(dispatcher)
        injector.arm(fault_plan)
        dispatcher.injector = injector
    dispatcher.run(horizon, drain=horizon if drain is None else drain)
    return dispatcher


def replicate_cluster_scenario(
    seeds: Sequence[int],
    workers: int = 1,
    **scenario_params,
) -> List[Dict[str, object]]:
    """Seed replications of the canonical cluster scenario, in parallel.

    Each seed is an independent shared-nothing simulation, so the runs
    fan out over :func:`repro.parallel.run_tasks`; summaries come back
    in seed order (task-key ordered reduction) with per-run digests, so
    the returned list is identical for any ``workers`` count.
    ``scenario_params`` are forwarded to the ``cluster`` task runner
    (``nodes``, ``policy``, ``horizon``, ``mpl``, …).
    """
    from repro.parallel import make_task, run_tasks

    tasks = [
        make_task("cluster", seed=int(seed), **scenario_params)
        for seed in seeds
    ]
    result = run_tasks(tasks, workers=workers)
    return result.values
