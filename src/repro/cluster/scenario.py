"""Cluster scenario builders: one arrival stream, N nodes.

:func:`build_cluster` assembles a homogeneous cluster on a shared
simulator; :func:`cluster_overload_scenario` is the EXP18 workload — an
OLTP stream whose rate saturates any single node plus heavy BI queries
that pile onto whichever node takes them; :func:`run_cluster_scenario`
wires the two together (generator → dispatcher → nodes), optionally
arms a fault plan, runs to the horizon and returns the dispatcher for
inspection.  The CLI ``cluster`` subcommand and the perf harness both
drive this module, so the demo, the bench and the tests share one
deterministic code path.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.dispatcher import (
    ClusterDispatcher,
    TenantFn,
    make_binding,
    tenant_key,
)
from repro.cluster.failover import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
)
from repro.cluster.node import NODE_MACHINE, ClusterNode, NodeHealth
from repro.cluster.placement import make_policy
from repro.core.sla import SLASet, response_time_sla
from repro.engine.resources import MachineSpec
from repro.engine.simulator import Simulator
from repro.workloads.models import OpenArrivals
from repro.workloads.generator import (
    Scenario,
    WorkloadGenerator,
    bi_workload,
    oltp_workload,
)

#: The cluster SLA used by the demo, EXP18 and the SLA-aware placer.
CLUSTER_SLAS = SLASet(
    [
        response_time_sla("oltp", average=0.5, p95=2.0, importance=3),
        response_time_sla("bi", average=120.0, importance=1),
    ]
)


def build_cluster(
    sim: Simulator,
    nodes: int = 4,
    policy: str = "cost",
    machine: Optional[MachineSpec] = None,
    mpl: int = 12,
    max_outstanding: Optional[int] = None,
    max_queue_depth: Optional[int] = None,
    standby: int = 0,
    slas: Optional[SLASet] = None,
    control_period: float = 1.0,
    heartbeat_period: float = 1.0,
    cache_eligible: bool = True,
    dispatch: str = "push",
    speed_factors: Optional[Sequence[float]] = None,
    scheduler_factory: Optional[Callable[[], object]] = None,
    tenant_quotas: Optional[Dict[str, int]] = None,
    tenant_shares: Optional[Dict[str, float]] = None,
    tenant_of: Optional[TenantFn] = None,
) -> ClusterDispatcher:
    """A cluster of ``nodes`` active + ``standby`` spares.

    ``speed_factors`` makes the cluster heterogeneous: node ``i`` runs
    at ``speed_factors[i % len(speed_factors)]`` of full speed (the
    deterministic speed assignment the matcher benchmarks use).
    ``dispatch`` selects the binding policy — ``"push"`` places on
    arrival through ``policy``, ``"pull"`` late-binds through the task
    queue + matcher.

    The multi-tenant knobs (scenario suite):

    * ``scheduler_factory`` — zero-argument factory called once per
      node to build its wait-queue scheduler (e.g. a
      :class:`~repro.scheduling.queues.TenantShareScheduler` holding
      per-tenant MPL reservations); ``None`` keeps each node's default;
    * ``tenant_quotas`` — cluster-tier per-tenant admission quotas,
      forwarded to the dispatcher;
    * ``tenant_shares`` — per-tenant dispatch shares for *pull* mode:
      the task queue buckets by tenant instead of workload class and
      splits dispatch slots by these weights (ignored under push).
    """
    slas = CLUSTER_SLAS if slas is None else slas
    cluster_nodes = [
        ClusterNode(
            sim,
            name=f"n{index}",
            machine=machine or NODE_MACHINE,
            mpl=mpl,
            max_outstanding=max_outstanding,
            scheduler=scheduler_factory() if scheduler_factory else None,
            control_period=control_period,
            heartbeat_period=heartbeat_period,
            health=NodeHealth.UP if index < nodes else NodeHealth.STANDBY,
            speed_factor=(
                speed_factors[index % len(speed_factors)]
                if speed_factors
                else 1.0
            ),
        )
        for index in range(nodes + standby)
    ]
    binding = None
    if tenant_shares and dispatch == "pull":
        binding = make_binding(
            "pull",
            class_shares=tenant_shares,
            key_fn=lambda query: tenant_key(query) or "<untenanted>",
        )
    return ClusterDispatcher(
        sim,
        cluster_nodes,
        placement=make_policy(policy, slas=slas),
        slas=slas,
        max_queue_depth=max_queue_depth,
        control_period=control_period,
        cache_eligible=cache_eligible,
        dispatch=dispatch,
        binding=binding,
        tenant_quotas=tenant_quotas,
        tenant_of=tenant_of,
    )


def cluster_overload_scenario(
    horizon: float = 120.0,
    oltp_rate: float = 30.0,
    bi_rate: float = 0.3,
) -> Scenario:
    """The EXP18 mix: a fast OLTP stream plus occasional BI monsters.

    The BI stream (~0.3/s of multi-second scans) amounts to roughly one
    :data:`NODE_MACHINE` node's worth of sustained work — enough to
    saturate one node but leave a 4-node cluster with ample headroom.
    Run it at a tight per-node MPL (EXP18 uses 2) and placement decides
    everything: blind round-robin keeps landing OLTP behind BI monsters
    that hold the dispatch slots for seconds, while load-aware policies
    steer the cheap stream to whichever nodes are clear.
    """
    return Scenario(
        specs=(
            oltp_workload(rate=oltp_rate, priority=3),
            bi_workload(
                rate=bi_rate,
                priority=1,
                median_cpu=6.0,
                median_io=10.0,
                sigma=0.8,
                memory_low=150.0,
                memory_high=600.0,
            ),
        ),
        horizon=horizon,
    )


def run_cluster_scenario(
    seed: int = 42,
    nodes: int = 4,
    policy: str = "cost",
    horizon: float = 120.0,
    drain: Optional[float] = None,
    oltp_rate: float = 30.0,
    bi_rate: float = 0.3,
    mpl: int = 2,
    max_queue_depth: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    sim: Optional[Simulator] = None,
    cache_eligible: bool = True,
    dispatch: str = "push",
) -> ClusterDispatcher:
    """Run the canonical cluster demo end to end; returns the dispatcher.

    The returned dispatcher carries a ``generator`` attribute (arrival
    stream) and, when a fault plan was armed, an ``injector`` attribute.
    """
    sim = sim or Simulator(seed=seed)
    dispatcher = build_cluster(
        sim,
        nodes=nodes,
        policy=policy,
        mpl=mpl,
        max_queue_depth=max_queue_depth,
        cache_eligible=cache_eligible,
        dispatch=dispatch,
    )
    scenario = cluster_overload_scenario(
        horizon=horizon, oltp_rate=oltp_rate, bi_rate=bi_rate
    )
    generator: WorkloadGenerator = scenario.build(
        sim, dispatcher.submit, sessions=dispatcher.sessions
    )
    dispatcher.add_completion_listener(generator.notify_done)
    dispatcher.generator = generator
    if fault_plan is not None:
        injector = FaultInjector(dispatcher)
        injector.arm(fault_plan)
        dispatcher.injector = injector
    dispatcher.run(horizon, drain=horizon if drain is None else drain)
    return dispatcher


# ----------------------------------------------------------------------
# the matcher scenario: push vs pull at 64-256 nodes under stress
# ----------------------------------------------------------------------

#: Deterministic heterogeneous speed assignment: every fourth node is
#: markedly slow, another quarter mildly slow — the mix where early
#: binding hurts (work committed to a slow node waits out its backlog)
#: and late binding shines (slow nodes simply pull less often).
HETEROGENEOUS_SPEEDS = (1.0, 1.0, 0.7, 0.4)


def churn_plan(
    nodes: int,
    horizon: float,
    waves: int = 3,
    kill_fraction: float = 0.125,
    outage: float = 0.15,
) -> FaultPlan:
    """Deterministic crash/recover waves over an ``nodes``-wide cluster.

    ``waves`` evenly spaced crash waves each take out a rotating
    ``kill_fraction`` slice of the cluster for ``outage`` of the
    horizon, then revive it — a pure function of (nodes, horizon,
    waves), so churn runs are as digest-stable as clean ones.
    """
    events = []
    kill_count = max(1, int(nodes * kill_fraction))
    for wave in range(waves):
        at = horizon * (wave + 1) / (waves + 1)
        recover_at = min(horizon * 0.98, at + outage * horizon)
        for slot in range(kill_count):
            victim = (wave * kill_count + slot) % nodes
            events.append(FaultEvent(at, f"n{victim}", FaultKind.CRASH))
            events.append(FaultEvent(recover_at, f"n{victim}", FaultKind.RECOVER))
    return FaultPlan(tuple(events))


def matcher_scenario(
    horizon: float = 120.0,
    nodes: int = 64,
    oltp_rate_per_node: float = 6.0,
    bi_rate: float = 1.0,
    flash_start: float = 0.35,
    flash_end: float = 0.5,
    flash_multiplier: float = 4.0,
) -> Scenario:
    """The push-vs-pull stress mix: steady load plus a flash crowd.

    A per-node-scaled OLTP stream runs at ``oltp_rate_per_node x
    nodes``; between ``flash_start`` and ``flash_end`` (fractions of
    the horizon) the rate jumps by ``flash_multiplier`` — the arrival
    burst that floods whatever queue structure the binding policy
    keeps.  A BI stream of multi-second scans rides along so per-class
    shares and slow-node binding both matter.
    """
    base_rate = oltp_rate_per_node * nodes
    oltp = oltp_workload(rate=base_rate, priority=3)
    oltp = replace(
        oltp,
        arrivals=OpenArrivals(
            rate=base_rate,
            phases=(
                (flash_start * horizon, base_rate * flash_multiplier),
                (flash_end * horizon, base_rate),
            ),
        ),
    )
    return Scenario(
        specs=(
            oltp,
            bi_workload(
                rate=bi_rate,
                priority=1,
                median_cpu=4.0,
                median_io=7.0,
                sigma=0.8,
                memory_low=150.0,
                memory_high=500.0,
            ),
        ),
        horizon=horizon,
    )


def run_matcher_scenario(
    seed: int = 42,
    nodes: int = 64,
    dispatch: str = "pull",
    policy: str = "cost",
    horizon: float = 120.0,
    drain: Optional[float] = None,
    mpl: int = 2,
    oltp_rate_per_node: float = 6.0,
    bi_rate: float = 1.0,
    churn: bool = True,
    heterogeneous: bool = True,
    max_queue_depth: Optional[int] = None,
) -> ClusterDispatcher:
    """Run the 64-256 node matcher stress scenario; returns the dispatcher.

    One code path drives both binding policies (``dispatch="push"`` or
    ``"pull"``) over the same arrival stream, node speeds and churn
    plan, so push-vs-pull comparisons differ *only* in when work binds
    to capacity.  Used by ``make bench-matcher``, the ``--dispatch``
    CLI knob and the conservation property tests.
    """
    sim = Simulator(seed=seed)
    dispatcher = build_cluster(
        sim,
        nodes=nodes,
        policy=policy,
        mpl=mpl,
        max_queue_depth=max_queue_depth,
        dispatch=dispatch,
        speed_factors=HETEROGENEOUS_SPEEDS if heterogeneous else None,
    )
    scenario = matcher_scenario(
        horizon=horizon,
        nodes=nodes,
        oltp_rate_per_node=oltp_rate_per_node,
        bi_rate=bi_rate,
    )
    generator: WorkloadGenerator = scenario.build(
        sim, dispatcher.submit, sessions=dispatcher.sessions
    )
    dispatcher.add_completion_listener(generator.notify_done)
    dispatcher.generator = generator
    if churn:
        injector = FaultInjector(dispatcher)
        injector.arm(churn_plan(nodes, horizon))
        dispatcher.injector = injector
    dispatcher.run(horizon, drain=2.0 * horizon if drain is None else drain)
    return dispatcher


def replicate_cluster_scenario(
    seeds: Sequence[int],
    workers: int = 1,
    **scenario_params,
) -> List[Dict[str, object]]:
    """Seed replications of the canonical cluster scenario, in parallel.

    Each seed is an independent shared-nothing simulation, so the runs
    fan out over :func:`repro.parallel.run_tasks`; summaries come back
    in seed order (task-key ordered reduction) with per-run digests, so
    the returned list is identical for any ``workers`` count.
    ``scenario_params`` are forwarded to the ``cluster`` task runner
    (``nodes``, ``policy``, ``horizon``, ``mpl``, …).
    """
    from repro.parallel import make_task, run_tasks

    tasks = [
        make_task("cluster", seed=int(seed), **scenario_params)
        for seed in seeds
    ]
    result = run_tasks(tasks, workers=workers)
    return result.values
