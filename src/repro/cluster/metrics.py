"""Cluster-rollup metrics: per-node and aggregate views.

Built on the per-node streaming :class:`~repro.core.metrics` collectors
— nothing is double-counted: the rollup *reads* each node manager's
outcome series and merges them per workload on demand.  The collector
itself only stores what no node knows: placement decisions,
cluster-level rejections, crash resubmissions and health transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.node import ClusterNode, NodeHealth
from repro.engine.query import Query


@dataclass(frozen=True)
class HealthChange:
    """One node health transition, for the timeline."""

    time: float
    node: str
    health: NodeHealth


@dataclass
class WorkloadRollup:
    """Aggregate outcomes for one workload across every node."""

    workload: str
    completions: int = 0
    rejections: int = 0
    kills: int = 0
    mean_response_time: Optional[float] = None
    p95_response_time: Optional[float] = None
    mean_queue_delay: Optional[float] = None


class ClusterMetrics:
    """Rollup over a set of nodes plus dispatcher-level counters."""

    def __init__(self, nodes: Sequence[ClusterNode]) -> None:
        self.nodes = list(nodes)
        self.placements: Dict[str, int] = {node.name: 0 for node in self.nodes}
        self.placement_decisions = 0
        self.replacements = 0          # re-placed after a node-local rejection
        self.resubmissions = 0         # crash-lost work resubmitted
        self.cluster_rejections = 0
        #: cluster rejections bucketed by tenant (multi-tenant scenarios)
        self.cluster_rejections_by_key: Dict[str, int] = {}
        self.health_changes: List[HealthChange] = []

    # ------------------------------------------------------------------
    # event recording (called by the dispatcher)
    # ------------------------------------------------------------------
    def record_placement(self, node: ClusterNode) -> None:
        self.placement_decisions += 1
        self.placements[node.name] = self.placements.get(node.name, 0) + 1

    def record_replacement(self) -> None:
        self.replacements += 1

    def record_resubmission(self, query: Query) -> None:
        self.resubmissions += 1

    def record_cluster_rejection(
        self, query: Query, key: Optional[str] = None
    ) -> None:
        self.cluster_rejections += 1
        if key is not None:
            self.cluster_rejections_by_key[key] = (
                self.cluster_rejections_by_key.get(key, 0) + 1
            )

    def record_health(self, time: float, node: ClusterNode) -> None:
        self.health_changes.append(HealthChange(time, node.name, node.health))

    # ------------------------------------------------------------------
    # rollups (read node collectors on demand)
    # ------------------------------------------------------------------
    def workloads(self) -> List[str]:
        names = set()
        for node in self.nodes:
            names.update(node.manager.metrics.workloads())
        return sorted(names)

    def rollup(self, workload: str) -> WorkloadRollup:
        """Merge one workload's outcome series across all nodes."""
        response_times: List[float] = []
        queue_delays: List[float] = []
        out = WorkloadRollup(workload=workload)
        for node in self.nodes:
            stats = node.manager.metrics.stats_for(workload)
            out.completions += stats.completions
            out.rejections += stats.rejections
            out.kills += stats.kills
            response_times.extend(stats.response_times)
            queue_delays.extend(stats.queue_delays)
        if response_times:
            arr = np.asarray(response_times, dtype=float)
            out.mean_response_time = float(np.mean(arr))
            out.p95_response_time = float(np.percentile(arr, 95.0))
        if queue_delays:
            out.mean_queue_delay = float(np.mean(np.asarray(queue_delays)))
        return out

    def total_completions(self) -> int:
        return sum(self.rollup(w).completions for w in self.workloads())

    def aggregate_throughput(self, now: float) -> float:
        return self.total_completions() / now if now > 0 else 0.0

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def rollup_table(self, now: float) -> str:
        """The cluster-rollup table printed by the CLI and benches."""
        lines = [
            "CLUSTER ROLLUP "
            f"(t={now:.0f}s, {len(self.nodes)} nodes, "
            f"{self.placement_decisions} placements, "
            f"{self.replacements} re-placements, "
            f"{self.resubmissions} crash resubmissions, "
            f"{self.cluster_rejections} cluster rejections)",
            f"{'workload':>12} {'done':>7} {'rej':>5} {'kill':>5} "
            f"{'rt_avg':>8} {'rt_p95':>8} {'qdelay':>8}",
        ]
        def fmt(value: Optional[float]) -> str:
            return f"{value:8.3f}" if value is not None else f"{'-':>8}"

        for workload in self.workloads():
            roll = self.rollup(workload)
            lines.append(
                f"{workload:>12} {roll.completions:>7} {roll.rejections:>5} "
                f"{roll.kills:>5} {fmt(roll.mean_response_time)} "
                f"{fmt(roll.p95_response_time)} {fmt(roll.mean_queue_delay)}"
            )
        lines.append(
            f"{'per-node':>12} "
            + "  ".join(
                f"{node.name}={self.placements.get(node.name, 0)}"
                for node in self.nodes
            )
        )
        return "\n".join(lines)

    def timeline_lanes(self, horizon: float, bins: int = 64) -> Dict[str, str]:
        """Per-node character lanes for the ASCII cluster timeline.

        Load shading comes from each node's monitor samples (running
        count vs. its MPL); health changes overlay crash (``x``), drain
        (``~``) and standby (``.``) intervals.
        """
        ramp = " .:-=+*#"
        lanes: Dict[str, str] = {}
        width = max(horizon, 1e-9)
        for node in self.nodes:
            # load per bin from the node's periodic samples
            load = [0.0] * bins
            counts = [0] * bins
            for sample in node.manager.metrics.samples():
                index = min(bins - 1, int(sample.time / width * bins))
                load[index] += sample.running / max(node.mpl, 1)
                counts[index] += 1
            chars = []
            for index in range(bins):
                if counts[index]:
                    level = load[index] / counts[index]
                    chars.append(ramp[min(len(ramp) - 1, int(level * (len(ramp) - 1)))])
                else:
                    chars.append(" ")
            # overlay health intervals
            changes = [c for c in self.health_changes if c.node == node.name]
            changes.sort(key=lambda c: c.time)
            marks = {
                NodeHealth.DOWN: "x",
                NodeHealth.DRAINING: "~",
                NodeHealth.STANDBY: ".",
            }
            for index, change in enumerate(changes):
                mark = marks.get(change.health)
                if mark is None:
                    continue
                until = (
                    changes[index + 1].time if index + 1 < len(changes) else horizon
                )
                lo = min(bins - 1, int(change.time / width * bins))
                hi = min(bins, max(lo + 1, int(until / width * bins) + 1))
                for k in range(lo, hi):
                    chars[k] = mark
            lanes[node.name] = "".join(chars)
        return lanes
