"""Elastic provisioning: grow and shrink the active node set.

The :class:`ElasticProvisioner` closes a feedback loop around the
cluster the same way §3.4's throttling controllers close one around a
single server — and it literally reuses those controllers
(:class:`~repro.control.controllers.StepController` by default, a
:class:`~repro.control.controllers.PIController` if you hand one in).
Each control period it measures a cluster-wide pressure signal
(normalized queue backlog, or SLA misses via ``signal="sla"``), feeds
the violation to the controller, maps the controller's [0, 1] output to
a target active-node count, then activates STANDBY spares or drains the
highest-numbered active nodes to meet it.  Drained nodes finish their
work and park as STANDBY, ready for the next scale-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cluster.dispatcher import ClusterDispatcher
from repro.cluster.node import NodeHealth
from repro.control.controllers import PIController, StepController
from repro.errors import ConfigurationError


@dataclass
class ProvisioningDecision:
    """One tick's observation and action, for experiment inspection."""

    time: float
    pressure: float
    target_active: int
    activated: Tuple[str, ...] = ()
    drained: Tuple[str, ...] = ()


@dataclass
class ElasticProvisioner:
    """Queue-delay / SLA-miss driven node provisioning controller.

    Parameters
    ----------
    dispatcher:
        The cluster to scale.
    min_nodes, max_nodes:
        Bounds on the active (UP or DRAINING) node count; ``max_nodes``
        defaults to the cluster size.
    setpoint:
        Target pressure.  Pressure is ``outstanding work / (active
        nodes * per-node ceiling)`` for the default queue signal, or
        ``1 - mean SLA attainment`` for ``signal="sla"`` — both ~0 when
        comfortable and ≥ 1 when badly behind.
    controller:
        A Step or PI controller with output in [0, 1]; 0 maps to
        ``min_nodes`` and 1 to ``max_nodes``.
    period:
        Seconds between provisioning decisions.
    """

    dispatcher: ClusterDispatcher
    min_nodes: int = 1
    max_nodes: Optional[int] = None
    setpoint: float = 0.5
    controller: Optional[object] = None
    period: float = 5.0
    signal: str = "queue"
    decisions: List[ProvisioningDecision] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        total = len(self.dispatcher.nodes)
        if self.max_nodes is None:
            self.max_nodes = total
        if not 1 <= self.min_nodes <= self.max_nodes <= total:
            raise ConfigurationError(
                f"need 1 <= min_nodes <= max_nodes <= {total}, got "
                f"[{self.min_nodes}, {self.max_nodes}]"
            )
        if self.signal not in ("queue", "sla"):
            raise ConfigurationError(f"unknown signal {self.signal!r}")
        if self.controller is None:
            self.controller = StepController(initial_step=0.34, min_step=0.05)
        if not isinstance(self.controller, (StepController, PIController)):
            raise ConfigurationError(
                "controller must be a StepController or PIController"
            )
        self._proc = self.dispatcher.sim.schedule_periodic(
            self.period, self.tick, label="cluster:elastic"
        )

    # ------------------------------------------------------------------
    def pressure(self) -> float:
        """The cluster-wide load signal the controller regulates."""
        if self.signal == "sla":
            misses: List[float] = []
            now = self.dispatcher.sim.now
            for node in self.dispatcher.nodes:
                attainment = node.manager.metrics.attainment(
                    self.dispatcher.slas, now
                )
                misses.extend(1.0 - met for met in attainment.values())
            return sum(misses) / len(misses) if misses else 0.0
        active = [
            n
            for n in self.dispatcher.nodes
            if n.health in (NodeHealth.UP, NodeHealth.DRAINING)
        ]
        ceiling = sum(max(n.max_outstanding, 1) for n in active)
        if ceiling <= 0:
            return 1.0
        return self.dispatcher.outstanding_work() / ceiling

    def tick(self) -> ProvisioningDecision:
        """One provisioning decision (also called by the periodic loop)."""
        pressure = self.pressure()
        if isinstance(self.controller, StepController):
            fraction = self.controller.update(pressure - self.setpoint)
        else:  # PIController: setpoint lives inside the controller
            fraction = self.controller.update(pressure)
        target = self.min_nodes + round(fraction * (self.max_nodes - self.min_nodes))
        decision = ProvisioningDecision(
            time=self.dispatcher.sim.now, pressure=pressure, target_active=target
        )
        active = [
            n for n in self.dispatcher.nodes if n.health is NodeHealth.UP
        ]
        if len(active) < target:
            decision.activated = self._scale_up(target - len(active))
        elif len(active) > target:
            decision.drained = self._scale_down(len(active) - target)
        self._park_drained()
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    def _scale_up(self, count: int) -> Tuple[str, ...]:
        activated: List[str] = []
        for node in self.dispatcher.nodes:
            if len(activated) >= count:
                break
            if node.health in (NodeHealth.STANDBY, NodeHealth.DRAINING):
                self.dispatcher.activate_node(node)
                activated.append(node.name)
        return tuple(activated)

    def _scale_down(self, count: int) -> Tuple[str, ...]:
        drained: List[str] = []
        # drain from the tail so the stable head of the cluster persists
        for node in reversed(self.dispatcher.nodes):
            if len(drained) >= count:
                break
            if node.health is NodeHealth.UP:
                self.dispatcher.drain_node(node)
                drained.append(node.name)
        return tuple(drained)

    def _park_drained(self) -> None:
        """Drained nodes that finished their work become standby spares."""
        for node in self.dispatcher.nodes:
            if node.health is NodeHealth.DRAINING and node.outstanding_work == 0:
                node.park()
                self.dispatcher.metrics.record_health(
                    self.dispatcher.sim.now, node
                )

    def active_count(self) -> int:
        return sum(
            1 for n in self.dispatcher.nodes if n.health is NodeHealth.UP
        )

    def shutdown(self) -> None:
        self._proc.stop()
