"""The cluster task queue: priority-ordered, per-class shares, tags.

This is the pull half of the dispatch substrate (DIRAC's TaskQueueDB in
miniature).  In *push* dispatch the dispatcher binds every arrival to a
node immediately; in *pull* dispatch arrivals park here — one entry per
request, bucketed by workload class — until a node with a free
execution slot asks the :class:`~repro.cluster.matcher.Matcher` for
work.  Ordering within the queue is the cluster-level analogue of the
paper's §3.3 wait-queue management:

* **per-class shares** — when several workload classes have waiting
  entries, classes are served in deficit order (entries served so far
  divided by the class's share), so a class with share 3 receives ~3x
  the dispatch slots of a share-1 class under contention;
* **priority order** — within a class, higher business priority first,
  FIFO within a priority level;
* **requirement tags** — an entry may carry capability tags
  (``frozenset`` of strings); it only ever matches a node whose
  :attr:`~repro.cluster.node.ClusterNode.capabilities` cover them —
  DIRAC's requirement/capability matching.

Everything here is pure data structure — no clock, no RNG — and every
tie is broken deterministically (class name, then insertion sequence),
so pull dispatch inherits the simulator's bit-determinism.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.engine.query import Query

#: Derives an entry's requirement tags from the query; the default
#: (``None``) requires nothing, so every node is capability-eligible.
RequirementsFn = Callable[[Query], FrozenSet[str]]

#: Derives an entry's share-bucket key from the query; the default
#: (``None``) buckets by workload class.  Multi-tenant scenarios pass a
#: tenant extractor here so shares split dispatch *between tenants*.
KeyFn = Callable[[Query], str]

NO_REQUIREMENTS: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class TaskEntry:
    """One queued request, ready for capability matching.

    ``sort_key`` orders entries within a class: higher priority first,
    then insertion sequence (FIFO) — the deterministic tie-break.
    """

    query: Query
    workload: str
    priority: int
    seq: int
    enqueue_time: float
    requirements: FrozenSet[str] = NO_REQUIREMENTS

    @property
    def sort_key(self) -> tuple:
        return (-self.priority, self.seq)


@dataclass
class _ClassBucket:
    """Per-class heap of entries plus the share bookkeeping."""

    share: float
    served: float = 0.0
    heap: List[tuple] = field(default_factory=list)  # (sort_key, entry)

    @property
    def deficit(self) -> float:
        """Entries served so far, normalized by the class share.

        The matcher serves the class with the smallest deficit first,
        which converges on share-proportional dispatch counts whenever
        several classes have matching work waiting.
        """
        return self.served / max(self.share, 1e-9)


class TaskQueue:
    """Priority-ordered, share-aware, tag-matching wait queue.

    Parameters
    ----------
    class_shares:
        ``{workload: share}`` dispatch shares; classes not listed get
        ``default_share``.  Shares only matter under contention —
        an uncontended class is served whenever it matches.
    default_share:
        Share for classes without an explicit entry.
    requirements_fn:
        Optional ``query -> frozenset`` deriving requirement tags per
        entry (e.g. route ``bi`` queries only to ``"big-memory"``
        nodes).  ``None`` means no entry requires anything.
    key_fn:
        Optional ``query -> str`` deriving the share-bucket key.  The
        default buckets by workload class (``workload_name`` or the
        ``name:`` sql prefix); tenant-isolated clusters pass a tenant
        extractor so ``class_shares`` become per-tenant queue shares.
    """

    def __init__(
        self,
        class_shares: Optional[Dict[str, float]] = None,
        default_share: float = 1.0,
        requirements_fn: Optional[RequirementsFn] = None,
        key_fn: Optional[KeyFn] = None,
    ) -> None:
        if default_share <= 0:
            raise ValueError("default_share must be > 0")
        for name, share in (class_shares or {}).items():
            if share <= 0:
                raise ValueError(f"share for {name!r} must be > 0")
        self.class_shares = dict(class_shares or {})
        self.default_share = default_share
        self.requirements_fn = requirements_fn
        self.key_fn = key_fn
        self._buckets: Dict[str, _ClassBucket] = {}
        self._seq = 0
        self._len = 0

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def _class_key(self, query: Query) -> str:
        if self.key_fn is not None:
            return self.key_fn(query)
        if query.workload_name:
            return query.workload_name
        if ":" in query.sql:
            return query.sql.split(":", 1)[0]
        return "<unassigned>"

    def _bucket(self, workload: str) -> _ClassBucket:
        bucket = self._buckets.get(workload)
        if bucket is None:
            bucket = self._buckets[workload] = _ClassBucket(
                share=self.class_shares.get(workload, self.default_share)
            )
        return bucket

    def push(self, query: Query, now: float) -> TaskEntry:
        """Queue one request; returns its entry (for introspection)."""
        workload = self._class_key(query)
        requirements = (
            self.requirements_fn(query)
            if self.requirements_fn is not None
            else NO_REQUIREMENTS
        )
        entry = TaskEntry(
            query=query,
            workload=workload,
            priority=query.priority,
            seq=self._seq,
            enqueue_time=now,
            requirements=frozenset(requirements),
        )
        self._seq += 1
        bucket = self._bucket(workload)
        if not bucket.heap:
            self._level_refilled(bucket)
        heapq.heappush(bucket.heap, (entry.sort_key, entry))
        self._len += 1
        return entry

    def _level_refilled(self, bucket: _ClassBucket) -> None:
        """Reset share credit for a bucket going empty → non-empty.

        Deficit must not accumulate while a class/tenant has no eligible
        work: a bucket that sat empty keeps its old ``served`` count, so
        its deficit freezes while the classes actually being served pull
        ahead.  Left alone, the refilled bucket would then monopolize
        dispatch until it "caught up" on share it never had work for —
        starving everyone else.  Instead, a refilled bucket re-enters
        level with the least-served *backlogged* bucket: the fair split
        applies from now on, not retroactively.
        """
        active = [
            other.deficit
            for other in self._buckets.values()
            if other.heap and other is not bucket
        ]
        if not active:
            return
        floor = min(active)
        if bucket.deficit < floor:
            bucket.served = floor * max(bucket.share, 1e-9)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match(
        self,
        capabilities: FrozenSet[str],
        blocked: Optional[Callable[[Query], bool]] = None,
    ) -> Optional[TaskEntry]:
        """Pop the best entry a node with ``capabilities`` can take.

        Classes are visited in (deficit, -head priority, name) order;
        within a class, entries in priority-FIFO order.  ``blocked``
        filters entries the caller must skip (e.g. queries this node
        already refused).  Returns ``None`` when nothing matches.
        """
        for workload in self._class_order():
            entry = self._match_in(workload, capabilities, blocked)
            if entry is not None:
                return entry
        return None

    def _class_order(self) -> List[str]:
        ranked = []
        for workload, bucket in self._buckets.items():
            if not bucket.heap:
                continue
            head_priority = -bucket.heap[0][0][0]
            ranked.append((bucket.deficit, -head_priority, workload))
        ranked.sort()
        return [workload for _, _, workload in ranked]

    def _match_in(
        self,
        workload: str,
        capabilities: FrozenSet[str],
        blocked: Optional[Callable[[Query], bool]],
    ) -> Optional[TaskEntry]:
        bucket = self._buckets[workload]
        skipped: List[tuple] = []
        found: Optional[TaskEntry] = None
        while bucket.heap:
            item = heapq.heappop(bucket.heap)
            entry = item[1]
            if entry.requirements <= capabilities and not (
                blocked is not None and blocked(entry.query)
            ):
                found = entry
                break
            skipped.append(item)
        for item in skipped:
            heapq.heappush(bucket.heap, item)
        if found is not None:
            bucket.served += 1
            self._len -= 1
        return found

    # ------------------------------------------------------------------
    # maintenance / introspection
    # ------------------------------------------------------------------
    def remove(self, query_id: int) -> Optional[Query]:
        """Withdraw one queued request by id (bound enforcement)."""
        for bucket in self._buckets.values():
            for index, (_, entry) in enumerate(bucket.heap):
                if entry.query.query_id == query_id:
                    bucket.heap[index] = bucket.heap[-1]
                    bucket.heap.pop()
                    heapq.heapify(bucket.heap)
                    self._len -= 1
                    return entry.query
        return None

    def __len__(self) -> int:
        return self._len

    def queued_queries(self) -> List[Query]:
        """Snapshot in deterministic (class, priority, FIFO) order."""
        out: List[Query] = []
        for workload in sorted(self._buckets):
            bucket = self._buckets[workload]
            for _, entry in sorted(bucket.heap):
                out.append(entry.query)
        return out

    def queued_entries(self) -> List[TaskEntry]:
        out: List[TaskEntry] = []
        for workload in sorted(self._buckets):
            for _, entry in sorted(self._buckets[workload].heap):
                out.append(entry)
        return out

    def class_depths(self) -> Dict[str, int]:
        return {
            workload: len(bucket.heap)
            for workload, bucket in sorted(self._buckets.items())
            if bucket.heap
        }

    def served_counts(self) -> Dict[str, int]:
        return {
            workload: bucket.served
            for workload, bucket in sorted(self._buckets.items())
            if bucket.served
        }
