"""Placement policies: which node gets an incoming request.

The cluster dispatcher's placement decision is the cluster-level
analogue of single-server scheduling (paper §3.3): the same control
point, one level up.  Four policies are provided:

* :class:`RoundRobinPlacement` — rotate over nodes regardless of load
  (the uncontrolled baseline; DNS-round-robin flavour);
* :class:`LeastOutstandingPlacement` — fewest outstanding requests
  (load-balancer least-connections);
* :class:`CostBalancedPlacement` — least outstanding *estimated work*
  (device-seconds), so one monster query counts for what it costs, not
  as one request;
* :class:`SLAAwarePlacement` — WiSeDB-style greedy placement (Marcus &
  Papaemmanouil): predict the response time of the request on every
  candidate node and pick the busiest node that still meets the
  request's SLA deadline (tightest fit preserves headroom for heavier
  requests); if no node can meet it, fall back to the fastest node.

All policies are pure functions of the candidate list plus internal
counters — no wall clock, no RNG — so placements are bit-deterministic
for a given arrival sequence.  Candidate lists are pre-filtered by the
dispatcher: a policy never sees a DOWN, DRAINING, STANDBY or saturated
node.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence

from repro.cluster.node import ClusterNode
from repro.core.sla import ObjectiveKind, SLASet
from repro.engine.query import Query


class PlacementPolicy(abc.ABC):
    """Chooses a node for each request the dispatcher routes."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(
        self, query: Query, nodes: Sequence[ClusterNode]
    ) -> Optional[ClusterNode]:
        """Return the chosen node, or None to make the dispatcher queue.

        ``nodes`` is the dispatcher's eligible set (UP, below their
        saturation ceiling) in stable cluster order; it is never empty.
        """


class RoundRobinPlacement(PlacementPolicy):
    """Rotate placements across nodes, blind to load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, query: Query, nodes: Sequence[ClusterNode]
    ) -> Optional[ClusterNode]:
        node = nodes[self._next % len(nodes)]
        self._next += 1
        return node


class LeastOutstandingPlacement(PlacementPolicy):
    """Place on the node with the fewest outstanding requests."""

    name = "least-outstanding"

    def choose(
        self, query: Query, nodes: Sequence[ClusterNode]
    ) -> Optional[ClusterNode]:
        return min(nodes, key=lambda n: (n.outstanding_work, n.name))


class CostBalancedPlacement(PlacementPolicy):
    """Place on the node with the least outstanding *estimated* work.

    Balancing device-seconds rather than request counts keeps a stream
    of cheap OLTP requests away from the node digesting a monster BI
    query — the difference EXP18 measures.
    """

    name = "cost-balanced"

    def choose(
        self, query: Query, nodes: Sequence[ClusterNode]
    ) -> Optional[ClusterNode]:
        return min(
            nodes,
            key=lambda n: (n.outstanding_estimated_work / n.rate_capacity, n.name),
        )


def predict_response_time(node: ClusterNode, query: Query) -> float:
    """Optimizer-estimate-based response-time prediction on ``node``.

    The backlog already promised to the node drains at its aggregate
    device rate; the request then runs for its estimated unloaded
    duration, stretched by the node's degradation factor.  Crude — the
    point (as in WiSeDB) is that the *ranking* across nodes is right,
    not the absolute seconds.
    """
    queue_wait = node.outstanding_estimated_work / node.rate_capacity
    service = query.estimated_cost.nominal_duration / max(node.speed_factor, 1e-9)
    return queue_wait + service


class SLAAwarePlacement(PlacementPolicy):
    """Greedy SLA-aware placement (WiSeDB-style first fit).

    Each request's deadline comes from its workload's response-time SLA
    (p95 objective preferred, else average, else ``default_deadline``).
    Among nodes predicted to meet the deadline, the *most loaded*
    feasible node wins — packing tightly keeps idle nodes free for
    requests with tight deadlines.  When no node is predicted to meet
    the deadline the least-bad (fastest-predicted) node is used.
    """

    name = "sla-aware"

    def __init__(self, slas: SLASet, default_deadline: float = 60.0) -> None:
        self.slas = slas
        self.default_deadline = default_deadline
        self._deadline_cache: Dict[Optional[str], float] = {}

    def deadline_for(self, query: Query) -> float:
        """The response-time target this request must meet."""
        workload = query.workload_name or (
            query.sql.split(":", 1)[0] if ":" in query.sql else None
        )
        if workload in self._deadline_cache:
            return self._deadline_cache[workload]
        deadline = self.default_deadline
        sla = self.slas.get(workload)
        if sla is not None:
            by_kind = {obj.kind: obj.target for obj in sla.objectives}
            if ObjectiveKind.PERCENTILE_RESPONSE_TIME in by_kind:
                deadline = by_kind[ObjectiveKind.PERCENTILE_RESPONSE_TIME]
            elif ObjectiveKind.AVERAGE_RESPONSE_TIME in by_kind:
                deadline = by_kind[ObjectiveKind.AVERAGE_RESPONSE_TIME]
        self._deadline_cache[workload] = deadline
        return deadline

    def choose(
        self, query: Query, nodes: Sequence[ClusterNode]
    ) -> Optional[ClusterNode]:
        deadline = self.deadline_for(query)
        predictions = [(predict_response_time(node, query), node) for node in nodes]
        feasible = [(p, node) for p, node in predictions if p <= deadline]
        if feasible:
            # tightest fit: largest prediction still within the deadline
            return max(feasible, key=lambda pn: (pn[0], pn[1].name))[1]
        return min(predictions, key=lambda pn: (pn[0], pn[1].name))[1]


#: CLI / scenario-builder registry.
POLICY_NAMES = ("round-robin", "least", "cost", "sla")


def make_policy(name: str, slas: Optional[SLASet] = None) -> PlacementPolicy:
    """Build a placement policy from its short CLI name."""
    if name == "round-robin":
        return RoundRobinPlacement()
    if name == "least":
        return LeastOutstandingPlacement()
    if name == "cost":
        return CostBalancedPlacement()
    if name == "sla":
        return SLAAwarePlacement(slas if slas is not None else SLASet())
    raise ValueError(f"unknown placement policy {name!r}; one of {POLICY_NAMES}")
