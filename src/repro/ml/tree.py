"""CART decision trees (classification and regression), from scratch.

Gupta et al.'s PQR approach [23] "builds a decision tree based on a
training set of queries, and uses the decision tree to predict ranges of
the new query's execution time" (paper §3.2).  These trees are the
learner behind :mod:`repro.admission.prediction` and one of the two
classifiers in :mod:`repro.characterization.dynamic`.

The implementation is a plain binary CART: exhaustive search over
midpoint splits, Gini impurity for classification and variance
reduction for regression, depth/size stopping rules.  It is deliberately
simple — the experiments need faithful behaviour, not SOTA accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: Optional[object] = None      # leaf payload

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _BaseTree:
    """Shared CART machinery."""

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 4) -> None:
        if max_depth < 1 or min_samples_leaf < 1:
            raise ValueError("max_depth and min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None
        self.n_features: int = 0

    def fit(self, X: Sequence[Sequence[float]], y: Sequence) -> "_BaseTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y) or len(y) == 0:
            raise ValueError("X must be 2-D and aligned with non-empty y")
        self.n_features = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or self._is_pure(y)
        ):
            return _Node(value=self._leaf_value(y))
        split = self._best_split(X, y)
        if split is None:
            return _Node(value=self._leaf_value(y))
        feature, threshold = split
        mask = X[:, feature] <= threshold
        return _Node(
            feature=feature,
            threshold=threshold,
            left=self._build(X[mask], y[mask], depth + 1),
            right=self._build(X[~mask], y[~mask], depth + 1),
        )

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        best_score = self._impurity(y)
        best: Optional[Tuple[int, float]] = None
        n = len(y)
        for feature in range(X.shape[1]):
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_y = y[order]
            # candidate thresholds at value changes
            changes = np.nonzero(np.diff(sorted_values) > 1e-12)[0]
            for index in changes:
                left_count = index + 1
                if (
                    left_count < self.min_samples_leaf
                    or n - left_count < self.min_samples_leaf
                ):
                    continue
                threshold = (sorted_values[index] + sorted_values[index + 1]) / 2
                score = (
                    left_count / n * self._impurity(sorted_y[:left_count])
                    + (n - left_count) / n * self._impurity(sorted_y[left_count:])
                )
                if score < best_score - 1e-12:
                    best_score = score
                    best = (feature, float(threshold))
        return best

    def _predict_one(self, row: np.ndarray) -> object:
        node = self._root
        if node is None:
            raise RuntimeError("tree is not fitted")
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def predict(self, X: Sequence[Sequence[float]]) -> List[object]:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return [self._predict_one(row) for row in X]

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)

    # --- subclass hooks -------------------------------------------------
    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _leaf_value(self, y: np.ndarray):
        raise NotImplementedError

    def _is_pure(self, y: np.ndarray) -> bool:
        raise NotImplementedError


class DecisionTreeClassifier(_BaseTree):
    """CART with Gini impurity; leaves predict the majority label."""

    def _impurity(self, y: np.ndarray) -> float:
        _, counts = np.unique(y, return_counts=True)
        p = counts / counts.sum()
        return float(1.0 - np.sum(p * p))

    def _leaf_value(self, y: np.ndarray):
        labels, counts = np.unique(y, return_counts=True)
        return labels[int(np.argmax(counts))]

    def _is_pure(self, y: np.ndarray) -> bool:
        return len(np.unique(y)) <= 1

    def accuracy(self, X: Sequence[Sequence[float]], y: Sequence) -> float:
        """Fraction of correct predictions on a labelled set."""
        predictions = self.predict(X)
        y = list(y)
        return sum(p == t for p, t in zip(predictions, y)) / len(y)


class DecisionTreeRegressor(_BaseTree):
    """CART with variance reduction; leaves predict the mean target."""

    def _impurity(self, y: np.ndarray) -> float:
        if len(y) == 0:
            return 0.0
        return float(np.var(y.astype(float)))

    def _leaf_value(self, y: np.ndarray):
        return float(np.mean(y.astype(float)))

    def _is_pure(self, y: np.ndarray) -> bool:
        return float(np.var(y.astype(float))) < 1e-12

    def mean_absolute_error(
        self, X: Sequence[Sequence[float]], y: Sequence[float]
    ) -> float:
        predictions = np.asarray(self.predict(X), dtype=float)
        return float(np.mean(np.abs(predictions - np.asarray(y, dtype=float))))
