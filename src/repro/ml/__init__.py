"""Minimal from-scratch ML used by the surveyed learning techniques.

The paper's dynamic workload characterization (§3.1, [19][73]) and
prediction-based admission control (§3.2, [21][23][42]) rely on simple
supervised learners — decision trees and statistical classifiers.  We
implement them here from scratch (no sklearn in the environment):

* :mod:`repro.ml.tree` — CART decision trees (classification and
  regression), the learner behind PQR [23];
* :mod:`repro.ml.naive_bayes` — Gaussian naive Bayes, the lightweight
  classifier used for workload-type identification [19].
"""

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.naive_bayes import GaussianNaiveBayes

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GaussianNaiveBayes",
]
