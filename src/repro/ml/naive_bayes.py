"""Gaussian naive Bayes classifier, from scratch.

Elnaffar et al.'s workload classifier [19] learns "the characteristics
of sample workloads running on a database server, builds a workload
classifier and uses [it] to dynamically identify unknown arriving
workloads" (paper §3.1).  Gaussian NB over window-aggregate features is
the lightweight end of that family; the decision tree in
:mod:`repro.ml.tree` is the heavier alternative, and
:mod:`repro.characterization.dynamic` exposes both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass
class _ClassStats:
    prior: float
    mean: np.ndarray
    var: np.ndarray


class GaussianNaiveBayes:
    """NB with per-class Gaussian feature likelihoods.

    ``var_smoothing`` adds a fraction of the largest feature variance to
    every variance, keeping log-likelihoods finite for constant features.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self._classes: Dict[object, _ClassStats] = {}
        self.n_features: int = 0

    def fit(self, X: Sequence[Sequence[float]], y: Sequence) -> "GaussianNaiveBayes":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y) or len(y) == 0:
            raise ValueError("X must be 2-D and aligned with non-empty y")
        self.n_features = X.shape[1]
        self._classes = {}
        epsilon = self.var_smoothing * float(np.max(np.var(X, axis=0), initial=1.0))
        for label in np.unique(y):
            rows = X[y == label]
            self._classes[label] = _ClassStats(
                prior=len(rows) / len(y),
                mean=rows.mean(axis=0),
                var=rows.var(axis=0) + max(epsilon, 1e-12),
            )
        return self

    def _log_posterior(self, row: np.ndarray) -> Dict[object, float]:
        scores: Dict[object, float] = {}
        for label, stats in self._classes.items():
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * stats.var)
                + (row - stats.mean) ** 2 / stats.var
            )
            scores[label] = float(np.log(stats.prior) + log_likelihood)
        return scores

    def predict_one(self, row: Sequence[float]):
        if not self._classes:
            raise RuntimeError("classifier is not fitted")
        scores = self._log_posterior(np.asarray(row, dtype=float))
        return max(scores, key=scores.get)

    def predict(self, X: Sequence[Sequence[float]]) -> List[object]:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return [self.predict_one(row) for row in X]

    def predict_proba_one(self, row: Sequence[float]) -> Dict[object, float]:
        """Normalized posterior probabilities for one sample."""
        scores = self._log_posterior(np.asarray(row, dtype=float))
        peak = max(scores.values())
        exp = {label: np.exp(s - peak) for label, s in scores.items()}
        total = sum(exp.values())
        return {label: float(v / total) for label, v in exp.items()}

    def accuracy(self, X: Sequence[Sequence[float]], y: Sequence) -> float:
        predictions = self.predict(X)
        y = list(y)
        return sum(p == t for p, t in zip(predictions, y)) / len(y)
