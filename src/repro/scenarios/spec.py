"""Declarative scenario specifications (the suite's data model).

A :class:`ScenarioSpec` is a pure-data description of a multi-tenant
consolidation story: tenants with arrival patterns, class mixes, SLAs,
priorities, share weights and admission quotas, plus an optional
deterministic chaos timeline.  Specs are plain frozen dataclasses with
``as_dict``/``from_dict`` round-tripping, so they load from JSON with
the stdlib and from YAML when PyYAML happens to be installed
(:func:`load_scenario_file` gates the import — the stdlib-only
environment stays fully functional, it just speaks JSON).

Tenant naming convention: every workload a tenant runs is registered
as ``tenant/label`` (so generated queries carry ``tenant/label:class``
sql tags), which is what the tenant extractors across the stack —
:func:`repro.cluster.dispatcher.tenant_key`, the task queue ``key_fn``
and :class:`repro.scheduling.queues.TenantShareScheduler` — key on.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.workloads.models import (
    ArrivalProcess,
    BatchArrivals,
    ClosedArrivals,
    Constant,
    DiurnalArrivals,
    OpenArrivals,
    WorkloadSpec,
)

#: Arrival pattern kinds an :class:`ArrivalSpec` can describe.
ARRIVAL_KINDS = ("open", "diurnal", "batch", "closed")

#: Canonical workload shapes a :class:`WorkloadPattern` can reference
#: (the builders in :mod:`repro.workloads.generator`).
WORKLOAD_KINDS = ("oltp", "bi", "reports", "utilities")


@dataclass(frozen=True)
class ArrivalSpec:
    """A declarative arrival pattern, buildable into an ArrivalProcess.

    ``kind`` selects the process; the other fields are interpreted per
    kind (unused ones are ignored):

    * ``open`` — Poisson at ``rate``, optionally stepped by ``phases``
      (``(start, rate)`` pairs — flash crowds are two phases: onset to
      ``rate × burst`` and recovery back);
    * ``diurnal`` — sinusoidal Poisson: ``rate`` is the base, plus
      ``amplitude``, ``period``, ``phase``;
    * ``batch`` — ``count`` requests all present at ``at`` (report
      windows, maintenance storms);
    * ``closed`` — ``population`` clients with constant ``think_time``.
    """

    kind: str = "open"
    rate: float = 1.0
    phases: Tuple[Tuple[float, float], ...] = ()
    amplitude: float = 0.5
    period: float = 60.0
    phase: float = 0.0
    count: int = 0
    at: float = 0.0
    population: int = 1
    think_time: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival kind {self.kind!r}; one of {ARRIVAL_KINDS}"
            )

    def build(self) -> ArrivalProcess:
        if self.kind == "open":
            return OpenArrivals(
                rate=self.rate,
                phases=tuple((float(s), float(r)) for s, r in self.phases),
            )
        if self.kind == "diurnal":
            return DiurnalArrivals(
                base_rate=self.rate,
                amplitude=self.amplitude,
                period=self.period,
                phase=self.phase,
            )
        if self.kind == "batch":
            return BatchArrivals(count=self.count, at=self.at)
        return ClosedArrivals(
            population=self.population, think_time=Constant(self.think_time)
        )

    @staticmethod
    def flash_crowd(
        rate: float, onset: float, end: float, burst: float = 4.0
    ) -> "ArrivalSpec":
        """An open stream that spikes to ``rate × burst`` in [onset, end)."""
        return ArrivalSpec(
            kind="open",
            rate=rate,
            phases=((onset, rate * burst), (end, rate)),
        )


@dataclass(frozen=True)
class SLASpec:
    """Response-time SLA targets for one tenant workload."""

    average: Optional[float] = None
    p95: Optional[float] = None
    importance: int = 1

    @property
    def has_goals(self) -> bool:
        return self.average is not None or self.p95 is not None


@dataclass(frozen=True)
class WorkloadPattern:
    """One tenant workload: canonical shape + arrivals + SLA + priority.

    ``kind`` picks the canonical builder (OLTP transactions, BI scans,
    report batches, maintenance utilities); ``params`` are forwarded to
    it (sorted tuple pairs, so patterns stay hashable and
    digest-stable); the built spec's arrivals and priority are then
    replaced with this pattern's.  ``label`` defaults to ``kind`` and
    becomes the ``tenant/label`` workload name.
    """

    kind: str
    arrival: ArrivalSpec
    label: str = ""
    priority: int = 2
    sla: Optional[SLASpec] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; one of {WORKLOAD_KINDS}"
            )
        if "/" in self.label or ":" in self.label:
            raise ConfigurationError(
                f"workload label {self.label!r} may not contain '/' or ':'"
            )

    @property
    def effective_label(self) -> str:
        return self.label or self.kind

    def build(self, tenant: str) -> WorkloadSpec:
        """The generator-ready spec named ``tenant/label``."""
        from repro.workloads.generator import (
            bi_workload,
            oltp_workload,
            report_batch_workload,
            utility_workload,
        )

        builders = {
            "oltp": oltp_workload,
            "bi": bi_workload,
            "reports": report_batch_workload,
            "utilities": utility_workload,
        }
        spec = builders[self.kind](**dict(self.params))
        return replace(
            spec,
            name=f"{tenant}/{self.effective_label}",
            arrivals=self.arrival.build(),
            priority=self.priority,
        )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: its workloads plus its isolation entitlements.

    ``share`` is the tenant's weight for node-tier MPL reservations and
    pull-mode queue shares; ``quota`` its cluster-tier admission bound
    (``None`` = unbounded); ``noisy`` marks the antagonist tenants that
    the leakage companion run removes.
    """

    name: str
    workloads: Tuple[WorkloadPattern, ...]
    share: float = 1.0
    quota: Optional[int] = None
    noisy: bool = False

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or ":" in self.name:
            raise ConfigurationError(
                f"tenant name {self.name!r} must be non-empty without '/' or ':'"
            )
        if not self.workloads:
            raise ConfigurationError(f"tenant {self.name!r} has no workloads")
        if self.share <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r} share must be > 0, got {self.share}"
            )
        if self.quota is not None and self.quota < 0:
            raise ConfigurationError(
                f"tenant {self.name!r} quota must be >= 0 or None"
            )
        labels = [pattern.effective_label for pattern in self.workloads]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                f"tenant {self.name!r} has duplicate workload labels {labels}"
            )


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic chaos timeline bound into the scenario.

    ``crash_waves`` > 0 arms the rotating crash/recover waves of
    :func:`repro.cluster.scenario.churn_plan`; ``degrade`` adds
    ``(time, node_index, factor)`` slow-downs with recovery at
    ``degrade_recovery`` fractions of the horizon later.  Everything is
    a pure function of the spec, so chaos runs are exactly as
    digest-stable as clean ones.
    """

    crash_waves: int = 0
    kill_fraction: float = 0.125
    outage: float = 0.15
    degrade: Tuple[Tuple[float, int, float], ...] = ()
    degrade_recovery: float = 0.25

    def __post_init__(self) -> None:
        if self.crash_waves < 0:
            raise ConfigurationError("crash_waves must be >= 0")
        if not 0.0 < self.kill_fraction <= 1.0:
            raise ConfigurationError("kill_fraction must be in (0, 1]")

    @property
    def active(self) -> bool:
        return self.crash_waves > 0 or bool(self.degrade)

    def build_plan(self, nodes: int, horizon: float):
        """The scenario's FaultPlan (``None`` when chaos is inactive)."""
        from repro.cluster.failover import FaultEvent, FaultKind, FaultPlan
        from repro.cluster.scenario import churn_plan

        if not self.active:
            return None
        events = []
        if self.crash_waves > 0:
            events.extend(
                churn_plan(
                    nodes,
                    horizon,
                    waves=self.crash_waves,
                    kill_fraction=self.kill_fraction,
                    outage=self.outage,
                ).events
            )
        for at_fraction, node_index, factor in self.degrade:
            name = f"n{node_index % max(nodes, 1)}"
            at = at_fraction * horizon
            events.append(FaultEvent(at, name, FaultKind.DEGRADE, factor=factor))
            recover_at = min(
                horizon * 0.98, at + self.degrade_recovery * horizon
            )
            events.append(FaultEvent(recover_at, name, FaultKind.RECOVER))
        events.sort(key=lambda e: (e.time, e.node, e.kind.value))
        return FaultPlan(tuple(events))


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete multi-tenant scenario: tenants + cluster + chaos."""

    name: str
    tenants: Tuple[TenantSpec, ...]
    description: str = ""
    horizon: float = 60.0
    nodes: int = 4
    mpl: int = 6
    max_queue_depth: Optional[int] = None
    chaos: ChaosSpec = field(default_factory=ChaosSpec)

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigurationError(f"scenario {self.name!r} has no tenants")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"scenario {self.name!r} has duplicate tenants {names}"
            )
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be > 0")
        if self.nodes < 1:
            raise ConfigurationError("a scenario needs at least one node")
        if self.mpl < 1:
            raise ConfigurationError("mpl must be >= 1")

    def tenant(self, name: str) -> TenantSpec:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(name)

    def shares(self) -> Dict[str, float]:
        return {tenant.name: tenant.share for tenant in self.tenants}

    def quotas(self) -> Dict[str, int]:
        return {
            tenant.name: tenant.quota
            for tenant in self.tenants
            if tenant.quota is not None
        }

    def without_noisy(self) -> "ScenarioSpec":
        """The leakage companion: same scenario, antagonists removed."""
        quiet = tuple(t for t in self.tenants if not t.noisy)
        if len(quiet) == len(self.tenants) or not quiet:
            return self
        return replace(self, tenants=quiet)

    @property
    def has_noisy(self) -> bool:
        return any(tenant.noisy for tenant in self.tenants)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-serializable form; ``from_dict`` round-trips it."""
        out = asdict(self)
        for tenant in out["tenants"]:
            for pattern in tenant["workloads"]:
                pattern["params"] = dict(pattern["params"])
                pattern["arrival"]["phases"] = [
                    list(pair) for pair in pattern["arrival"]["phases"]
                ]
        out["chaos"]["degrade"] = [list(d) for d in out["chaos"]["degrade"]]
        return out

    @staticmethod
    def from_dict(data: dict) -> "ScenarioSpec":
        try:
            return _scenario_from_dict(data)
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed scenario spec: {error}"
            ) from error


def _arrival_from_dict(data: dict) -> ArrivalSpec:
    fields = dict(data)
    fields["phases"] = tuple(
        (float(s), float(r)) for s, r in fields.get("phases", ())
    )
    return ArrivalSpec(**fields)


def _pattern_from_dict(data: dict) -> WorkloadPattern:
    fields = dict(data)
    fields["arrival"] = _arrival_from_dict(fields["arrival"])
    sla = fields.get("sla")
    fields["sla"] = SLASpec(**sla) if isinstance(sla, dict) else sla
    fields["params"] = tuple(sorted(dict(fields.get("params", {})).items()))
    return WorkloadPattern(**fields)


def _tenant_from_dict(data: dict) -> TenantSpec:
    fields = dict(data)
    fields["workloads"] = tuple(
        _pattern_from_dict(p) for p in fields["workloads"]
    )
    return TenantSpec(**fields)


def _scenario_from_dict(data: dict) -> ScenarioSpec:
    fields = dict(data)
    fields["tenants"] = tuple(_tenant_from_dict(t) for t in fields["tenants"])
    chaos = fields.get("chaos")
    if isinstance(chaos, dict):
        chaos = dict(chaos)
        chaos["degrade"] = tuple(
            (float(a), int(n), float(f)) for a, n, f in chaos.get("degrade", ())
        )
        fields["chaos"] = ChaosSpec(**chaos)
    return ScenarioSpec(**fields)


@dataclass(frozen=True)
class PolicyConfig:
    """Which multi-tenant isolation controls a run arms.

    The survival matrix compares these configurations over identical
    scenarios: the baseline arms nothing (the paper's consolidated
    free-for-all), the full-isolation policy arms every tier.
    """

    name: str
    node_shares: bool = False      # per-tenant MPL reservations per node
    cluster_quotas: bool = False   # per-tenant admission quotas
    queue_shares: bool = False     # per-tenant task-queue dispatch shares
    dispatch: str = "push"
    placement: str = "least"

    def __post_init__(self) -> None:
        if self.queue_shares and self.dispatch != "pull":
            raise ConfigurationError(
                "queue_shares needs pull dispatch (the task queue owns them)"
            )

    def describe(self) -> str:
        armed = [
            label
            for label, on in (
                ("node-shares", self.node_shares),
                ("quotas", self.cluster_quotas),
                ("queue-shares", self.queue_shares),
            )
            if on
        ]
        controls = "+".join(armed) if armed else "none"
        return f"{self.dispatch}/{self.placement} [{controls}]"


# ----------------------------------------------------------------------
# file loading (JSON via stdlib; YAML gated on PyYAML's presence)
# ----------------------------------------------------------------------
def load_scenario_file(path: Union[str, Path]) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a ``.json`` or ``.yaml`` file.

    JSON always works (stdlib).  YAML works iff PyYAML is importable;
    without it the error says exactly that instead of tracebacking —
    the stdlib-only environment is a supported configuration.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"scenario file not found: {path}")
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml  # type: ignore[import-not-found]
        except ImportError:
            raise ConfigurationError(
                f"cannot load {path}: YAML support needs the optional "
                "PyYAML dependency (not installed); use a .json spec instead"
            ) from None
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise ConfigurationError(
                f"malformed YAML in {path}: {error}"
            ) from error
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"malformed JSON in {path}: {error}"
            ) from error
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"scenario file {path} must contain a mapping, "
            f"got {type(data).__name__}"
        )
    return ScenarioSpec.from_dict(data)
