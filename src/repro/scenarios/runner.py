"""Run one scenario under one isolation policy; summarize it.

:func:`run_scenario` assembles the cluster a :class:`PolicyConfig`
describes — per-tenant node schedulers, admission quotas, queue shares
— drives every tenant's arrival streams over it, arms the chaos
timeline, runs to the horizon plus a drain window and returns a
:class:`ScenarioResult` carrying the live dispatcher plus the tenant
conservation ledger.  :func:`summarize_run` reduces that to the small
picklable dict the parallel sweep, the report and the benchmarks
consume, including the run's SHA-256 digest (cluster digest + tenant
ledger — the determinism contract for the whole suite).

Conservation ledger: intake is counted on the generator→dispatcher
seam, terminal outcomes on the dispatcher's client-visible completion
funnel.  Crash-killed work is resubmitted internally (never surfaced
as a terminal outcome), so for every tenant::

    intake == completed + rejected + killed + in_flight

holds exactly, churn or no churn — the property the hypothesis tests
pin.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.dispatcher import ClusterDispatcher, tenant_key
from repro.cluster.failover import FaultInjector
from repro.cluster.scenario import build_cluster
from repro.core.sla import SLASet, response_time_sla
from repro.engine.query import Query, QueryState
from repro.engine.simulator import Simulator
from repro.parallel.digest import dispatcher_digest
from repro.scenarios.spec import PolicyConfig, ScenarioSpec, WorkloadPattern
from repro.scheduling.queues import TenantShareScheduler
from repro.workloads.generator import Scenario, WorkloadGenerator

UNTENANTED = "<untenanted>"


def scenario_slas(spec: ScenarioSpec) -> SLASet:
    """The SLASet over every tenant workload that declares targets."""
    agreements = []
    for tenant in spec.tenants:
        for pattern in tenant.workloads:
            if pattern.sla is None or not pattern.sla.has_goals:
                continue
            agreements.append(
                response_time_sla(
                    f"{tenant.name}/{pattern.effective_label}",
                    average=pattern.sla.average,
                    p95=pattern.sla.p95,
                    importance=pattern.sla.importance,
                )
            )
    return SLASet(agreements)


@dataclass
class ScenarioResult:
    """A finished scenario run: live dispatcher + tenant ledger."""

    spec: ScenarioSpec
    policy: PolicyConfig
    seed: int
    dispatcher: ClusterDispatcher
    generator: WorkloadGenerator
    intake: Dict[str, int] = field(default_factory=dict)
    outcomes: Dict[str, Dict[str, int]] = field(default_factory=dict)
    traces: Tuple["TraceTenant", ...] = ()  # noqa: F821 - scenarios.trace

    def tenant_ledger(self, tenant: str) -> Dict[str, int]:
        """``{intake, completed, rejected, killed, in_flight}`` for one
        tenant; ``in_flight`` is the conservation remainder."""
        terminal = self.outcomes.get(tenant, {})
        intake = self.intake.get(tenant, 0)
        completed = terminal.get("completed", 0)
        rejected = terminal.get("rejected", 0)
        killed = terminal.get("killed", 0)
        return {
            "intake": intake,
            "completed": completed,
            "rejected": rejected,
            "killed": killed,
            "in_flight": intake - completed - rejected - killed,
        }

    def digest(self) -> str:
        """SHA-256 over the cluster digest plus the tenant ledger."""
        h = sha256()
        h.update(dispatcher_digest(self.dispatcher).encode("ascii"))
        for tenant in sorted(set(self.intake) | set(self.outcomes)):
            ledger = self.tenant_ledger(tenant)
            h.update(tenant.encode("utf-8"))
            h.update(
                struct.pack(
                    "<qqqq",
                    ledger["intake"],
                    ledger["completed"],
                    ledger["rejected"],
                    ledger["killed"],
                )
            )
        return h.hexdigest()


def run_scenario(
    spec: ScenarioSpec,
    policy: PolicyConfig,
    seed: int = 42,
    drain: Optional[float] = None,
    sim: Optional[Simulator] = None,
    traces: Sequence["TraceTenant"] = (),  # noqa: F821 - scenarios.trace
) -> ScenarioResult:
    """Run ``spec`` under ``policy``; returns the live result.

    ``traces`` adds trace-driven tenants
    (:func:`repro.scenarios.trace.trace_tenant`) alongside the spec's
    declarative ones — same intake seam, same quota/share machinery.
    """
    sim = sim or Simulator(seed=seed)
    slas = scenario_slas(spec)
    shares = spec.shares()
    dispatcher = build_cluster(
        sim,
        nodes=spec.nodes,
        policy=policy.placement,
        mpl=spec.mpl,
        max_queue_depth=spec.max_queue_depth,
        slas=slas,
        dispatch=policy.dispatch,
        scheduler_factory=(
            (lambda: TenantShareScheduler(spec.mpl, shares))
            if policy.node_shares and shares
            else None
        ),
        tenant_quotas=spec.quotas() if policy.cluster_quotas else None,
        tenant_shares=shares if policy.queue_shares else None,
    )
    result = ScenarioResult(
        spec=spec,
        policy=policy,
        seed=seed,
        dispatcher=dispatcher,
        generator=None,  # type: ignore[arg-type]  # set below
    )

    def submit(query: Query) -> None:
        tenant = tenant_key(query) or UNTENANTED
        result.intake[tenant] = result.intake.get(tenant, 0) + 1
        dispatcher.submit(query)

    def on_terminal(query: Query) -> None:
        tenant = tenant_key(query) or UNTENANTED
        bucket = result.outcomes.setdefault(
            tenant, {"completed": 0, "rejected": 0, "killed": 0}
        )
        if query.state is QueryState.COMPLETED:
            bucket["completed"] += 1
        elif query.state is QueryState.REJECTED:
            bucket["rejected"] += 1
        else:
            bucket["killed"] += 1

    workload_scenario = Scenario(
        specs=tuple(
            pattern.build(tenant.name)
            for tenant in spec.tenants
            for pattern in tenant.workloads
        ),
        horizon=spec.horizon,
    )
    generator = workload_scenario.build(
        sim, submit, sessions=dispatcher.sessions
    )
    result.generator = generator
    result.traces = tuple(traces)
    dispatcher.add_completion_listener(on_terminal)
    dispatcher.add_completion_listener(generator.notify_done)
    dispatcher.generator = generator
    for trace in result.traces:
        trace.schedule(sim, submit, horizon=spec.horizon)

    plan = spec.chaos.build_plan(spec.nodes, spec.horizon)
    if plan is not None:
        injector = FaultInjector(dispatcher)
        injector.arm(plan)
        dispatcher.injector = injector

    dispatcher.run(
        spec.horizon, drain=spec.horizon if drain is None else drain
    )
    return result


# ----------------------------------------------------------------------
# summarization (the picklable reduction the sweep and report consume)
# ----------------------------------------------------------------------
def _sla_section(
    pattern: WorkloadPattern, mean: Optional[float], p95: Optional[float]
) -> Optional[dict]:
    if pattern.sla is None or not pattern.sla.has_goals:
        return None
    checks: List[bool] = []
    section: Dict[str, object] = {
        "average_target": pattern.sla.average,
        "p95_target": pattern.sla.p95,
        "importance": pattern.sla.importance,
    }
    if pattern.sla.average is not None:
        checks.append(mean is not None and mean <= pattern.sla.average)
    if pattern.sla.p95 is not None:
        checks.append(p95 is not None and p95 <= pattern.sla.p95)
    section["met"] = all(checks) if checks else None
    return section


def summarize_run(result: ScenarioResult) -> Dict[str, object]:
    """Reduce a run to the sweep/report dict (small, picklable)."""
    dispatcher = result.dispatcher
    spec = result.spec
    tenants: Dict[str, dict] = {}
    for tenant in spec.tenants:
        ledger = result.tenant_ledger(tenant.name)
        workloads: Dict[str, dict] = {}
        sla_total = sla_met = 0
        for pattern in tenant.workloads:
            name = f"{tenant.name}/{pattern.effective_label}"
            roll = dispatcher.metrics.rollup(name)
            sla = _sla_section(
                pattern, roll.mean_response_time, roll.p95_response_time
            )
            if sla is not None:
                sla_total += 1
                sla_met += 1 if sla["met"] else 0
            workloads[pattern.effective_label] = {
                "completions": roll.completions,
                "node_rejections": roll.rejections,
                "kills": roll.kills,
                "mean": roll.mean_response_time,
                "p95": roll.p95_response_time,
                "sla": sla,
            }
        tenants[tenant.name] = {
            **ledger,
            "noisy": tenant.noisy,
            "share": tenant.share,
            "quota": tenant.quota,
            "quota_rejections": dispatcher.quota_rejections.get(
                tenant.name, 0
            ),
            "cluster_rejections": (
                dispatcher.metrics.cluster_rejections_by_key.get(
                    tenant.name, 0
                )
            ),
            "sla_met": sla_met,
            "sla_total": sla_total,
            "workloads": workloads,
        }
    for trace in result.traces:
        roll = dispatcher.metrics.rollup(trace.workload_name)
        tenants[trace.name] = {
            **result.tenant_ledger(trace.name),
            "noisy": False,
            "share": 1.0,
            "quota": None,
            "quota_rejections": dispatcher.quota_rejections.get(trace.name, 0),
            "cluster_rejections": (
                dispatcher.metrics.cluster_rejections_by_key.get(trace.name, 0)
            ),
            "sla_met": 0,
            "sla_total": 0,
            "workloads": {
                trace.label: {
                    "completions": roll.completions,
                    "node_rejections": roll.rejections,
                    "kills": roll.kills,
                    "mean": roll.mean_response_time,
                    "p95": roll.p95_response_time,
                    "sla": None,
                }
            },
        }
    return {
        "scenario": spec.name,
        "policy": result.policy.name,
        "seed": result.seed,
        "arrivals": dispatcher.arrivals,
        "completed": dispatcher.completions,
        "rejected": dispatcher.rejections,
        "resubmitted": dispatcher.resubmissions,
        "sim_time": dispatcher.sim.now,
        "events": dispatcher.sim.events_fired,
        "tenants": tenants,
        "digest": result.digest(),
    }
