"""Trace-driven tenants: a captured query log as an arrival source.

A JSONL trace captured from a real run (``QueryLog.to_jsonl`` — the
backend harness writes these, see ``python -m repro backend run
--trace-out``) becomes one tenant of a scenario: every record replays
at its original submit time with its logged costs, relabeled into the
``tenant/label:class`` namespace so quotas, shares and the survival
report treat it exactly like a declaratively specified tenant.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.engine.query import Query
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.workloads.traces import QueryLog


@dataclass(frozen=True)
class TraceTenant:
    """One tenant whose arrivals and costs come from a captured trace.

    ``queries``/``times`` are aligned: query ``i`` is submitted at
    ``times[i]`` (original trace time, optionally scaled).  The sql tag
    is already rewritten to ``tenant/label:class``.
    """

    name: str
    label: str
    queries: Tuple[Query, ...]
    times: Tuple[float, ...]

    @property
    def workload_name(self) -> str:
        return f"{self.name}/{self.label}"

    def schedule(
        self,
        sim: Simulator,
        submit: Callable[[Query], None],
        horizon: Optional[float] = None,
    ) -> int:
        """Schedule every in-horizon arrival; returns how many."""
        count = 0
        for query, time in zip(self.queries, self.times):
            if horizon is not None and time >= horizon:
                continue
            sim.schedule_at(
                time,
                lambda q=query: submit(q),
                label=f"arrival:{self.workload_name}",
            )
            count += 1
        return count


def _class_of(sql: str) -> str:
    if ":" in sql:
        suffix = sql.split(":", 1)[1]
        return suffix or "replay"
    return "replay"


def trace_tenant(
    source: Union[str, Path, QueryLog],
    tenant: str,
    label: str = "trace",
    priority: Optional[int] = None,
    time_scale: float = 1.0,
) -> TraceTenant:
    """Wrap a trace (path to JSONL, or a loaded log) as one tenant.

    ``time_scale`` stretches or compresses the original schedule
    (0.5 = replay twice as fast); ``priority`` overrides every
    record's priority when given.
    """
    if "/" in tenant or ":" in tenant or not tenant:
        raise ConfigurationError(
            f"tenant name {tenant!r} must be non-empty without '/' or ':'"
        )
    if time_scale <= 0:
        raise ConfigurationError(f"time_scale must be > 0, got {time_scale}")
    log = source if isinstance(source, QueryLog) else QueryLog.from_jsonl(source)
    if len(log) == 0:
        raise ConfigurationError("trace has no records to replay")
    queries: List[Query] = []
    for query in log.replay_queries():
        query.sql = f"{tenant}/{label}:{_class_of(query.sql)}"
        if priority is not None:
            query.priority = priority
        queries.append(query)
    times = tuple(t * time_scale for t in log.arrival_schedule())
    return TraceTenant(
        name=tenant, label=label, queries=tuple(queries), times=times
    )
