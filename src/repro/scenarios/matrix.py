"""The committed scenario × policy matrix the survival report covers.

Six scenario shapes — the multi-tenant consolidation stories the
paper's introduction motivates — crossed with four isolation-policy
configurations, from the free-for-all baseline to full two-tier
isolation.  Everything here is pure data; the sweep
(:mod:`repro.scenarios.sweep`) expands it into deterministic tasks.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError
from repro.scenarios.spec import (
    ArrivalSpec,
    ChaosSpec,
    PolicyConfig,
    ScenarioSpec,
    SLASpec,
    TenantSpec,
    WorkloadPattern,
)

#: Matrix-wide horizon: short enough for CI, long enough for diurnal
#: cycles, flash crowds and crash waves to play out.
HORIZON = 60.0

_OLTP_SLA = SLASpec(average=0.5, p95=2.0, importance=3)
_RELAXED_SLA = SLASpec(average=2.0, p95=8.0, importance=2)


def _oltp(
    rate_or_arrival, priority: int = 3, sla: SLASpec = _OLTP_SLA
) -> WorkloadPattern:
    arrival = (
        rate_or_arrival
        if isinstance(rate_or_arrival, ArrivalSpec)
        else ArrivalSpec(kind="open", rate=float(rate_or_arrival))
    )
    return WorkloadPattern(
        kind="oltp", arrival=arrival, priority=priority, sla=sla
    )


def _bi(rate: float, priority: int = 1, **params: object) -> WorkloadPattern:
    return WorkloadPattern(
        kind="bi",
        arrival=ArrivalSpec(kind="open", rate=rate),
        priority=priority,
        params=tuple(sorted(params.items())),
    )


# ----------------------------------------------------------------------
# the six scenario shapes
# ----------------------------------------------------------------------
def diurnal_mix() -> ScenarioSpec:
    """Two phase-shifted diurnal OLTP tenants plus a steady BI tenant.

    The tenants' peaks interleave — the classic consolidation bet that
    "their peaks won't align" — while the BI tenant grinds along
    underneath.
    """
    return ScenarioSpec(
        name="diurnal_mix",
        description="phase-shifted diurnal OLTP tenants + steady BI",
        horizon=HORIZON,
        nodes=4,
        mpl=6,
        tenants=(
            TenantSpec(
                name="corp",
                share=2.0,
                workloads=(
                    _oltp(
                        ArrivalSpec(
                            kind="diurnal",
                            rate=9.0,
                            amplitude=0.7,
                            period=30.0,
                        )
                    ),
                ),
            ),
            TenantSpec(
                name="euro",
                share=2.0,
                workloads=(
                    _oltp(
                        ArrivalSpec(
                            kind="diurnal",
                            rate=9.0,
                            amplitude=0.7,
                            period=30.0,
                            phase=15.0,
                        )
                    ),
                ),
            ),
            TenantSpec(
                name="lab",
                share=1.0,
                quota=8,
                workloads=(_bi(0.15),),
            ),
        ),
    )


def flash_crowd() -> ScenarioSpec:
    """One tenant's flash crowd against another's steady stream.

    ``shop`` quadruples its rate mid-run (the viral-event spike);
    ``steady`` just wants its SLA to survive the neighbor's surge.
    """
    return ScenarioSpec(
        name="flash_crowd",
        description="mid-run 4x arrival spike on one tenant",
        horizon=HORIZON,
        nodes=4,
        mpl=6,
        tenants=(
            TenantSpec(
                name="shop",
                share=2.0,
                quota=60,
                noisy=True,
                workloads=(
                    _oltp(
                        ArrivalSpec.flash_crowd(
                            rate=8.0,
                            onset=0.4 * HORIZON,
                            end=0.65 * HORIZON,
                            burst=4.0,
                        ),
                        sla=_RELAXED_SLA,
                    ),
                ),
            ),
            TenantSpec(
                name="steady",
                share=2.0,
                workloads=(_oltp(8.0),),
            ),
        ),
    )


def noisy_neighbor() -> ScenarioSpec:
    """The canonical antagonist: a BI flood burying a latency tenant.

    ``hog`` submits multi-second scans fast enough to hold every
    execution slot it can get; ``acme`` runs cheap transactions under a
    tight SLA.  Without isolation the scans own the cluster and acme's
    p95 explodes; with per-tenant reservations and quotas the flood
    saturates hog's own entitlement and acme rides undisturbed.
    """
    return ScenarioSpec(
        name="noisy_neighbor",
        description="BI flood tenant vs latency-SLA victim tenant",
        horizon=HORIZON,
        nodes=4,
        mpl=6,
        tenants=(
            TenantSpec(
                name="acme",
                share=3.0,
                workloads=(_oltp(10.0),),
            ),
            TenantSpec(
                name="hog",
                share=1.0,
                quota=10,
                noisy=True,
                workloads=(
                    _bi(
                        1.2,
                        median_cpu=5.0,
                        median_io=8.0,
                        sigma=0.6,
                        memory_low=100.0,
                        memory_high=400.0,
                    ),
                ),
            ),
        ),
    )


def batch_window() -> ScenarioSpec:
    """A report batch lands mid-run on top of a latency tenant."""
    return ScenarioSpec(
        name="batch_window",
        description="report batch window over steady OLTP",
        horizon=HORIZON,
        nodes=4,
        mpl=6,
        tenants=(
            TenantSpec(
                name="ops",
                share=3.0,
                workloads=(_oltp(10.0),),
            ),
            TenantSpec(
                name="finance",
                share=1.0,
                quota=12,
                noisy=True,
                workloads=(
                    WorkloadPattern(
                        kind="reports",
                        arrival=ArrivalSpec(
                            kind="batch", count=60, at=0.25 * HORIZON
                        ),
                        priority=2,
                        params=(("median_cpu", 2.0), ("median_io", 3.0)),
                    ),
                ),
            ),
        ),
    )


def utility_storm() -> ScenarioSpec:
    """Maintenance utilities (backup-shaped I/O hogs) under OLTP."""
    return ScenarioSpec(
        name="utility_storm",
        description="maintenance utility storm under a latency tenant",
        horizon=HORIZON,
        nodes=4,
        mpl=6,
        tenants=(
            TenantSpec(
                name="prod",
                share=3.0,
                workloads=(_oltp(10.0),),
            ),
            TenantSpec(
                name="dba",
                share=1.0,
                quota=4,
                noisy=True,
                workloads=(
                    WorkloadPattern(
                        kind="utilities",
                        arrival=ArrivalSpec(
                            kind="batch", count=6, at=0.3 * HORIZON
                        ),
                        priority=1,
                        params=(("io_seconds", 20.0),),
                    ),
                ),
            ),
        ),
    )


def churn() -> ScenarioSpec:
    """Node crash waves plus a degrade under a two-tenant mix.

    The chaos tier: rotating crash/recover waves take out a quarter of
    the cluster while one surviving node runs at half speed — the
    resilience story (conservation must hold per tenant through every
    resubmission).
    """
    return ScenarioSpec(
        name="churn",
        description="crash waves + node degrade under a two-tenant mix",
        horizon=HORIZON,
        nodes=4,
        mpl=6,
        tenants=(
            TenantSpec(
                name="red",
                share=2.0,
                workloads=(_oltp(8.0, sla=_RELAXED_SLA),),
            ),
            TenantSpec(
                name="blue",
                share=1.0,
                quota=10,
                workloads=(_bi(0.2),),
            ),
        ),
        chaos=ChaosSpec(
            crash_waves=2,
            kill_fraction=0.25,
            outage=0.15,
            degrade=((0.55, 1, 0.5),),
            degrade_recovery=0.2,
        ),
    )


#: The committed scenario matrix, in report order.
MATRIX_SCENARIOS: Tuple[ScenarioSpec, ...] = (
    diurnal_mix(),
    flash_crowd(),
    noisy_neighbor(),
    batch_window(),
    utility_storm(),
    churn(),
)

#: The committed isolation-policy grid, in report order.
MATRIX_POLICIES: Tuple[PolicyConfig, ...] = (
    PolicyConfig(name="baseline"),
    PolicyConfig(name="node-shares", node_shares=True),
    PolicyConfig(name="quotas", cluster_quotas=True),
    PolicyConfig(
        name="full-isolation",
        node_shares=True,
        cluster_quotas=True,
        queue_shares=True,
        dispatch="pull",
    ),
)


def scenario_names() -> Tuple[str, ...]:
    return tuple(spec.name for spec in MATRIX_SCENARIOS)


def policy_names() -> Tuple[str, ...]:
    return tuple(policy.name for policy in MATRIX_POLICIES)


def get_scenario(name: str) -> ScenarioSpec:
    for spec in MATRIX_SCENARIOS:
        if spec.name == name:
            return spec
    raise ConfigurationError(
        f"unknown scenario {name!r}; one of {scenario_names()}"
    )


def get_policy(name: str) -> PolicyConfig:
    for policy in MATRIX_POLICIES:
        if policy.name == name:
            return policy
    raise ConfigurationError(
        f"unknown policy {name!r}; one of {policy_names()}"
    )
