"""Declarative multi-tenant chaos scenarios and the survival report.

``repro.scenarios`` composes everything the taxonomy pipeline already
has — arrival processes, workload specs, SLAs, node-tier scheduling,
cluster-tier dispatch and the deterministic fault injector — into
*named, declarative scenarios*: several tenants, each with its own
arrival pattern (diurnal curve, flash crowd, noisy-neighbor flood,
batch report window, maintenance storm), class mix, SLA and priority,
plus an optional chaos timeline of node crash/degrade waves.

Each scenario runs under an *isolation policy* deciding which of the
multi-tenant controls are armed:

* node tier — per-tenant MPL reservations
  (:class:`~repro.scheduling.queues.TenantShareScheduler`);
* cluster tier — per-tenant admission quotas
  (:class:`~repro.cluster.dispatcher.ClusterDispatcher`) and, under
  pull dispatch, per-tenant task-queue dispatch shares.

The committed scenario × policy matrix (:mod:`repro.scenarios.matrix`)
sweeps over :mod:`repro.parallel` with digest-stable results and feeds
the survival-matrix report (:mod:`repro.scenarios.report`): per
scenario × policy, SLA verdicts per tenant, p95 per class, rejections,
and isolation leakage — the slowdown a well-behaved tenant suffers
from its noisy neighbor, measured against a companion run with the
noisy tenants removed.
"""

from repro.scenarios.spec import (
    ArrivalSpec,
    ChaosSpec,
    PolicyConfig,
    ScenarioSpec,
    SLASpec,
    TenantSpec,
    WorkloadPattern,
    load_scenario_file,
)
from repro.scenarios.runner import ScenarioResult, run_scenario, summarize_run
from repro.scenarios.matrix import (
    MATRIX_POLICIES,
    MATRIX_SCENARIOS,
    get_policy,
    get_scenario,
    policy_names,
    scenario_names,
)
from repro.scenarios.sweep import run_scenario_matrix, scenario_matrix_tasks
from repro.scenarios.report import render_survival_report
from repro.scenarios.trace import trace_tenant

__all__ = [
    "ArrivalSpec",
    "ChaosSpec",
    "MATRIX_POLICIES",
    "MATRIX_SCENARIOS",
    "PolicyConfig",
    "SLASpec",
    "ScenarioResult",
    "ScenarioSpec",
    "TenantSpec",
    "WorkloadPattern",
    "get_policy",
    "get_scenario",
    "load_scenario_file",
    "policy_names",
    "render_survival_report",
    "run_scenario",
    "run_scenario_matrix",
    "scenario_matrix_tasks",
    "scenario_names",
    "summarize_run",
    "trace_tenant",
]
