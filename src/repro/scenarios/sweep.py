"""The scenario-matrix sweep: scenarios × policies over repro.parallel.

Expands the committed matrix (plus the leakage companions — each
noisy scenario re-run with its antagonists removed) into deterministic
``scenario`` tasks, runs them over the process-pool runtime and
reduces in task-key order, so the matrix rollup digest is identical
for any worker count.  ``make bench-scenarios`` and ``python -m repro
scenario sweep/report`` both sit on this module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.parallel.runner import Log, SweepResult, run_tasks
from repro.parallel.spec import RunTask, make_task
from repro.scenarios.matrix import (
    MATRIX_POLICIES,
    MATRIX_SCENARIOS,
    policy_names,
    scenario_names,
)

#: Seed replications for the committed matrix (one: the matrix is a
#: deterministic artifact, replications belong to research sweeps).
SCENARIO_SEEDS: Tuple[int, ...] = (42,)


def scenario_matrix_tasks(
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = SCENARIO_SEEDS,
) -> List[RunTask]:
    """The ordered task list: matrix runs plus leakage companions.

    Order is (scenario, policy, seed, companion-last) — deterministic,
    so the sweep digest is a stable artifact.
    """
    chosen_scenarios = list(scenarios) if scenarios else list(scenario_names())
    chosen_policies = list(policies) if policies else list(policy_names())
    unknown = [s for s in chosen_scenarios if s not in scenario_names()]
    if unknown:
        raise ConfigurationError(
            f"unknown scenarios {unknown}; choose from {scenario_names()}"
        )
    unknown = [p for p in chosen_policies if p not in policy_names()]
    if unknown:
        raise ConfigurationError(
            f"unknown policies {unknown}; choose from {policy_names()}"
        )
    noisy = {
        spec.name for spec in MATRIX_SCENARIOS if spec.has_noisy
    }
    tasks: List[RunTask] = []
    for scenario in chosen_scenarios:
        for policy in chosen_policies:
            for seed in seeds:
                tasks.append(
                    make_task(
                        "scenario",
                        seed=int(seed),
                        scenario=scenario,
                        policy=policy,
                    )
                )
                if scenario in noisy:
                    tasks.append(
                        make_task(
                            "scenario",
                            seed=int(seed),
                            scenario=scenario,
                            policy=policy,
                            exclude_noisy=True,
                        )
                    )
    return tasks


def run_scenario_matrix(
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = SCENARIO_SEEDS,
    workers: int = 1,
    log: Log = None,
) -> SweepResult:
    """Run the matrix (parallel when ``workers > 1``); digest-stable."""
    tasks = scenario_matrix_tasks(
        scenarios=scenarios, policies=policies, seeds=seeds
    )
    return run_tasks(tasks, workers=workers, log=log)


def index_results(
    values: Sequence[Dict[str, object]],
) -> Dict[Tuple[str, str, int, bool], Dict[str, object]]:
    """``(scenario, policy, seed, exclude_noisy) -> summary`` lookup."""
    out: Dict[Tuple[str, str, int, bool], Dict[str, object]] = {}
    for value in values:
        key = (
            str(value["scenario"]),
            str(value["policy"]),
            int(value["seed"]),  # type: ignore[arg-type]
            bool(value.get("exclude_noisy", False)),
        )
        out[key] = dict(value)
    return out
