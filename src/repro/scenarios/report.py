"""Build the survival report from a finished (or fresh) matrix sweep.

:func:`survival_report_from_results` renders the report from the sweep
result list; :func:`generate_survival_report` runs the committed
matrix first (``python -m repro scenario report``'s backend).  Both
compute isolation leakage by pairing each noisy scenario's runs with
their companions (same scenario, antagonist tenants removed) from the
same sweep — no second pass required.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.parallel.runner import Log
from repro.reporting.survival import render_survival_report, tenant_leakage
from repro.scenarios.matrix import policy_names, scenario_names
from repro.scenarios.sweep import (
    SCENARIO_SEEDS,
    index_results,
    run_scenario_matrix,
)


def survival_report_from_results(
    values: Sequence[Dict[str, object]],
    digest: str = "",
    seed: Optional[int] = None,
) -> str:
    """Render the survival report from scenario-task summaries.

    ``seed`` picks which replication the report shows when the sweep
    ran several; defaults to the smallest seed present.
    """
    indexed = index_results(values)
    if not indexed:
        return "# Scenario survival matrix\n\n(no results)\n"
    if seed is None:
        seed = min(key[2] for key in indexed)
    scenarios = [
        name
        for name in scenario_names()
        if any(key[0] == name and key[2] == seed for key in indexed)
    ]
    policies = [
        name
        for name in policy_names()
        if any(key[1] == name and key[2] == seed for key in indexed)
    ]
    cells: Dict[Tuple[str, str], Dict[str, object]] = {}
    leakage: Dict[Tuple[str, str], Dict[str, Optional[float]]] = {}
    for scenario in scenarios:
        for policy in policies:
            summary = indexed.get((scenario, policy, seed, False))
            if summary is None:
                continue
            companion = indexed.get((scenario, policy, seed, True))
            cells[(scenario, policy)] = summary
            leakage[(scenario, policy)] = tenant_leakage(summary, companion)
    return render_survival_report(
        scenarios,
        policies,
        cells,
        leakage,
        digest=digest,
        title=f"Scenario survival matrix (seed {seed})",
    )


def generate_survival_report(
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = SCENARIO_SEEDS,
    workers: int = 1,
    log: Log = None,
) -> Tuple[str, str]:
    """Run the matrix and render; returns ``(report, sweep digest)``."""
    result = run_scenario_matrix(
        scenarios=scenarios,
        policies=policies,
        seeds=seeds,
        workers=workers,
        log=log,
    )
    report = survival_report_from_results(result.values, digest=result.digest)
    return report, result.digest
