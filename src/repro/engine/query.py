"""Query model: cost vectors, plans, and lifecycle state.

A :class:`Query` is the unit of work the whole library manipulates — the
paper's "request".  It carries two cost vectors:

* ``true_cost`` — what executing the query actually consumes.  Only the
  execution engine looks at this.
* ``estimated_cost`` — what the optimizer *predicted* (see
  :mod:`repro.engine.optimizer`).  Admission control, scheduling and the
  commercial system models only ever see the estimate; the gap between
  the two is what makes execution control necessary (paper §2.3).

A query also carries a :class:`QueryPlan` — an ordered pipeline of
:class:`PlanOperator` — used by progress indicators
(:mod:`repro.execution.progress`), query restructuring
(:mod:`repro.scheduling.restructuring`) and suspend/resume checkpointing
(:mod:`repro.execution.suspend_resume`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import QueryStateError

_query_ids = itertools.count(1)


class QueryState(enum.Enum):
    """Lifecycle of a request moving through the management pipeline."""

    CREATED = "created"
    SUBMITTED = "submitted"        # arrived at the server, being identified
    QUEUED = "queued"              # held in a wait queue by scheduling
    REJECTED = "rejected"          # denied by admission control
    RUNNING = "running"            # in the execution engine
    BLOCKED = "blocked"            # waiting for a lock
    SUSPENDED = "suspended"        # checkpointed and evicted from the engine
    KILLED = "killed"              # cancelled by execution control
    COMPLETED = "completed"
    ABORTED = "aborted"            # lock-protocol abort (wait-die victim)

    @property
    def is_terminal(self) -> bool:
        return self in (QueryState.REJECTED, QueryState.KILLED, QueryState.COMPLETED)


class StatementType(enum.Enum):
    """Statement types used by work-class identification (paper §2.2)."""

    READ = "READ"
    WRITE = "WRITE"
    DML = "DML"
    DDL = "DDL"
    LOAD = "LOAD"
    CALL = "CALL"
    UTILITY = "UTILITY"


@dataclass(frozen=True, slots=True)
class CostVector:
    """Resource demand of a query.

    ``cpu_seconds`` and ``io_seconds`` are seconds of dedicated service on
    the respective device; ``memory_mb`` is held for the whole run;
    ``lock_count`` is the number of row locks an update transaction takes;
    ``rows`` is the result cardinality (drives rows-returned thresholds).
    """

    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    memory_mb: float = 0.0
    lock_count: int = 0
    rows: int = 0

    @property
    def nominal_duration(self) -> float:
        """Unloaded run time: CPU and I/O overlap, the max dominates."""
        return max(self.cpu_seconds, self.io_seconds)

    @property
    def total_work(self) -> float:
        """Total device-seconds demanded (a scalar 'size' for the query)."""
        return self.cpu_seconds + self.io_seconds

    def scaled(self, factor: float) -> "CostVector":
        """Return a copy with time-like dimensions scaled by ``factor``."""
        return CostVector(
            cpu_seconds=self.cpu_seconds * factor,
            io_seconds=self.io_seconds * factor,
            memory_mb=self.memory_mb,
            lock_count=self.lock_count,
            rows=self.rows,
        )

    def __add__(self, other: "CostVector") -> "CostVector":
        return CostVector(
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            io_seconds=self.io_seconds + other.io_seconds,
            memory_mb=self.memory_mb + other.memory_mb,
            lock_count=self.lock_count + other.lock_count,
            rows=self.rows + other.rows,
        )


@dataclass(frozen=True, slots=True)
class PlanOperator:
    """One operator in a query execution plan.

    ``work_fraction`` is the share of the query's total work performed by
    this operator; fractions over a plan sum to 1.  ``state_mb`` is the
    size of the operator's in-flight state (hash tables, sort runs) — the
    cost of dumping a checkpoint for suspend/resume.  ``blocking`` marks
    pipeline breakers (sorts, hash builds) whose output cannot be
    consumed until they finish; GoBack suspension must re-run work since
    the last blocking edge.
    """

    name: str
    work_fraction: float
    state_mb: float = 0.0
    blocking: bool = False


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """An ordered pipeline of operators."""

    operators: Sequence[PlanOperator]

    def __post_init__(self) -> None:
        total = sum(op.work_fraction for op in self.operators)
        if self.operators and abs(total - 1.0) > 1e-6:
            raise ValueError(f"plan work fractions sum to {total}, expected 1.0")

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)

    def operator_at_progress(self, progress: float) -> int:
        """Index of the operator active at overall ``progress`` ∈ [0, 1]."""
        cumulative = 0.0
        for index, op in enumerate(self.operators):
            cumulative += op.work_fraction
            if progress < cumulative - 1e-12:
                return index
        return max(len(self.operators) - 1, 0)

    def progress_at_operator_start(self, index: int) -> float:
        """Overall progress reached when operator ``index`` begins."""
        return sum(op.work_fraction for op in self.operators[:index])

    @staticmethod
    def trivial() -> "QueryPlan":
        """A single-operator plan for queries nobody needs to introspect."""
        return QueryPlan(operators=(PlanOperator("scan", 1.0),))

    @staticmethod
    def uniform(names: Sequence[str], state_mb: float = 0.0) -> "QueryPlan":
        """A plan with equal work split across ``names``."""
        fraction = 1.0 / len(names)
        return QueryPlan(
            operators=tuple(PlanOperator(n, fraction, state_mb=state_mb) for n in names)
        )


@dataclass(slots=True)
class Query:
    """A request flowing through the workload-management pipeline."""

    true_cost: CostVector
    estimated_cost: CostVector
    statement_type: StatementType = StatementType.READ
    plan: QueryPlan = field(default_factory=QueryPlan.trivial)
    session_id: Optional[int] = None
    workload_name: Optional[str] = None
    priority: int = 1               # business priority: larger = more important
    query_id: int = field(default_factory=lambda: next(_query_ids))
    sql: str = ""
    #: database objects (tables/views) the query accesses — the "where"
    #: dimension of Teradata's classification criteria (paper §4.1.3)
    objects: Tuple[str, ...] = ()

    # -- lifecycle bookkeeping, managed by the engine/manager ----------
    state: QueryState = QueryState.CREATED
    submit_time: Optional[float] = None
    admit_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    progress: float = 0.0           # fraction of work completed, in [0, 1]
    restarts: int = 0               # wait-die aborts + kill-and-resubmit count
    suspend_count: int = 0
    demotions: int = 0              # priority-aging demotions applied
    service_class: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 <= self.progress <= 1:
            raise ValueError(f"progress must be in [0,1], got {self.progress}")

    # ------------------------------------------------------------------
    # derived timings (available once terminal)
    # ------------------------------------------------------------------
    @property
    def response_time(self) -> Optional[float]:
        """Submit-to-completion elapsed time, or None if not finished."""
        if self.end_time is None or self.submit_time is None:
            return None
        return self.end_time - self.submit_time

    @property
    def queueing_delay(self) -> Optional[float]:
        """Time spent before first entering the execution engine."""
        if self.start_time is None or self.submit_time is None:
            return None
        return self.start_time - self.submit_time

    def execution_velocity(self, now: float) -> Optional[float]:
        """Execution velocity per paper §2.1.

        The ratio of the query's *expected* (unloaded) execution time to
        the time it has actually spent in the system so far.  Close to 1
        means negligible delay; close to 0 means significant delay.
        """
        if self.submit_time is None:
            return None
        end = self.end_time if self.end_time is not None else now
        elapsed = end - self.submit_time
        if elapsed <= 0:
            return 1.0
        return min(1.0, self.true_cost.nominal_duration / elapsed)

    # ------------------------------------------------------------------
    # lifecycle transitions (assertions against misuse)
    # ------------------------------------------------------------------
    _ALLOWED = {
        QueryState.CREATED: {QueryState.SUBMITTED},
        # SUBMITTED -> SUBMITTED: a cluster dispatcher re-placing a
        # request onto another server re-runs that server's intake.
        QueryState.SUBMITTED: {
            QueryState.SUBMITTED,
            QueryState.QUEUED,
            QueryState.RUNNING,
            QueryState.REJECTED,
        },
        # QUEUED -> SUBMITTED: a queued request withdrawn from a
        # draining/crashed node and re-submitted elsewhere.
        QueryState.QUEUED: {
            QueryState.SUBMITTED,
            QueryState.RUNNING,
            QueryState.REJECTED,
            QueryState.KILLED,
        },
        QueryState.RUNNING: {
            QueryState.BLOCKED,
            QueryState.SUSPENDED,
            QueryState.KILLED,
            QueryState.COMPLETED,
            QueryState.ABORTED,
        },
        QueryState.BLOCKED: {
            QueryState.RUNNING,
            QueryState.KILLED,
            QueryState.ABORTED,
            QueryState.SUSPENDED,
        },
        QueryState.SUSPENDED: {QueryState.RUNNING, QueryState.QUEUED, QueryState.KILLED},
        QueryState.ABORTED: {QueryState.SUBMITTED, QueryState.QUEUED},
        QueryState.REJECTED: set(),
        QueryState.KILLED: {QueryState.SUBMITTED, QueryState.QUEUED},  # resubmit
        QueryState.COMPLETED: set(),
    }

    def transition(self, new_state: QueryState) -> None:
        """Move to ``new_state``, validating against the lifecycle graph."""
        allowed = self._ALLOWED[self.state]
        if new_state not in allowed:
            raise QueryStateError(
                f"query {self.query_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def clone_for_resubmit(self) -> "Query":
        """A fresh copy of this query for kill-and-resubmit policies."""
        return replace(
            self,
            query_id=next(_query_ids),
            state=QueryState.CREATED,
            submit_time=None,
            admit_time=None,
            start_time=None,
            end_time=None,
            progress=0.0,
            restarts=self.restarts + 1,
            suspend_count=0,
            demotions=0,
            service_class=None,
        )

    def __repr__(self) -> str:  # keep runs debuggable
        return (
            f"Query(id={self.query_id}, wl={self.workload_name!r}, "
            f"state={self.state.value}, prio={self.priority}, "
            f"est={self.estimated_cost.total_work:.2f}s, "
            f"true={self.true_cost.total_work:.2f}s, prog={self.progress:.2f})"
        )


def split_query(query: Query, pieces: int) -> List[Query]:
    """Split ``query`` into ``pieces`` equal slices (query restructuring).

    Each slice carries a proportional share of the cost vectors and a
    trivial plan; slices inherit identity-relevant attributes so workload
    classification still maps them to the same workload.  Used by
    :mod:`repro.scheduling.restructuring`, exposed here because it is a
    pure function of the query model.
    """
    if pieces < 1:
        raise ValueError(f"pieces must be >= 1, got {pieces}")
    if pieces == 1:
        return [query]
    fraction = 1.0 / pieces
    slices = []
    for index in range(pieces):
        piece = Query(
            true_cost=query.true_cost.scaled(fraction),
            estimated_cost=query.estimated_cost.scaled(fraction),
            statement_type=query.statement_type,
            plan=QueryPlan.trivial(),
            session_id=query.session_id,
            workload_name=query.workload_name,
            priority=query.priority,
            sql=f"{query.sql or 'Q'}#slice{index + 1}/{pieces}",
            objects=query.objects,
        )
        slices.append(piece)
    return slices
