"""Shared-resource model: weighted max-min fair processor sharing.

The simulated database machine exposes two rate resources (CPU and disk
I/O) and one space resource (memory).  Running queries share the rate
resources by *weighted max-min fairness with progressive filling*: every
query's speed grows in proportion to its weight until either a resource
saturates (freezing everything that uses it) or the query hits its own
speed cap (it cannot run faster than its unloaded speed, scaled by any
throttle applied to it).

This is the allocation discipline that makes the surveyed controls
meaningful: reprioritization changes a query's *weight*, throttling
changes its *speed cap*, admission/MPL changes *who participates*, and
memory oversubscription inflates I/O demand (see
:mod:`repro.engine.bufferpool`), producing the classic thrashing knee.

Speed normalization
-------------------
A query with cost vector ``(cpu=c, io=d)`` alone on the machine overlaps
CPU and I/O, finishing in ``max(c, d)`` seconds — speed ``1.0``.  Speed
``s`` consumes ``s·c`` CPU server-units and ``s·d`` disk server-units
per second and finishes in ``max(c, d)/s`` seconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.errors import CapacityError


class ResourceKind(enum.Enum):
    """The shared resources of the simulated database server."""

    CPU = "cpu"
    DISK = "disk"
    MEMORY = "memory"


@dataclass(frozen=True)
class MachineSpec:
    """Capacity of the simulated database server.

    ``cpu_capacity`` is in cores, ``disk_capacity`` in parallel device
    units (each unit serves one second of I/O demand per second), and
    ``memory_mb`` is working memory available to queries before the
    buffer pool starts spilling.
    """

    cpu_capacity: float = 8.0
    disk_capacity: float = 4.0
    memory_mb: float = 16_384.0

    def __post_init__(self) -> None:
        if min(self.cpu_capacity, self.disk_capacity, self.memory_mb) <= 0:
            raise CapacityError("machine capacities must be positive")

    def rate_capacities(self) -> Dict[ResourceKind, float]:
        """Capacities of the rate-shared resources only."""
        return {
            ResourceKind.CPU: self.cpu_capacity,
            ResourceKind.DISK: self.disk_capacity,
        }


@dataclass
class ShareRequest:
    """One query's claim in a fair-share allocation round.

    ``demands`` maps a rate resource to the server-seconds of service per
    unit of query progress (i.e. the cost-vector seconds, possibly
    inflated by buffer-pool spill).  ``speed_cap`` bounds the achievable
    speed (1.0 = unloaded speed; a throttle of 50% halves it; a paused
    query has cap 0).
    """

    key: Hashable
    weight: float
    demands: Mapping[ResourceKind, float]
    speed_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")
        if self.speed_cap < 0:
            raise ValueError(f"speed_cap must be >= 0, got {self.speed_cap}")

    @property
    def bottleneck_demand(self) -> float:
        """The largest per-progress demand (determines unloaded duration)."""
        return max(self.demands.values(), default=0.0)


@dataclass(frozen=True)
class Allocation:
    """Result of a fair-share round for one request."""

    speed: float
    usage: Mapping[ResourceKind, float]


def allocate_fair_shares(
    requests: Iterable[ShareRequest],
    capacities: Mapping[ResourceKind, float],
) -> Dict[Hashable, Allocation]:
    """Weighted max-min fair allocation by progressive filling.

    Returns, for every request, the progress speed it receives and its
    per-resource usage (server-units).  Guarantees:

    * no resource is used beyond its capacity (within float tolerance);
    * no request exceeds its ``speed_cap``;
    * the allocation is weighted max-min fair: a request's speed can only
      be below ``cap`` if some resource it uses is saturated, and at that
      saturation speeds are proportional to weights.
    """
    requests = list(requests)
    speeds: Dict[Hashable, float] = {}
    # Requests that demand nothing run at their cap (completed instantly
    # by the executor); zero-weight or zero-cap requests get speed 0.
    active: List[ShareRequest] = []
    for req in requests:
        positive = {k: v for k, v in req.demands.items() if v > 0}
        if not positive or req.weight == 0 or req.speed_cap == 0:
            speeds[req.key] = req.speed_cap if not positive and req.weight > 0 else 0.0
            continue
        active.append(ShareRequest(req.key, req.weight, positive, req.speed_cap))
        speeds[req.key] = 0.0

    headroom = {kind: float(cap) for kind, cap in capacities.items()}
    remaining = list(active)

    # Progressive filling: in each round grow all remaining speeds by
    # dt * weight, where dt is chosen so exactly one constraint binds.
    for _round in range(2 * len(active) + 2):
        if not remaining:
            break
        # Usage growth per unit dt on each resource.
        growth: Dict[ResourceKind, float] = {}
        for req in remaining:
            for kind, demand in req.demands.items():
                growth[kind] = growth.get(kind, 0.0) + req.weight * demand

        dt_best = float("inf")
        binding_resource = None
        binding_request = None
        for kind, rate in growth.items():
            if rate <= 0:
                continue
            dt = headroom.get(kind, 0.0) / rate
            if dt < dt_best - 1e-15:
                dt_best, binding_resource, binding_request = dt, kind, None
        for req in remaining:
            dt = (req.speed_cap - speeds[req.key]) / req.weight
            if dt < dt_best - 1e-15:
                dt_best, binding_resource, binding_request = dt, None, req

        dt_best = max(dt_best, 0.0)
        for req in remaining:
            grow = dt_best * req.weight
            speeds[req.key] += grow
            for kind, demand in req.demands.items():
                headroom[kind] = headroom.get(kind, 0.0) - grow * demand

        if binding_request is not None:
            remaining = [r for r in remaining if r.key != binding_request.key]
        elif binding_resource is not None:
            remaining = [r for r in remaining if binding_resource not in r.demands]
        else:  # all caps reached simultaneously
            break

    allocations: Dict[Hashable, Allocation] = {}
    for req in requests:
        speed = speeds.get(req.key, 0.0)
        usage = {kind: speed * demand for kind, demand in req.demands.items() if demand > 0}
        allocations[req.key] = Allocation(speed=speed, usage=usage)
    return allocations


@dataclass
class Resource:
    """Utilization bookkeeping for one rate resource.

    The executor reports usage after every reallocation; this class
    integrates usage over time so monitors can read average utilization
    in a window — one of the "monitor metrics" indicator approaches
    (Table 2, [79][80]) consume.
    """

    kind: ResourceKind
    capacity: float
    _last_time: float = 0.0
    _last_usage: float = 0.0
    _busy_integral: float = 0.0
    _window_marks: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, now: float, usage: float) -> None:
        """Report that ``usage`` server-units are in use from ``now`` on."""
        self._busy_integral += self._last_usage * (now - self._last_time)
        self._last_time = now
        self._last_usage = min(usage, self.capacity)

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Average utilization (0..1) over ``[since, now]``."""
        if now <= since:
            return self._last_usage / self.capacity if self.capacity else 0.0
        integral = self._busy_integral + self._last_usage * (now - self._last_time)
        if since > 0.0:
            # Subtract the portion before `since` using a linear rewind of
            # the recorded marks; for simplicity we track from marks.
            integral -= self._integral_until(since)
        return max(0.0, min(1.0, integral / (self.capacity * (now - since))))

    def mark(self, now: float) -> None:
        """Record a window boundary so ``utilization(since=mark)`` is exact."""
        integral = self._busy_integral + self._last_usage * (now - self._last_time)
        self._window_marks.append((now, integral))

    def _integral_until(self, time: float) -> float:
        best = 0.0
        for mark_time, integral in self._window_marks:
            if mark_time <= time + 1e-12:
                best = integral
        return best

    @property
    def instantaneous_usage(self) -> float:
        return self._last_usage
