"""Shared-resource model: weighted max-min fair processor sharing.

The simulated database machine exposes two rate resources (CPU and disk
I/O) and one space resource (memory).  Running queries share the rate
resources by *weighted max-min fairness with progressive filling*: every
query's speed grows in proportion to its weight until either a resource
saturates (freezing everything that uses it) or the query hits its own
speed cap (it cannot run faster than its unloaded speed, scaled by any
throttle applied to it).

This is the allocation discipline that makes the surveyed controls
meaningful: reprioritization changes a query's *weight*, throttling
changes its *speed cap*, admission/MPL changes *who participates*, and
memory oversubscription inflates I/O demand (see
:mod:`repro.engine.bufferpool`), producing the classic thrashing knee.

Speed normalization
-------------------
A query with cost vector ``(cpu=c, io=d)`` alone on the machine overlaps
CPU and I/O, finishing in ``max(c, d)`` seconds — speed ``1.0``.  Speed
``s`` consumes ``s·c`` CPU server-units and ``s·d`` disk server-units
per second and finishes in ``max(c, d)/s`` seconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import CapacityError


class ResourceKind(enum.Enum):
    """The shared resources of the simulated database server."""

    CPU = "cpu"
    DISK = "disk"
    MEMORY = "memory"


@dataclass(frozen=True)
class MachineSpec:
    """Capacity of the simulated database server.

    ``cpu_capacity`` is in cores, ``disk_capacity`` in parallel device
    units (each unit serves one second of I/O demand per second), and
    ``memory_mb`` is working memory available to queries before the
    buffer pool starts spilling.
    """

    cpu_capacity: float = 8.0
    disk_capacity: float = 4.0
    memory_mb: float = 16_384.0

    def __post_init__(self) -> None:
        if min(self.cpu_capacity, self.disk_capacity, self.memory_mb) <= 0:
            raise CapacityError("machine capacities must be positive")

    def rate_capacities(self) -> Dict[ResourceKind, float]:
        """Capacities of the rate-shared resources only."""
        return {
            ResourceKind.CPU: self.cpu_capacity,
            ResourceKind.DISK: self.disk_capacity,
        }


@dataclass
class ShareRequest:
    """One query's claim in a fair-share allocation round.

    ``demands`` maps a rate resource to the server-seconds of service per
    unit of query progress (i.e. the cost-vector seconds, possibly
    inflated by buffer-pool spill).  ``speed_cap`` bounds the achievable
    speed (1.0 = unloaded speed; a throttle of 50% halves it; a paused
    query has cap 0).
    """

    key: Hashable
    weight: float
    demands: Mapping[ResourceKind, float]
    speed_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")
        if self.speed_cap < 0:
            raise ValueError(f"speed_cap must be >= 0, got {self.speed_cap}")

    @property
    def bottleneck_demand(self) -> float:
        """The largest per-progress demand (determines unloaded duration)."""
        return max(self.demands.values(), default=0.0)


@dataclass(frozen=True)
class Allocation:
    """Result of a fair-share round for one request."""

    speed: float
    usage: Mapping[ResourceKind, float]


def allocate_fair_shares_reference(
    requests: Iterable[ShareRequest],
    capacities: Mapping[ResourceKind, float],
) -> Dict[Hashable, Allocation]:
    """Reference weighted max-min fair allocation by progressive filling.

    This is the original, obviously-correct implementation: one
    constraint binds per round, so it runs O(active) rounds of O(active)
    work each.  It is retained verbatim as the behavioural oracle for
    the optimized :func:`allocate_fair_shares` (see the hypothesis
    equivalence test in ``tests/engine/test_fair_share_equivalence.py``)
    and as the exact inner loop for small active sets.
    """
    requests = list(requests)
    speeds: Dict[Hashable, float] = {}
    # Requests that demand nothing run at their cap (completed instantly
    # by the executor); zero-weight or zero-cap requests get speed 0.
    active: List[ShareRequest] = []
    for req in requests:
        positive = {k: v for k, v in req.demands.items() if v > 0}
        if not positive or req.weight == 0 or req.speed_cap == 0:
            speeds[req.key] = req.speed_cap if not positive and req.weight > 0 else 0.0
            continue
        active.append(ShareRequest(req.key, req.weight, positive, req.speed_cap))
        speeds[req.key] = 0.0

    _fill_reference_rounds(active, capacities, speeds)

    allocations: Dict[Hashable, Allocation] = {}
    for req in requests:
        speed = speeds.get(req.key, 0.0)
        usage = {kind: speed * demand for kind, demand in req.demands.items() if demand > 0}
        allocations[req.key] = Allocation(speed=speed, usage=usage)
    return allocations


def _fill_reference_rounds(
    active: List[ShareRequest],
    capacities: Mapping[ResourceKind, float],
    speeds: Dict[Hashable, float],
) -> None:
    """The reference progressive-filling rounds (one binding per round)."""
    headroom = {kind: float(cap) for kind, cap in capacities.items()}
    remaining = list(active)

    # Progressive filling: in each round grow all remaining speeds by
    # dt * weight, where dt is chosen so exactly one constraint binds.
    for _round in range(2 * len(active) + 2):
        if not remaining:
            break
        # Usage growth per unit dt on each resource.
        growth: Dict[ResourceKind, float] = {}
        for req in remaining:
            for kind, demand in req.demands.items():
                growth[kind] = growth.get(kind, 0.0) + req.weight * demand

        dt_best = float("inf")
        binding_resource = None
        binding_request = None
        for kind, rate in growth.items():
            if rate <= 0:
                continue
            dt = headroom.get(kind, 0.0) / rate
            if dt < dt_best - 1e-15:
                dt_best, binding_resource, binding_request = dt, kind, None
        for req in remaining:
            dt = (req.speed_cap - speeds[req.key]) / req.weight
            if dt < dt_best - 1e-15:
                dt_best, binding_resource, binding_request = dt, None, req

        dt_best = max(dt_best, 0.0)
        for req in remaining:
            grow = dt_best * req.weight
            speeds[req.key] += grow
            for kind, demand in req.demands.items():
                headroom[kind] = headroom.get(kind, 0.0) - grow * demand

        if binding_request is not None:
            remaining = [r for r in remaining if r.key != binding_request.key]
        elif binding_resource is not None:
            remaining = [r for r in remaining if binding_resource not in r.demands]
        else:  # all caps reached simultaneously
            break


#: Below this many active requests the exact reference rounds run (they
#: are cheap there, and bit-identical results keep seeded trajectories
#: stable); above it the batched rounds take over.
_EXACT_FILL_MAX_ACTIVE = 16


def _fill_batched_rounds(
    active: List[ShareRequest],
    capacities: Mapping[ResourceKind, float],
    speeds: Dict[Hashable, float],
) -> None:
    """Progressive filling with batched constraint handling.

    Two accelerations over the reference rounds, both preserving the
    max-min fairness guarantees to within float tolerance:

    * **early exit when no resource is near saturation** — if every
      remaining request can reach its cap inside the current headroom,
      finish them all in one step instead of one cap-binding per round;
    * **batched cap removal** — when a cap binds, retire every request
      whose cap is numerically reached, not just the first.

    The saturated path (a resource binds) performs the identical
    arithmetic in the identical order as the reference rounds.
    """
    headroom = {kind: float(cap) for kind, cap in capacities.items()}
    remaining = list(active)

    for _round in range(2 * len(active) + 2):
        if not remaining:
            break
        # Early exit: total extra usage needed to lift every remaining
        # request to its cap, per resource.
        need: Dict[ResourceKind, float] = {}
        for req in remaining:
            gap = req.speed_cap - speeds[req.key]
            if gap <= 0:
                continue
            for kind, demand in req.demands.items():
                need[kind] = need.get(kind, 0.0) + gap * demand
        if all(total <= headroom.get(kind, 0.0) for kind, total in need.items()):
            for req in remaining:
                if speeds[req.key] < req.speed_cap:
                    speeds[req.key] = req.speed_cap
            break

        growth: Dict[ResourceKind, float] = {}
        for req in remaining:
            weight = req.weight
            for kind, demand in req.demands.items():
                growth[kind] = growth.get(kind, 0.0) + weight * demand

        dt_best = float("inf")
        binding_resource = None
        cap_bound = False
        for kind, rate in growth.items():
            if rate <= 0:
                continue
            dt = headroom.get(kind, 0.0) / rate
            if dt < dt_best - 1e-15:
                dt_best, binding_resource, cap_bound = dt, kind, False
        for req in remaining:
            dt = (req.speed_cap - speeds[req.key]) / req.weight
            if dt < dt_best - 1e-15:
                dt_best, binding_resource, cap_bound = dt, None, True

        dt_best = max(dt_best, 0.0)
        for req in remaining:
            grow = dt_best * req.weight
            speeds[req.key] += grow
            for kind, demand in req.demands.items():
                headroom[kind] = headroom.get(kind, 0.0) - grow * demand

        if binding_resource is not None:
            remaining = [r for r in remaining if binding_resource not in r.demands]
        elif cap_bound:
            still = [
                r
                for r in remaining
                if r.speed_cap - speeds[r.key]
                > 1e-12 * max(1.0, abs(r.speed_cap))
            ]
            if len(still) == len(remaining):
                # float tolerance missed the binder: drop the request
                # closest to its cap so the loop always makes progress
                binder = min(
                    remaining,
                    key=lambda r: (r.speed_cap - speeds[r.key]) / r.weight,
                )
                still = [r for r in remaining if r is not binder]
            remaining = still
        else:  # all caps reached simultaneously
            break


def _fill(
    active: List[ShareRequest],
    capacities: Mapping[ResourceKind, float],
    speeds: Dict[Hashable, float],
) -> None:
    if not active:
        return
    if len(active) <= _EXACT_FILL_MAX_ACTIVE:
        _fill_reference_rounds(active, capacities, speeds)
    else:
        _fill_batched_rounds(active, capacities, speeds)


def _split_requests(
    requests: List[ShareRequest],
) -> Tuple[Dict[Hashable, float], List[ShareRequest]]:
    """Trivial-request handling shared by both allocator entry points.

    Requests that demand nothing run at their cap (completed instantly
    by the executor); zero-weight or zero-cap requests get speed 0.
    Request objects whose demands are already strictly positive are
    reused as-is — the hot path hands in prefiltered, cached requests,
    so this avoids re-validating and re-allocating every round.
    """
    speeds: Dict[Hashable, float] = {}
    active: List[ShareRequest] = []
    for req in requests:
        demands = req.demands
        if demands and all(v > 0 for v in demands.values()):
            positive: Mapping[ResourceKind, float] = demands
        else:
            positive = {k: v for k, v in demands.items() if v > 0}
        if not positive or req.weight == 0 or req.speed_cap == 0:
            speeds[req.key] = req.speed_cap if not positive and req.weight > 0 else 0.0
            continue
        if positive is demands:
            active.append(req)
        else:
            active.append(ShareRequest(req.key, req.weight, positive, req.speed_cap))
        speeds[req.key] = 0.0
    return speeds, active


def allocate_fair_shares(
    requests: Iterable[ShareRequest],
    capacities: Mapping[ResourceKind, float],
) -> Dict[Hashable, Allocation]:
    """Weighted max-min fair allocation by progressive filling.

    Returns, for every request, the progress speed it receives and its
    per-resource usage (server-units).  Guarantees:

    * no resource is used beyond its capacity (within float tolerance);
    * no request exceeds its ``speed_cap``;
    * the allocation is weighted max-min fair: a request's speed can only
      be below ``cap`` if some resource it uses is saturated, and at that
      saturation speeds are proportional to weights.

    Small active sets run the exact reference rounds; larger ones take
    the batched rounds of :func:`_fill_batched_rounds`, which agree with
    :func:`allocate_fair_shares_reference` to within ``1e-9`` on every
    speed (property-tested).
    """
    requests = list(requests)
    speeds, active = _split_requests(requests)
    _fill(active, capacities, speeds)
    allocations: Dict[Hashable, Allocation] = {}
    for req in requests:
        speed = speeds.get(req.key, 0.0)
        usage = {kind: speed * demand for kind, demand in req.demands.items() if demand > 0}
        allocations[req.key] = Allocation(speed=speed, usage=usage)
    return allocations


def fair_share_speeds(
    requests: List[ShareRequest],
    capacities: Mapping[ResourceKind, float],
) -> Tuple[Dict[Hashable, float], Dict[ResourceKind, float]]:
    """Low-level allocator for the executor hot path.

    Same allocation as :func:`allocate_fair_shares`, but returns plain
    ``(speeds, usage_totals)`` instead of building per-request
    :class:`Allocation` objects — the executor only ever needs the speed
    per query and the aggregate usage per resource.

    When the capacity map is exactly {CPU, DISK} — the engine's machine
    model — a scalar two-resource implementation runs instead of the
    generic dict-based fill; enum-keyed dict operations dominate the
    generic inner loop, and the scalar path performs the same float
    operations on the same operands in the same order without them.
    """
    if (
        len(capacities) == 2
        and ResourceKind.CPU in capacities
        and ResourceKind.DISK in capacities
    ):
        result = _fair_share_speeds_2r(
            requests, capacities[ResourceKind.CPU], capacities[ResourceKind.DISK]
        )
        if result is not None:
            return result
    speeds, active = _split_requests(requests)
    _fill(active, capacities, speeds)
    usage_totals: Dict[ResourceKind, float] = {kind: 0.0 for kind in capacities}
    for req in requests:
        speed = speeds.get(req.key, 0.0)
        if speed <= 0:
            continue
        for kind, demand in req.demands.items():
            if demand > 0:
                usage_totals[kind] = usage_totals.get(kind, 0.0) + speed * demand
    return speeds, usage_totals


def _fair_share_speeds_2r(
    requests: List[ShareRequest], cpu_cap: float, disk_cap: float
) -> Optional[Tuple[Dict[Hashable, float], Dict[ResourceKind, float]]]:
    """Two-resource scalar progressive filling.

    Mirrors the generic fill round for round: identical growth sums
    accumulated in identical request order (absent demands contribute an
    exact ``+ 0.0``), the same ``1e-15`` binding tolerances, one binding
    constraint per round at or below the exact-fill threshold and the
    batched accelerations above it.  Returns ``None`` when any request
    demands a resource other than CPU/DISK (caller falls back to the
    generic path).
    """
    cpu, disk = ResourceKind.CPU, ResourceKind.DISK
    speeds: Dict[Hashable, float] = {}
    # per active request: [key, weight, cpu_demand, disk_demand, cap]
    active: List[List] = []
    for req in requests:
        demands = req.demands
        if len(demands) - (cpu in demands) - (disk in demands) != 0:
            return None
        dc = demands.get(cpu, 0.0)
        dd = demands.get(disk, 0.0)
        if dc <= 0:
            dc = 0.0
        if dd <= 0:
            dd = 0.0
        if (dc == 0.0 and dd == 0.0) or req.weight == 0 or req.speed_cap == 0:
            trivial = dc == 0.0 and dd == 0.0
            speeds[req.key] = req.speed_cap if trivial and req.weight > 0 else 0.0
            continue
        speeds[req.key] = 0.0
        active.append([req.key, req.weight, dc, dd, req.speed_cap])

    fill_two_resource(active, speeds, cpu_cap, disk_cap)

    usage_cpu = usage_disk = 0.0
    for item in active:
        speed = speeds[item[0]]
        if speed <= 0:
            continue
        usage_cpu += speed * item[2]
        usage_disk += speed * item[3]
    return speeds, {cpu: usage_cpu, disk: usage_disk}


def fill_two_resource(
    active: List[List],
    speeds: Dict[Hashable, float],
    cpu_cap: float,
    disk_cap: float,
) -> None:
    """Scalar two-resource progressive-filling core.

    ``active`` items are ``[key, weight, cpu_demand, disk_demand, cap]``
    with positive weight, positive cap, and at least one positive
    demand; ``speeds`` must be pre-seeded with ``0.0`` per key.  This is
    the exact fill the executor's scalar path and
    :func:`_fair_share_speeds_2r` share — the arithmetic, accumulation
    order and tolerances are the generic fill's, so results stay
    bit-identical to :func:`allocate_fair_shares` for the same inputs.
    """
    cpu, disk = ResourceKind.CPU, ResourceKind.DISK
    headroom_cpu, headroom_disk = float(cpu_cap), float(disk_cap)
    remaining = active
    batched = len(active) > _EXACT_FILL_MAX_ACTIVE
    for _round in range(2 * len(active) + 2):
        if not remaining:
            break
        if batched:
            # Early exit: if every remaining request fits at its cap
            # inside the headroom, finish them all in one step.  A need
            # of exactly 0.0 means no remaining request demands that
            # resource (matching the generic path's absent dict key).
            need_cpu = need_disk = 0.0
            for item in remaining:
                gap = item[4] - speeds[item[0]]
                if gap <= 0:
                    continue
                need_cpu += gap * item[2]
                need_disk += gap * item[3]
            if (need_cpu == 0.0 or need_cpu <= headroom_cpu) and (
                need_disk == 0.0 or need_disk <= headroom_disk
            ):
                for item in remaining:
                    if speeds[item[0]] < item[4]:
                        speeds[item[0]] = item[4]
                break

        growth_cpu = growth_disk = 0.0
        for item in remaining:
            weight = item[1]
            growth_cpu += weight * item[2]
            growth_disk += weight * item[3]

        dt_best = float("inf")
        binding_resource = None
        binding_item = None
        if growth_cpu > 0:
            dt = headroom_cpu / growth_cpu
            if dt < dt_best - 1e-15:
                dt_best, binding_resource, binding_item = dt, cpu, None
        if growth_disk > 0:
            dt = headroom_disk / growth_disk
            if dt < dt_best - 1e-15:
                dt_best, binding_resource, binding_item = dt, disk, None
        for item in remaining:
            dt = (item[4] - speeds[item[0]]) / item[1]
            if dt < dt_best - 1e-15:
                dt_best, binding_resource, binding_item = dt, None, item

        if dt_best < 0.0:
            dt_best = 0.0
        for item in remaining:
            grow = dt_best * item[1]
            speeds[item[0]] += grow
            headroom_cpu -= grow * item[2]
            headroom_disk -= grow * item[3]

        if binding_resource is cpu:
            remaining = [it for it in remaining if it[2] == 0.0]
        elif binding_resource is disk:
            remaining = [it for it in remaining if it[3] == 0.0]
        elif binding_item is not None:
            if batched:
                still = [
                    it
                    for it in remaining
                    if it[4] - speeds[it[0]] > 1e-12 * max(1.0, abs(it[4]))
                ]
                if len(still) == len(remaining):
                    binder = min(
                        remaining,
                        key=lambda it: (it[4] - speeds[it[0]]) / it[1],
                    )
                    still = [it for it in remaining if it is not binder]
                remaining = still
            else:
                key = binding_item[0]
                remaining = [it for it in remaining if it[0] != key]
        else:  # all caps reached simultaneously
            break


def fair_share_fill_vectorized(
    weights: np.ndarray,
    cpu_demand: np.ndarray,
    disk_demand: np.ndarray,
    caps: np.ndarray,
    cpu_cap: float,
    disk_cap: float,
) -> np.ndarray:
    """Vectorized two-resource progressive filling over numpy arrays.

    Inputs are parallel float64 arrays of the *active* requests only
    (positive weight, positive cap, at least one positive demand, absent
    demands exactly ``0.0``).  Returns the speeds array in input order.

    Mirrors the batched scalar rounds structurally — early exit when all
    remaining requests fit at cap, one binding constraint per round with
    ``1e-15`` comparison tolerance, batched cap retirement at relative
    ``1e-12`` with a forced-progress fallback — but accumulates growth
    and usage sums with :func:`numpy.dot` (pairwise summation), so
    results agree with :func:`allocate_fair_shares_reference` to within
    ``1e-9`` per speed rather than bit-for-bit.  Engines that need
    bit-identity with committed digests use the scalar
    :func:`fill_two_resource` instead (``EngineConfig.vectorized_fill``).
    """
    n = int(weights.shape[0])
    speeds = np.zeros(n, dtype=np.float64)
    if n == 0:
        return speeds
    idx = np.arange(n)
    headroom_cpu, headroom_disk = float(cpu_cap), float(disk_cap)
    for _round in range(2 * n + 2):
        if idx.size == 0:
            break
        w = weights[idx]
        dc = cpu_demand[idx]
        dd = disk_demand[idx]
        cap = caps[idx]
        gap = cap - speeds[idx]
        gap_pos = np.maximum(gap, 0.0)
        need_cpu = float(np.dot(gap_pos, dc))
        need_disk = float(np.dot(gap_pos, dd))
        if (need_cpu == 0.0 or need_cpu <= headroom_cpu) and (
            need_disk == 0.0 or need_disk <= headroom_disk
        ):
            np.maximum.at(speeds, idx, cap)
            break

        growth_cpu = float(np.dot(w, dc))
        growth_disk = float(np.dot(w, dd))
        dt_best = float("inf")
        binding = None  # "cpu" | "disk" | "cap"
        if growth_cpu > 0:
            dt = headroom_cpu / growth_cpu
            if dt < dt_best - 1e-15:
                dt_best, binding = dt, "cpu"
        if growth_disk > 0:
            dt = headroom_disk / growth_disk
            if dt < dt_best - 1e-15:
                dt_best, binding = dt, "disk"
        cap_dts = gap / w
        cap_min = float(cap_dts.min())
        if cap_min < dt_best - 1e-15:
            dt_best, binding = cap_min, "cap"

        if dt_best < 0.0:
            dt_best = 0.0
        grow = dt_best * w
        speeds[idx] += grow
        headroom_cpu -= float(np.dot(grow, dc))
        headroom_disk -= float(np.dot(grow, dd))

        if binding == "cpu":
            idx = idx[dc == 0.0]
        elif binding == "disk":
            idx = idx[dd == 0.0]
        elif binding == "cap":
            rem_gap = caps[idx] - speeds[idx]
            keep = rem_gap > 1e-12 * np.maximum(1.0, np.abs(caps[idx]))
            if bool(keep.all()):
                # float tolerance missed the binder: drop the request
                # closest to its cap so the loop always makes progress
                keep[int(np.argmin(rem_gap / weights[idx]))] = False
            idx = idx[keep]
        else:  # all caps reached simultaneously
            break
    return speeds


@dataclass
class Resource:
    """Utilization bookkeeping for one rate resource.

    The executor reports usage after every reallocation; this class
    integrates usage over time so monitors can read average utilization
    in a window — one of the "monitor metrics" indicator approaches
    (Table 2, [79][80]) consume.
    """

    kind: ResourceKind
    capacity: float
    _last_time: float = 0.0
    _last_usage: float = 0.0
    _busy_integral: float = 0.0
    _window_marks: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, now: float, usage: float) -> None:
        """Report that ``usage`` server-units are in use from ``now`` on."""
        self._busy_integral += self._last_usage * (now - self._last_time)
        self._last_time = now
        self._last_usage = min(usage, self.capacity)

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Average utilization (0..1) over ``[since, now]``."""
        if now <= since:
            return self._last_usage / self.capacity if self.capacity else 0.0
        integral = self._busy_integral + self._last_usage * (now - self._last_time)
        if since > 0.0:
            # Subtract the portion before `since` using a linear rewind of
            # the recorded marks; for simplicity we track from marks.
            integral -= self._integral_until(since)
        return max(0.0, min(1.0, integral / (self.capacity * (now - since))))

    def mark(self, now: float) -> None:
        """Record a window boundary so ``utilization(since=mark)`` is exact."""
        integral = self._busy_integral + self._last_usage * (now - self._last_time)
        self._window_marks.append((now, integral))

    def _integral_until(self, time: float) -> float:
        best = 0.0
        for mark_time, integral in self._window_marks:
            if mark_time <= time + 1e-12:
                best = integral
        return best

    @property
    def instantaneous_usage(self) -> float:
        return self._last_usage
