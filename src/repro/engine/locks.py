"""Two-phase locking with wait-die, and the conflict-ratio metric.

Update transactions acquire exclusive locks on items drawn from a hot
set as they progress, hold them to completion (strict 2PL) and release
them all at once.  Conflicts either block the requester (if it is older
than the holder) or abort it (wait-die, which is deadlock-free because
waits only ever point from older to younger transactions).

The module also computes the **conflict ratio** of Moenkeberg & Weikum
[56] used by conflict-ratio admission control (paper Table 2):

    conflict ratio = locks held by ALL transactions
                     / locks held by ACTIVE (non-blocked) transactions

A ratio near 1 means little contention; past a critical threshold
(≈1.3 in [56]) the system is approaching data-contention thrashing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.errors import SimulationError


class LockOutcome(enum.Enum):
    """Result of a lock request under wait-die."""

    GRANTED = "granted"
    WAIT = "wait"    # requester is older than holder: block
    DIE = "die"      # requester is younger: abort and restart


@dataclass
class LockConflictStats:
    """Counters exposed to monitors and admission controllers."""

    requests: int = 0
    conflicts: int = 0
    blocks: int = 0
    aborts: int = 0

    @property
    def conflict_fraction(self) -> float:
        return self.conflicts / self.requests if self.requests else 0.0


@dataclass
class _Transaction:
    query_id: int
    timestamp: float                 # wait-die age: smaller = older
    items: List[int]                 # full item list, in acquisition order
    acquired: List[int] = field(default_factory=list)
    waiting_for: Optional[int] = None  # item currently blocked on


class LockManager:
    """Exclusive locks over a hot set of ``num_items`` items.

    The executor drives it: ``register`` when a transaction enters the
    engine, ``try_acquire`` at each acquisition point, ``release_all`` at
    completion/kill/abort.  The lock manager never schedules events
    itself; it returns who to wake and the executor does the waking.
    """

    def __init__(self, num_items: int, rng: np.random.Generator) -> None:
        if num_items < 1:
            raise ValueError("num_items must be >= 1")
        self.num_items = num_items
        self._rng = rng
        self._holders: Dict[int, int] = {}              # item -> query_id
        self._waiters: Dict[int, List[int]] = {}        # item -> FIFO of query_ids
        self._txns: Dict[int, _Transaction] = {}
        self.stats = LockConflictStats()

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------
    def register(self, query_id: int, lock_count: int, now: float) -> Sequence[float]:
        """Begin a transaction; returns its lock-acquisition progress points.

        ``lock_count`` items are sampled without replacement from the hot
        set; lock ``j`` is acquired when the query's progress reaches
        ``j / (lock_count + 1)``, spreading acquisitions through the run
        (which is what lets blocked transactions hold locks — the
        precondition for contention thrashing).
        """
        if query_id in self._txns:
            raise SimulationError(f"transaction {query_id} already registered")
        count = min(lock_count, self.num_items)
        items = list(self._rng.choice(self.num_items, size=count, replace=False))
        self._txns[query_id] = _Transaction(query_id=query_id, timestamp=now, items=items)
        return [j / (count + 1) for j in range(1, count + 1)]

    def is_registered(self, query_id: int) -> bool:
        return query_id in self._txns

    def try_acquire(self, query_id: int, lock_index: int) -> LockOutcome:
        """Attempt to take lock ``lock_index`` of the transaction's list."""
        txn = self._require(query_id)
        item = txn.items[lock_index]
        self.stats.requests += 1
        holder = self._holders.get(item)
        if holder is None or holder == query_id:
            self._holders[item] = query_id
            if item not in txn.acquired:
                txn.acquired.append(item)
            return LockOutcome.GRANTED
        self.stats.conflicts += 1
        holder_txn = self._txns.get(holder)
        holder_ts = holder_txn.timestamp if holder_txn else float("-inf")
        if txn.timestamp < holder_ts:
            # Requester is older: wait (deadlock-free direction).
            self.stats.blocks += 1
            txn.waiting_for = item
            self._waiters.setdefault(item, []).append(query_id)
            return LockOutcome.WAIT
        self.stats.aborts += 1
        return LockOutcome.DIE

    def release_all(self, query_id: int) -> List[int]:
        """End a transaction; returns query ids granted a lock and woken."""
        txn = self._txns.pop(query_id, None)
        if txn is None:
            return []
        if txn.waiting_for is not None:
            queue = self._waiters.get(txn.waiting_for, [])
            if query_id in queue:
                queue.remove(query_id)
        woken: List[int] = []
        for item in txn.acquired:
            if self._holders.get(item) != query_id:
                continue
            del self._holders[item]
            queue = self._waiters.get(item, [])
            while queue:
                next_id = queue.pop(0)
                waiter = self._txns.get(next_id)
                if waiter is None or waiter.waiting_for != item:
                    continue
                self._holders[item] = next_id
                waiter.acquired.append(item)
                waiter.waiting_for = None
                woken.append(next_id)
                break
        return woken

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def blocked_ids(self) -> Set[int]:
        """Transactions currently waiting on a lock."""
        return {qid for qid, txn in self._txns.items() if txn.waiting_for is not None}

    def conflict_ratio(self) -> float:
        """Moenkeberg & Weikum's conflict ratio [56]; 1.0 when idle."""
        total = sum(len(t.acquired) for t in self._txns.values())
        active = sum(
            len(t.acquired) for t in self._txns.values() if t.waiting_for is None
        )
        if active == 0:
            return float("inf") if total > 0 else 1.0
        return total / active

    def locks_held(self) -> int:
        return len(self._holders)

    def reset(self) -> None:
        """Drop all state (between experiment repetitions)."""
        self._holders.clear()
        self._waiters.clear()
        self._txns.clear()
        self.stats = LockConflictStats()

    def _require(self, query_id: int) -> _Transaction:
        txn = self._txns.get(query_id)
        if txn is None:
            raise SimulationError(f"transaction {query_id} is not registered")
        return txn
