"""The execution engine: runs admitted queries on shared resources.

The engine is a fluid-flow simulation of concurrent query execution.
Every running query advances a progress variable from 0 to 1 at a speed
determined by weighted max-min fair resource sharing
(:mod:`repro.engine.resources`), inflated I/O under memory pressure
(:mod:`repro.engine.bufferpool`), and lock waits
(:mod:`repro.engine.locks`).  Speeds are recomputed at every state
change — admission, completion, kill, pause, weight change, lock event —
and the next milestone (a completion or a lock-acquisition point) is
scheduled on the simulator.

Everything execution control needs is a first-class operation here:

* ``set_weight``     — query reprioritization / priority aging / economic
  resource allocation change the weight;
* ``set_throttle``   — request throttling caps the speed (0 pauses);
* ``kill``           — query cancellation;
* ``remove_suspended`` — suspend-and-resume checkpoints then evicts;
* automatic wait-die aborts surface as ``ABORTED`` outcomes so policies
  can resubmit.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.engine.bufferpool import BufferPool
from repro.engine.locks import LockManager, LockOutcome
from repro.engine.query import Query, QueryState
from repro.engine.resources import (
    MachineSpec,
    Resource,
    ResourceKind,
    ShareRequest,
    fair_share_speeds,
)
from repro.engine.simulator import Simulator
from repro.errors import QueryStateError


class CompletionOutcome(enum.Enum):
    """Why a query left the engine."""

    COMPLETED = "completed"
    KILLED = "killed"
    ABORTED = "aborted"       # wait-die victim; policies usually resubmit
    SUSPENDED = "suspended"


CompletionCallback = Callable[[Query, CompletionOutcome], None]


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the execution engine.

    ``hot_set_size`` is the number of lockable items (smaller = more
    contention); ``spill_penalty`` is forwarded to the buffer pool;
    ``max_parallelism`` is the per-query ceiling on resource units,
    i.e. intra-query parallelism (1.0 = a query can at most keep one
    core and one disk unit busy).
    """

    hot_set_size: int = 1000
    spill_penalty: float = 3.0
    max_parallelism: float = 1.0


@dataclass
class _Running:
    query: Query
    weight: float
    throttle: float = 1.0            # 1 = full speed, 0 = paused
    blocked: bool = False
    speed: float = 0.0
    lock_points: Sequence[float] = ()
    next_lock: int = 0
    last_sync: float = 0.0
    # Cached solver request, rebuilt only when the engine's demand epoch
    # moves (i.e. the buffer-pool inflation value changes); weight and
    # throttle edits patch it in place.
    request: Optional[ShareRequest] = field(default=None, repr=False)
    bottleneck: float = 0.0
    demand_epoch: int = -1

    def next_milestone(self) -> float:
        """Progress value of the next interesting point (lock or done)."""
        if self.next_lock < len(self.lock_points):
            return self.lock_points[self.next_lock]
        return 1.0


class ExecutionEngine:
    """Concurrent query execution over a simulated machine."""

    def __init__(
        self,
        sim: Simulator,
        machine: Optional[MachineSpec] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.sim = sim
        self.machine = machine or MachineSpec()
        self.config = config or EngineConfig()
        self.buffer_pool = BufferPool(
            capacity_mb=self.machine.memory_mb,
            spill_penalty=self.config.spill_penalty,
        )
        self.lock_manager = LockManager(
            num_items=self.config.hot_set_size, rng=sim.rng("locks")
        )
        self.resources = {
            kind: Resource(kind=kind, capacity=cap)
            for kind, cap in self.machine.rate_capacities().items()
        }
        self._running: Dict[int, _Running] = {}
        self._callbacks: List[CompletionCallback] = []
        self._milestone_handle = None
        self.completed_count = 0
        self.killed_count = 0
        self.aborted_count = 0
        self._capacities = self.machine.rate_capacities()
        # Cached running-set snapshots, invalidated by *replacement* on
        # membership change — callers holding an old snapshot can keep
        # iterating it safely while queries start or finish.
        self._snapshot: Optional[List[Query]] = None
        self._ids_snapshot: Optional[List[int]] = None
        # Allocation memoization: the fair-share solve is skipped when
        # nothing feeding it (membership, weights, caps, blocked flags,
        # demand inflation, completions) changed since the last solve.
        self._alloc_version = 0
        self._solved_version = -1
        self._demand_epoch = 0
        self._last_inflation = self.buffer_pool.io_inflation()
        # Deferred-reallocation batching (see ``reallocation_batch``).
        self._defer_depth = 0
        self._realloc_pending = False
        self._last_sync_time = -1.0

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def on_exit(self, callback: CompletionCallback) -> None:
        """Register a callback fired whenever a query leaves the engine."""
        self._callbacks.append(callback)

    @property
    def running_count(self) -> int:
        return len(self._running)

    def running_ids(self) -> List[int]:
        """IDs of the running queries (cached snapshot; treat as read-only)."""
        ids = self._ids_snapshot
        if ids is None:
            ids = self._ids_snapshot = list(self._running.keys())
        return ids

    def running_queries(self) -> List[Query]:
        """The running queries as a cached snapshot list.

        The snapshot is invalidated by replacement whenever membership
        changes, so a list obtained before a start/finish stays valid to
        iterate.  Treat it as read-only; copy before sorting or mutating.
        """
        snap = self._snapshot
        if snap is None:
            snap = self._snapshot = [entry.query for entry in self._running.values()]
        return snap

    def iter_running(self) -> Iterator[Query]:
        """Iterate the running queries without materializing a list.

        Do not start, kill or otherwise change engine membership while
        iterating; use :meth:`running_queries` for that.
        """
        for entry in self._running.values():
            yield entry.query

    def is_running(self, query_id: int) -> bool:
        return query_id in self._running

    def progress_of(self, query_id: int) -> float:
        self._sync_all()
        return self._entry(query_id).query.progress

    def speed_of(self, query_id: int) -> float:
        self._flush_reallocation()
        return self._entry(query_id).speed

    def weight_of(self, query_id: int) -> float:
        return self._entry(query_id).weight

    def throttle_of(self, query_id: int) -> float:
        return self._entry(query_id).throttle

    def conflict_ratio(self) -> float:
        return self.lock_manager.conflict_ratio()

    def memory_pressure(self) -> float:
        return self.buffer_pool.pressure

    def utilization(self, kind: ResourceKind) -> float:
        """Instantaneous utilization (0..1) of a rate resource."""
        self._flush_reallocation()
        resource = self.resources[kind]
        return resource.instantaneous_usage / resource.capacity

    # ------------------------------------------------------------------
    # lifecycle operations
    # ------------------------------------------------------------------
    def start(self, query: Query, weight: float = 1.0) -> None:
        """Begin executing ``query`` with the given fair-share weight."""
        if query.query_id in self._running:
            raise QueryStateError(f"query {query.query_id} is already running")
        self._sync_all()
        query.transition(QueryState.RUNNING)
        if query.start_time is None:
            query.start_time = self.sim.now
        self.buffer_pool.reserve(query.query_id, query.true_cost.memory_mb)
        lock_points: Sequence[float] = ()
        if query.true_cost.lock_count > 0:
            lock_points = self.lock_manager.register(
                query.query_id, query.true_cost.lock_count, self.sim.now
            )
        entry = _Running(
            query=query,
            weight=max(weight, 1e-9),
            lock_points=[p for p in lock_points if p > query.progress],
            last_sync=self.sim.now,
        )
        self._running[query.query_id] = entry
        self._membership_changed()
        # Sub-nanosecond demands complete instantly; without the epsilon
        # a denormal demand overflows the speed-cap division below.
        if query.true_cost.nominal_duration <= 1e-9:
            self._finish(entry, CompletionOutcome.COMPLETED)
            return
        self._reallocate()

    def kill(self, query_id: int) -> Query:
        """Cancel a running query, releasing its resources immediately."""
        self._sync_all()
        entry = self._entry(query_id)
        self._finish(entry, CompletionOutcome.KILLED)
        return entry.query

    def remove_suspended(self, query_id: int) -> Query:
        """Evict a query for suspension; caller owns checkpoint costs."""
        self._sync_all()
        entry = self._entry(query_id)
        self._finish(entry, CompletionOutcome.SUSPENDED)
        return entry.query

    def set_weight(self, query_id: int, weight: float) -> None:
        """Change a query's fair-share weight (reprioritization)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._sync_all()
        entry = self._entry(query_id)
        if entry.weight != weight:
            entry.weight = weight
            if entry.request is not None and entry.demand_epoch == self._demand_epoch:
                entry.request.weight = weight / entry.bottleneck
            self._alloc_version += 1
        self._reallocate()

    def set_throttle(self, query_id: int, factor: float) -> None:
        """Cap a query's speed at ``factor`` of full speed (0 pauses it)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"throttle factor must be in [0,1], got {factor}")
        self._sync_all()
        entry = self._entry(query_id)
        if entry.throttle != factor:
            entry.throttle = factor
            self._update_cap(entry)
            self._alloc_version += 1
        self._reallocate()

    def pause(self, query_id: int) -> None:
        """Convenience for ``set_throttle(query_id, 0.0)``."""
        self.set_throttle(query_id, 0.0)

    def resume(self, query_id: int) -> None:
        """Convenience for ``set_throttle(query_id, 1.0)``."""
        self.set_throttle(query_id, 1.0)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _entry(self, query_id: int) -> _Running:
        entry = self._running.get(query_id)
        if entry is None:
            raise QueryStateError(f"query {query_id} is not running")
        return entry

    def _sync_all(self) -> None:
        """Advance every running query's progress to the current time."""
        now = self.sim.now
        if now == self._last_sync_time:
            return
        self._last_sync_time = now
        for entry in self._running.values():
            dt = now - entry.last_sync
            if dt > 0 and entry.speed > 0:
                progress = entry.query.progress + entry.speed * dt
                if progress >= 1.0:
                    if entry.query.progress < 1.0:
                        # A query crossing the finish line leaves the
                        # active request set, so the memoized allocation
                        # is stale until the next real solve.
                        self._alloc_version += 1
                    progress = 1.0
                entry.query.progress = progress
            entry.last_sync = now

    def _membership_changed(self) -> None:
        self._snapshot = None
        self._ids_snapshot = None
        self._alloc_version += 1
        inflation = self.buffer_pool.io_inflation()
        if inflation != self._last_inflation:
            self._last_inflation = inflation
            self._demand_epoch += 1

    def _update_cap(self, entry: _Running) -> None:
        request = entry.request
        if request is None:
            return
        if entry.blocked or entry.throttle <= 0:
            request.speed_cap = 0.0
        else:
            request.speed_cap = (
                entry.throttle * self.config.max_parallelism / entry.bottleneck
            )

    def _request_for(self, entry: _Running) -> Optional[ShareRequest]:
        """The entry's cached solver request, rebuilt on epoch change."""
        if entry.demand_epoch != self._demand_epoch:
            entry.demand_epoch = self._demand_epoch
            cost = entry.query.true_cost
            demands: Dict[ResourceKind, float] = {}
            if cost.cpu_seconds > 0:
                demands[ResourceKind.CPU] = cost.cpu_seconds
            io = cost.io_seconds * self._last_inflation
            if io > 0:
                demands[ResourceKind.DISK] = io
            bottleneck = max(demands.values(), default=0.0)
            entry.bottleneck = bottleneck
            if bottleneck <= 1e-9:
                entry.request = None
            else:
                entry.request = ShareRequest(
                    key=entry.query.query_id,
                    # Divide by the bottleneck demand so equal business
                    # weights mean equal *resource* shares, not equal
                    # progress speeds (see resources.py docstring).
                    weight=entry.weight / bottleneck,
                    demands=demands,
                )
                self._update_cap(entry)
        return entry.request

    @contextmanager
    def reallocation_batch(self):
        """Coalesce reallocations across a batch of same-timestamp engine
        operations (e.g. a dispatch burst, or a finish plus the starts
        its callbacks trigger) into a single solver run at batch exit.

        Reads that depend on fresh speeds (``speed_of``,
        ``utilization``) flush the pending solve on demand, so a batch
        is observationally transparent; the pending solve always runs
        before control returns to the simulator.
        """
        self._defer_depth += 1
        try:
            yield
        finally:
            self._defer_depth -= 1
            if self._defer_depth == 0 and self._realloc_pending:
                self._solve()

    def _flush_reallocation(self) -> None:
        if self._realloc_pending:
            self._solve()

    def _reallocate(self) -> None:
        """Recompute speeds and (re)schedule the next milestone event."""
        if self._defer_depth > 0:
            self._realloc_pending = True
            return
        self._solve()

    def _solve(self) -> None:
        self._realloc_pending = False
        now = self.sim.now
        if self._solved_version == self._alloc_version:
            # Nothing feeding the allocator changed: keep the current
            # speeds.  Re-record the (unchanged) usage so the
            # utilization integrals accrue exactly as they would have,
            # and re-arm the milestone if this call consumed it.
            for resource in self.resources.values():
                resource.record(now, resource.instantaneous_usage)
            if self._milestone_handle is None:
                self._schedule_next_milestone()
            return
        requests: List[ShareRequest] = []
        for entry in self._running.values():
            request = self._request_for(entry)
            if request is None:
                # vanishing remaining demand: mark done so the milestone
                # reaper completes it rather than dividing by ~zero
                entry.query.progress = 1.0
                continue
            if entry.query.progress >= 1.0:
                continue
            requests.append(request)
        speeds, usage_totals = fair_share_speeds(requests, self._capacities)
        for entry in self._running.values():
            entry.speed = speeds.get(entry.query.query_id, 0.0)
        for kind, resource in self.resources.items():
            resource.record(now, usage_totals.get(kind, 0.0))
        self._solved_version = self._alloc_version
        self._schedule_next_milestone()

    def _schedule_next_milestone(self) -> None:
        if self._milestone_handle is not None:
            self._milestone_handle.cancel()
            self._milestone_handle = None
        best_time = None
        best_id = None
        for entry in self._running.values():
            done = (
                entry.query.progress >= 1.0 - 1e-12
                and entry.next_lock >= len(entry.lock_points)
            )
            if done:
                # Finished during a sync triggered by someone else's event;
                # reap it via an immediate milestone of its own.
                best_time, best_id = self.sim.now, entry.query.query_id
                break
            if entry.speed <= 0:
                continue
            gap = entry.next_milestone() - entry.query.progress
            eta = self.sim.now + max(gap, 0.0) / entry.speed
            if best_time is None or eta < best_time:
                best_time, best_id = eta, entry.query.query_id
        if best_id is not None:
            self._milestone_handle = self.sim.schedule_at(
                best_time,
                lambda qid=best_id: self._on_milestone(qid),
                label=f"milestone:q{best_id}",
            )

    def _on_milestone(self, query_id: int) -> None:
        self._milestone_handle = None
        entry = self._running.get(query_id)
        if entry is None:  # left the engine since scheduling
            self._sync_all()
            self._reallocate()
            return
        self._sync_all()
        milestone = entry.next_milestone()
        if entry.query.progress >= milestone - 1e-9:
            entry.query.progress = max(entry.query.progress, milestone)
            if entry.next_lock < len(entry.lock_points):
                self._acquire_next_lock(entry)
                return
            if entry.query.progress >= 1.0 - 1e-12:
                self._finish(entry, CompletionOutcome.COMPLETED)
                return
        self._reallocate()

    def _acquire_next_lock(self, entry: _Running) -> None:
        outcome = self.lock_manager.try_acquire(
            entry.query.query_id, entry.next_lock
        )
        if outcome is LockOutcome.GRANTED:
            entry.next_lock += 1
            self._reallocate()
        elif outcome is LockOutcome.WAIT:
            entry.blocked = True
            entry.query.transition(QueryState.BLOCKED)
            self._update_cap(entry)
            self._alloc_version += 1
            self._reallocate()
        else:  # DIE: wait-die victim, abort and let policies resubmit
            self._finish(entry, CompletionOutcome.ABORTED)

    def _finish(self, entry: _Running, outcome: CompletionOutcome) -> None:
        query = entry.query
        self._running.pop(query.query_id, None)
        self.buffer_pool.release(query.query_id)
        self._membership_changed()
        woken = self.lock_manager.release_all(query.query_id)
        if outcome is CompletionOutcome.COMPLETED:
            query.progress = 1.0
            query.end_time = self.sim.now
            query.transition(QueryState.COMPLETED)
            self.completed_count += 1
        elif outcome is CompletionOutcome.KILLED:
            if query.state is QueryState.BLOCKED:
                query.transition(QueryState.RUNNING)
            query.end_time = self.sim.now
            query.transition(QueryState.KILLED)
            self.killed_count += 1
        elif outcome is CompletionOutcome.ABORTED:
            if query.state is QueryState.BLOCKED:
                query.transition(QueryState.RUNNING)
            query.transition(QueryState.ABORTED)
            query.progress = 0.0
            self.aborted_count += 1
        elif outcome is CompletionOutcome.SUSPENDED:
            if query.state is QueryState.BLOCKED:
                query.transition(QueryState.RUNNING)
            query.transition(QueryState.SUSPENDED)
            query.suspend_count += 1
        for woken_id in woken:
            woken_entry = self._running.get(woken_id)
            if woken_entry is not None and woken_entry.blocked:
                woken_entry.blocked = False
                woken_entry.query.transition(QueryState.RUNNING)
                woken_entry.next_lock += 1
                self._update_cap(woken_entry)
        # One solve covers this exit plus whatever the exit callbacks do
        # at the same instant (resubmits, replacement dispatches).
        with self.reallocation_batch():
            self._reallocate()
            for callback in list(self._callbacks):
                callback(query, outcome)
