"""The execution engine: runs admitted queries on shared resources.

The engine is a fluid-flow simulation of concurrent query execution.
Every running query advances a progress variable from 0 to 1 at a speed
determined by weighted max-min fair resource sharing
(:mod:`repro.engine.resources`), inflated I/O under memory pressure
(:mod:`repro.engine.bufferpool`), and lock waits
(:mod:`repro.engine.locks`).  Speeds are recomputed at every state
change — admission, completion, kill, pause, weight change, lock event —
and the next milestone (a completion or a lock-acquisition point) is
scheduled on the simulator.

Everything execution control needs is a first-class operation here:

* ``set_weight``     — query reprioritization / priority aging / economic
  resource allocation change the weight;
* ``set_throttle``   — request throttling caps the speed (0 pauses);
* ``kill``           — query cancellation;
* ``remove_suspended`` — suspend-and-resume checkpoints then evicts;
* automatic wait-die aborts surface as ``ABORTED`` outcomes so policies
  can resubmit.

Hot-path layout (DESIGN.md §7): the running set lives in a columnar
:class:`~repro.engine.runstore.RunStore`; per-query ``_Running`` handles
carry only cold bookkeeping (the query object, lock points) and expose
the array fields as properties.  The fluid advance, milestone selection
and solve feed run vectorized over the arrays for large running sets and
as plain scalar loops — performing bit-identical float arithmetic — for
small ones (``EngineConfig.vectorize_min_running``).  The fair-share
*fill* has two variants: the exact scalar fill shared with
:func:`repro.engine.resources.fair_share_speeds`, and a numpy fill whose
sum order differs in the last bits (``EngineConfig.vectorized_fill``;
see BENCH_core.json's equivalence history for the digest re-baseline).
"""

from __future__ import annotations

import enum
import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.engine.bufferpool import BufferPool
from repro.engine.locks import LockManager, LockOutcome
from repro.engine.query import Query, QueryState
from repro.engine.resources import (
    _EXACT_FILL_MAX_ACTIVE,
    MachineSpec,
    Resource,
    ResourceKind,
    fair_share_fill_vectorized,
    fill_two_resource,
)
from repro.engine.runstore import RunStore
from repro.engine.simulator import Simulator
from repro.errors import QueryStateError

__all__ = [
    "CompletionOutcome",
    "CompletionCallback",
    "EngineConfig",
    "ExecutionEngine",
    "compat_mode",
]


class CompletionOutcome(enum.Enum):
    """Why a query left the engine."""

    COMPLETED = "completed"
    KILLED = "killed"
    ABORTED = "aborted"       # wait-die victim; policies usually resubmit
    SUSPENDED = "suspended"


CompletionCallback = Callable[[Query, CompletionOutcome], None]


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the execution engine.

    ``hot_set_size`` is the number of lockable items (smaller = more
    contention); ``spill_penalty`` is forwarded to the buffer pool;
    ``max_parallelism`` is the per-query ceiling on resource units,
    i.e. intra-query parallelism (1.0 = a query can at most keep one
    core and one disk unit busy).

    Hot-path knobs:

    ``vectorize_min_running``
        Running-set size at which the advance/milestone/solve loops
        switch from scalar Python to numpy array operations.  Both
        perform identical float arithmetic; the scalar loops win below
        ~16 entries on constant factors.  Set to ``0`` to force the
        vectorized paths everywhere, or very large to force scalar.
    ``vectorized_fill``
        Allow the numpy fair-share fill (and dotted usage sums) for
        running sets above the exact-fill threshold.  ``False`` keeps
        the scalar fill whose results are bit-identical to the engine
        before the columnar rework (the digest-compat oracle mode).
    ``batch_dispatch``
        Register same-timestamp batch hooks with the simulator so all
        events at one instant share a single fair-share solve.
    """

    hot_set_size: int = 1000
    spill_penalty: float = 3.0
    max_parallelism: float = 1.0
    vectorize_min_running: int = 17
    vectorized_fill: bool = True
    batch_dispatch: bool = True


#: Process-wide override installed by :func:`compat_mode`.
_COMPAT_MODE = False


@contextmanager
def compat_mode():
    """Force engines constructed inside the block into oracle mode.

    Oracle mode (``vectorized_fill=False, batch_dispatch=False``)
    reproduces the pre-columnar engine's float arithmetic and event
    interleaving bit-for-bit, so runs under ``compat_mode`` must match
    digests committed before the rework.  The equivalence harness
    (``benchmarks/perf/equivalence.py``) uses this to compare old-vs-new
    outcomes on every macro-scenario.  The environment variable
    ``REPRO_ENGINE_COMPAT`` applies the same override (for subprocess
    sweep workers).
    """
    global _COMPAT_MODE
    previous = _COMPAT_MODE
    _COMPAT_MODE = True
    try:
        yield
    finally:
        _COMPAT_MODE = previous


class _Running:
    """Cold-path handle for one running query.

    Hot fields (progress, speed, weight, throttle, demands, caps,
    milestones) live in the engine's :class:`RunStore`; this object
    keeps only what the arrays cannot hold — the query object and the
    lock-point sequence — plus properties reading through to the store
    so existing callers (tests, policies) see the familiar attributes.
    """

    __slots__ = ("query", "store", "lock_points", "next_lock")

    def __init__(
        self, query: Query, store: RunStore, lock_points: Sequence[float]
    ) -> None:
        self.query = query
        self.store = store
        self.lock_points = lock_points
        self.next_lock = 0

    @property
    def slot(self) -> int:
        return self.store.index[self.query.query_id]

    @property
    def speed(self) -> float:
        return float(self.store.speed[self.slot])

    @property
    def blocked(self) -> bool:
        return bool(self.store.blocked[self.slot])

    @property
    def weight(self) -> float:
        return float(self.store.weight[self.slot])

    @property
    def throttle(self) -> float:
        return float(self.store.throttle[self.slot])

    @property
    def bottleneck(self) -> float:
        return float(self.store.bottleneck[self.slot])

    def next_milestone(self) -> float:
        """Progress value of the next interesting point (lock or done)."""
        if self.next_lock < len(self.lock_points):
            return self.lock_points[self.next_lock]
        return 1.0

    def __repr__(self) -> str:
        return (
            f"_Running(q={self.query.query_id}, next_lock={self.next_lock}, "
            f"locks={len(self.lock_points)})"
        )


_EMPTY_LOCKS: Sequence[float] = ()


class ExecutionEngine:
    """Concurrent query execution over a simulated machine."""

    def __init__(
        self,
        sim: Simulator,
        machine: Optional[MachineSpec] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.sim = sim
        self.machine = machine or MachineSpec()
        config = config or EngineConfig()
        if _COMPAT_MODE or os.environ.get("REPRO_ENGINE_COMPAT"):
            config = replace(config, vectorized_fill=False, batch_dispatch=False)
        self.config = config
        self.buffer_pool = BufferPool(
            capacity_mb=self.machine.memory_mb,
            spill_penalty=self.config.spill_penalty,
        )
        self.lock_manager = LockManager(
            num_items=self.config.hot_set_size, rng=sim.rng("locks")
        )
        self.resources = {
            kind: Resource(kind=kind, capacity=cap)
            for kind, cap in self.machine.rate_capacities().items()
        }
        self.store = RunStore()
        self._running: Dict[int, _Running] = {}
        self._callbacks: List[CompletionCallback] = []
        self._milestone_handle = None
        self.completed_count = 0
        self.killed_count = 0
        self.aborted_count = 0
        self._capacities = self.machine.rate_capacities()
        self._cpu_cap = float(self._capacities[ResourceKind.CPU])
        self._disk_cap = float(self._capacities[ResourceKind.DISK])
        # Cached running-set snapshots, invalidated by *replacement* on
        # membership change — callers holding an old snapshot can keep
        # iterating it safely while queries start or finish.
        self._snapshot: Optional[List[Query]] = None
        self._ids_snapshot: Optional[List[int]] = None
        # Allocation memoization: the fair-share solve is skipped when
        # nothing feeding it (membership, weights, caps, blocked flags,
        # demand inflation, completions) changed since the last solve.
        self._alloc_version = 0
        self._solved_version = -1
        self._demand_epoch = 0
        self._store_epoch = 0
        self._last_inflation = self.buffer_pool.io_inflation()
        # Deferred-reallocation batching (see ``reallocation_batch``).
        self._defer_depth = 0
        self._realloc_pending = False
        self._last_sync_time = -1.0
        if self.config.batch_dispatch:
            add_hooks = getattr(sim, "add_batch_hooks", None)
            if add_hooks is not None:
                add_hooks(self._batch_enter, self._batch_exit)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def on_exit(self, callback: CompletionCallback) -> None:
        """Register a callback fired whenever a query leaves the engine."""
        self._callbacks.append(callback)

    @property
    def running_count(self) -> int:
        return len(self._running)

    def running_ids(self) -> List[int]:
        """IDs of the running queries (cached snapshot; treat as read-only)."""
        ids = self._ids_snapshot
        if ids is None:
            ids = self._ids_snapshot = list(self._running.keys())
        return ids

    def running_queries(self) -> List[Query]:
        """The running queries as a cached snapshot list.

        The snapshot is invalidated by replacement whenever membership
        changes, so a list obtained before a start/finish stays valid to
        iterate.  Treat it as read-only; copy before sorting or mutating.
        """
        snap = self._snapshot
        if snap is None:
            snap = self._snapshot = [entry.query for entry in self._running.values()]
        return snap

    def iter_running(self) -> Iterator[Query]:
        """Iterate the running queries without materializing a list.

        Do not start, kill or otherwise change engine membership while
        iterating; use :meth:`running_queries` for that.
        """
        for entry in self._running.values():
            yield entry.query

    def is_running(self, query_id: int) -> bool:
        return query_id in self._running

    def progress_of(self, query_id: int) -> float:
        self._sync_all()
        entry = self._entry(query_id)
        progress = float(self.store.progress[self.store.index[query_id]])
        # Keep the query object's field coherent for direct readers —
        # the store is authoritative while the query runs.
        entry.query.progress = progress
        return progress

    def speed_of(self, query_id: int) -> float:
        self._flush_reallocation()
        self._entry(query_id)
        return float(self.store.speed[self.store.index[query_id]])

    def weight_of(self, query_id: int) -> float:
        self._entry(query_id)
        return float(self.store.weight[self.store.index[query_id]])

    def throttle_of(self, query_id: int) -> float:
        self._entry(query_id)
        return float(self.store.throttle[self.store.index[query_id]])

    def conflict_ratio(self) -> float:
        return self.lock_manager.conflict_ratio()

    def memory_pressure(self) -> float:
        return self.buffer_pool.pressure

    def utilization(self, kind: ResourceKind) -> float:
        """Instantaneous utilization (0..1) of a rate resource."""
        self._flush_reallocation()
        resource = self.resources[kind]
        return resource.instantaneous_usage / resource.capacity

    # ------------------------------------------------------------------
    # lifecycle operations
    # ------------------------------------------------------------------
    def start(self, query: Query, weight: float = 1.0) -> None:
        """Begin executing ``query`` with the given fair-share weight."""
        query_id = query.query_id
        if query_id in self._running:
            raise QueryStateError(f"query {query_id} is already running")
        self._sync_all()
        query.transition(QueryState.RUNNING)
        now = self.sim.now
        if query.start_time is None:
            query.start_time = now
        cost = query.true_cost
        self.buffer_pool.reserve(query_id, cost.memory_mb)
        lock_points: Sequence[float] = _EMPTY_LOCKS
        if cost.lock_count > 0:
            registered = self.lock_manager.register(
                query_id, cost.lock_count, now
            )
            lock_points = [p for p in registered if p > query.progress]
        entry = _Running(query, self.store, lock_points)
        self._running[query_id] = entry
        self._membership_changed()
        store = self.store
        slot = store.add(query_id)
        store.progress[slot] = query.progress
        weight = weight if weight > 1e-9 else 1e-9
        store.weight[slot] = weight
        store.throttle[slot] = 1.0
        store.start_time[slot] = now
        dc = cost.cpu_seconds
        if dc <= 0:
            dc = 0.0
        di = cost.io_seconds
        if di <= 0:
            di = 0.0
        store.cpu_base[slot] = dc
        store.io_base[slot] = di
        io = di * self._last_inflation
        store.disk_demand[slot] = io
        bottleneck = dc if dc >= io else io
        store.bottleneck[slot] = bottleneck
        if bottleneck > 1e-9:
            store.solve_weight[slot] = weight / bottleneck
            store.speed_cap[slot] = (
                1.0 * self.config.max_parallelism / bottleneck
            )
        if lock_points:
            store.milestone[slot] = lock_points[0]
            store.locks_pending[slot] = True
        else:
            store.milestone[slot] = 1.0
        # Sub-nanosecond demands complete instantly; without the epsilon
        # a denormal demand overflows the speed-cap division below.
        if cost.nominal_duration <= 1e-9:
            self._finish(entry, CompletionOutcome.COMPLETED)
            return
        self._reallocate()

    def kill(self, query_id: int) -> Query:
        """Cancel a running query, releasing its resources immediately."""
        self._sync_all()
        entry = self._entry(query_id)
        self._finish(entry, CompletionOutcome.KILLED)
        return entry.query

    def remove_suspended(self, query_id: int) -> Query:
        """Evict a query for suspension; caller owns checkpoint costs."""
        self._sync_all()
        entry = self._entry(query_id)
        self._finish(entry, CompletionOutcome.SUSPENDED)
        return entry.query

    def set_weight(self, query_id: int, weight: float) -> None:
        """Change a query's fair-share weight (reprioritization)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._sync_all()
        self._entry(query_id)
        store = self.store
        slot = store.index[query_id]
        if float(store.weight[slot]) != weight:
            store.weight[slot] = weight
            bottleneck = float(store.bottleneck[slot])
            if bottleneck > 1e-9:
                store.solve_weight[slot] = weight / bottleneck
            self._alloc_version += 1
        self._reallocate()

    def set_throttle(self, query_id: int, factor: float) -> None:
        """Cap a query's speed at ``factor`` of full speed (0 pauses it)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"throttle factor must be in [0,1], got {factor}")
        self._sync_all()
        self._entry(query_id)
        store = self.store
        slot = store.index[query_id]
        if float(store.throttle[slot]) != factor:
            store.throttle[slot] = factor
            self._update_cap_slot(slot)
            self._alloc_version += 1
        self._reallocate()

    def pause(self, query_id: int) -> None:
        """Convenience for ``set_throttle(query_id, 0.0)``."""
        self.set_throttle(query_id, 0.0)

    def resume(self, query_id: int) -> None:
        """Convenience for ``set_throttle(query_id, 1.0)``."""
        self.set_throttle(query_id, 1.0)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _entry(self, query_id: int) -> _Running:
        entry = self._running.get(query_id)
        if entry is None:
            raise QueryStateError(f"query {query_id} is not running")
        return entry

    def _sync_all(self) -> None:
        """Advance every running query's progress to the current time."""
        now = self.sim.now
        previous = self._last_sync_time
        if now == previous:
            return
        self._last_sync_time = now
        store = self.store
        idx = store.live_indices()
        n = idx.size
        if n == 0:
            return
        dt = now - previous
        if n >= self.config.vectorize_min_running:
            speed = store.speed[idx]
            moving = speed > 0.0
            if not moving.any():
                return
            midx = idx[moving]
            old_progress = store.progress[midx]
            new_progress = old_progress + speed[moving] * dt
            if bool(((new_progress >= 1.0) & (old_progress < 1.0)).any()):
                # A query crossing the finish line leaves the active
                # request set, so the memoized allocation is stale
                # until the next real solve.
                self._alloc_version += 1
            store.progress[midx] = np.minimum(new_progress, 1.0)
            return
        slots = idx.tolist()
        speeds = store.speed[idx].tolist()
        progresses = store.progress[idx].tolist()
        progress_col = store.progress
        for i in range(n):
            speed = speeds[i]
            if speed > 0.0:
                progress = progresses[i] + speed * dt
                if progress >= 1.0:
                    if progresses[i] < 1.0:
                        self._alloc_version += 1
                    progress = 1.0
                progress_col[slots[i]] = progress

    def _membership_changed(self) -> None:
        self._snapshot = None
        self._ids_snapshot = None
        self._alloc_version += 1
        inflation = self.buffer_pool.io_inflation()
        if inflation != self._last_inflation:
            self._last_inflation = inflation
            self._demand_epoch += 1

    def _update_cap_slot(self, slot: int) -> None:
        store = self.store
        if store.blocked[slot] or store.throttle[slot] <= 0.0:
            store.speed_cap[slot] = 0.0
            return
        bottleneck = float(store.bottleneck[slot])
        if bottleneck > 1e-9:
            store.speed_cap[slot] = (
                float(store.throttle[slot])
                * self.config.max_parallelism
                / bottleneck
            )
        else:
            store.speed_cap[slot] = 0.0

    def _refresh_demands(self) -> None:
        """Recompute inflation-dependent columns for the current epoch.

        Elementwise, so bit-identical to the per-entry scalar rebuild
        the pre-columnar engine performed lazily per solve.
        """
        store = self.store
        idx = store.live_indices()
        if idx.size:
            io = store.io_base[idx] * self._last_inflation
            store.disk_demand[idx] = io
            bottleneck = np.maximum(store.cpu_base[idx], io)
            store.bottleneck[idx] = bottleneck
            safe = np.where(bottleneck > 1e-9, bottleneck, 1.0)
            store.solve_weight[idx] = store.weight[idx] / safe
            cap = store.throttle[idx] * self.config.max_parallelism / safe
            dead = (
                store.blocked[idx]
                | (store.throttle[idx] <= 0.0)
                | (bottleneck <= 1e-9)
            )
            store.speed_cap[idx] = np.where(dead, 0.0, cap)
        self._store_epoch = self._demand_epoch

    def _batch_enter(self) -> None:
        self._defer_depth += 1

    def _batch_exit(self) -> None:
        self._defer_depth -= 1
        if self._defer_depth == 0 and self._realloc_pending:
            self._solve()

    @contextmanager
    def reallocation_batch(self):
        """Coalesce reallocations across a batch of same-timestamp engine
        operations (e.g. a dispatch burst, or a finish plus the starts
        its callbacks trigger) into a single solver run at batch exit.

        Reads that depend on fresh speeds (``speed_of``,
        ``utilization``) flush the pending solve on demand, so a batch
        is observationally transparent; the pending solve always runs
        before control returns to the simulator.  The simulator's
        same-timestamp event batches enter the same depth counter via
        :meth:`Simulator.add_batch_hooks`.
        """
        self._batch_enter()
        try:
            yield
        finally:
            self._batch_exit()

    def _flush_reallocation(self) -> None:
        if self._realloc_pending:
            self._solve()

    def _reallocate(self) -> None:
        """Recompute speeds and (re)schedule the next milestone event."""
        if self._defer_depth > 0:
            self._realloc_pending = True
            return
        self._solve()

    def _solve(self) -> None:
        self._realloc_pending = False
        now = self.sim.now
        if self._solved_version == self._alloc_version:
            # Nothing feeding the allocator changed: keep the current
            # speeds.  Re-record the (unchanged) usage so the
            # utilization integrals accrue exactly as they would have,
            # and re-arm the milestone if this call consumed it.
            for resource in self.resources.values():
                resource.record(now, resource.instantaneous_usage)
            if self._milestone_handle is None:
                self._schedule_next_milestone()
            return
        if self._store_epoch != self._demand_epoch:
            self._refresh_demands()
        store = self.store
        idx = store.live_indices()
        if (
            self.config.vectorized_fill
            and idx.size >= self.config.vectorize_min_running
            and idx.size > _EXACT_FILL_MAX_ACTIVE
        ):
            usage_cpu, usage_disk = self._solve_vectorized(idx)
        else:
            usage_cpu, usage_disk = self._solve_scalar(idx)
        self.resources[ResourceKind.CPU].record(now, usage_cpu)
        self.resources[ResourceKind.DISK].record(now, usage_disk)
        self._solved_version = self._alloc_version
        self._schedule_next_milestone()

    def _solve_scalar(self, idx: np.ndarray):
        """Feed the exact scalar fill from the columnar store.

        Iteration order, float arithmetic and accumulation order match
        the pre-columnar engine's solve exactly (the fill core is the
        shared :func:`fill_two_resource`), so scalar solves reproduce
        committed digests bit-for-bit.
        """
        store = self.store
        slots = idx.tolist()
        bottlenecks = store.bottleneck[idx].tolist()
        progresses = store.progress[idx].tolist()
        weights = store.solve_weight[idx].tolist()
        cpu_demands = store.cpu_base[idx].tolist()
        disk_demands = store.disk_demand[idx].tolist()
        caps = store.speed_cap[idx].tolist()
        progress_col = store.progress
        active: List[List] = []
        speeds: Dict[int, float] = {}
        for i in range(len(slots)):
            if bottlenecks[i] <= 1e-9:
                # vanishing remaining demand: mark done so the milestone
                # reaper completes it rather than dividing by ~zero
                progress_col[slots[i]] = 1.0
                continue
            if progresses[i] >= 1.0:
                continue
            cap = caps[i]
            if cap == 0.0:
                continue
            slot = slots[i]
            speeds[slot] = 0.0
            active.append([slot, weights[i], cpu_demands[i], disk_demands[i], cap])
        if idx.size:
            store.speed[idx] = 0.0
        if not active:
            return 0.0, 0.0
        fill_two_resource(active, speeds, self._cpu_cap, self._disk_cap)
        speed_col = store.speed
        usage_cpu = usage_disk = 0.0
        for item in active:
            speed = speeds[item[0]]
            speed_col[item[0]] = speed
            if speed <= 0:
                continue
            usage_cpu += speed * item[2]
            usage_disk += speed * item[3]
        return usage_cpu, usage_disk

    def _solve_vectorized(self, idx: np.ndarray):
        """Vectorized solve: numpy fill + dotted usage sums.

        Results agree with :meth:`_solve_scalar` to solver tolerance
        (1e-9 per speed) but not bit-for-bit — sum order differs — which
        is why enabling it required the committed digest re-baseline.
        """
        store = self.store
        bottleneck = store.bottleneck[idx]
        progress = store.progress[idx]
        trivial = bottleneck <= 1e-9
        if bool(trivial.any()):
            store.progress[idx[trivial]] = 1.0
        caps = store.speed_cap[idx]
        active_mask = ~trivial & (progress < 1.0) & (caps > 0.0)
        store.speed[idx] = 0.0
        if not bool(active_mask.any()):
            return 0.0, 0.0
        act = idx[active_mask]
        cpu_demand = store.cpu_base[act]
        disk_demand = store.disk_demand[act]
        speeds = fair_share_fill_vectorized(
            store.solve_weight[act],
            cpu_demand,
            disk_demand,
            caps[active_mask],
            self._cpu_cap,
            self._disk_cap,
        )
        store.speed[act] = speeds
        positive = speeds > 0.0
        usage_cpu = float(np.dot(speeds[positive], cpu_demand[positive]))
        usage_disk = float(np.dot(speeds[positive], disk_demand[positive]))
        return usage_cpu, usage_disk

    def _schedule_next_milestone(self) -> None:
        if self._milestone_handle is not None:
            self._milestone_handle.cancel()
            self._milestone_handle = None
        store = self.store
        idx = store.live_indices()
        n = idx.size
        if n == 0:
            return
        now = self.sim.now
        best_time = None
        best_id = None
        if n >= self.config.vectorize_min_running:
            progress = store.progress[idx]
            done = (progress >= 1.0 - 1e-12) & ~store.locks_pending[idx]
            if bool(done.any()):
                # Finished during a sync triggered by someone else's
                # event; reap it via an immediate milestone of its own.
                best_time = now
                best_id = int(store.qid[idx[int(np.argmax(done))]])
            else:
                speed = store.speed[idx]
                moving = speed > 0.0
                if bool(moving.any()):
                    eta = np.full(n, np.inf)
                    gap = store.milestone[idx] - progress
                    np.maximum(gap, 0.0, out=gap)
                    eta[moving] = now + gap[moving] / speed[moving]
                    pos = int(np.argmin(eta))
                    best_time = float(eta[pos])
                    best_id = int(store.qid[idx[pos]])
        else:
            slots = idx.tolist()
            qids = store.qid[idx].tolist()
            progresses = store.progress[idx].tolist()
            speeds = store.speed[idx].tolist()
            milestones = store.milestone[idx].tolist()
            locks_pending = store.locks_pending[idx].tolist()
            for i in range(n):
                progress = progresses[i]
                if progress >= 1.0 - 1e-12 and not locks_pending[i]:
                    best_time, best_id = now, qids[i]
                    break
                speed = speeds[i]
                if speed <= 0:
                    continue
                gap = milestones[i] - progress
                eta = now + (gap if gap > 0.0 else 0.0) / speed
                if best_time is None or eta < best_time:
                    best_time, best_id = eta, qids[i]
        if best_id is not None:
            self._milestone_handle = self.sim.schedule_at(
                best_time,
                lambda qid=best_id: self._on_milestone(qid),
                label=f"milestone:q{best_id}",
            )

    def _on_milestone(self, query_id: int) -> None:
        self._milestone_handle = None
        entry = self._running.get(query_id)
        if entry is None:  # left the engine since scheduling
            self._sync_all()
            self._reallocate()
            return
        self._sync_all()
        store = self.store
        slot = store.index[query_id]
        milestone = entry.next_milestone()
        progress = float(store.progress[slot])
        if progress >= milestone - 1e-9:
            if progress < milestone:
                store.progress[slot] = milestone
                progress = milestone
            if entry.next_lock < len(entry.lock_points):
                self._acquire_next_lock(entry)
                return
            if progress >= 1.0 - 1e-12:
                self._finish(entry, CompletionOutcome.COMPLETED)
                return
        self._reallocate()

    def _acquire_next_lock(self, entry: _Running) -> None:
        query_id = entry.query.query_id
        outcome = self.lock_manager.try_acquire(query_id, entry.next_lock)
        if outcome is LockOutcome.GRANTED:
            entry.next_lock += 1
            store = self.store
            slot = store.index[query_id]
            if entry.next_lock < len(entry.lock_points):
                store.milestone[slot] = entry.lock_points[entry.next_lock]
            else:
                store.milestone[slot] = 1.0
                store.locks_pending[slot] = False
            self._reallocate()
        elif outcome is LockOutcome.WAIT:
            store = self.store
            slot = store.index[query_id]
            store.blocked[slot] = True
            entry.query.transition(QueryState.BLOCKED)
            store.speed_cap[slot] = 0.0
            self._alloc_version += 1
            self._reallocate()
        else:  # DIE: wait-die victim, abort and let policies resubmit
            self._finish(entry, CompletionOutcome.ABORTED)

    def _finish(self, entry: _Running, outcome: CompletionOutcome) -> None:
        query = entry.query
        query_id = query.query_id
        store = self.store
        slot = store.index.get(query_id)
        if slot is not None:
            # Write the fluid progress back before terminal transitions
            # overwrite it; the store row dies with the entry.
            query.progress = float(store.progress[slot])
            store.remove(query_id)
        self._running.pop(query_id, None)
        self.buffer_pool.release(query_id)
        self._membership_changed()
        woken = self.lock_manager.release_all(query_id)
        if outcome is CompletionOutcome.COMPLETED:
            query.progress = 1.0
            query.end_time = self.sim.now
            query.transition(QueryState.COMPLETED)
            self.completed_count += 1
        elif outcome is CompletionOutcome.KILLED:
            if query.state is QueryState.BLOCKED:
                query.transition(QueryState.RUNNING)
            query.end_time = self.sim.now
            query.transition(QueryState.KILLED)
            self.killed_count += 1
        elif outcome is CompletionOutcome.ABORTED:
            if query.state is QueryState.BLOCKED:
                query.transition(QueryState.RUNNING)
            query.transition(QueryState.ABORTED)
            query.progress = 0.0
            self.aborted_count += 1
        elif outcome is CompletionOutcome.SUSPENDED:
            if query.state is QueryState.BLOCKED:
                query.transition(QueryState.RUNNING)
            query.transition(QueryState.SUSPENDED)
            query.suspend_count += 1
        for woken_id in woken:
            woken_entry = self._running.get(woken_id)
            if woken_entry is None:
                continue
            woken_slot = store.index[woken_id]
            if store.blocked[woken_slot]:
                store.blocked[woken_slot] = False
                woken_entry.query.transition(QueryState.RUNNING)
                woken_entry.next_lock += 1
                if woken_entry.next_lock < len(woken_entry.lock_points):
                    store.milestone[woken_slot] = woken_entry.lock_points[
                        woken_entry.next_lock
                    ]
                else:
                    store.milestone[woken_slot] = 1.0
                    store.locks_pending[woken_slot] = False
                self._update_cap_slot(woken_slot)
        # One solve covers this exit plus whatever the exit callbacks do
        # at the same instant (resubmits, replacement dispatches).
        self._batch_enter()
        try:
            self._reallocate()
            for callback in list(self._callbacks):
                callback(query, outcome)
        finally:
            self._batch_exit()
