"""The execution engine: runs admitted queries on shared resources.

The engine is a fluid-flow simulation of concurrent query execution.
Every running query advances a progress variable from 0 to 1 at a speed
determined by weighted max-min fair resource sharing
(:mod:`repro.engine.resources`), inflated I/O under memory pressure
(:mod:`repro.engine.bufferpool`), and lock waits
(:mod:`repro.engine.locks`).  Speeds are recomputed at every state
change — admission, completion, kill, pause, weight change, lock event —
and the next milestone (a completion or a lock-acquisition point) is
scheduled on the simulator.

Everything execution control needs is a first-class operation here:

* ``set_weight``     — query reprioritization / priority aging / economic
  resource allocation change the weight;
* ``set_throttle``   — request throttling caps the speed (0 pauses);
* ``kill``           — query cancellation;
* ``remove_suspended`` — suspend-and-resume checkpoints then evicts;
* automatic wait-die aborts surface as ``ABORTED`` outcomes so policies
  can resubmit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.bufferpool import BufferPool
from repro.engine.locks import LockManager, LockOutcome
from repro.engine.query import Query, QueryState
from repro.engine.resources import (
    MachineSpec,
    Resource,
    ResourceKind,
    ShareRequest,
    allocate_fair_shares,
)
from repro.engine.simulator import Simulator
from repro.errors import QueryStateError


class CompletionOutcome(enum.Enum):
    """Why a query left the engine."""

    COMPLETED = "completed"
    KILLED = "killed"
    ABORTED = "aborted"       # wait-die victim; policies usually resubmit
    SUSPENDED = "suspended"


CompletionCallback = Callable[[Query, CompletionOutcome], None]


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the execution engine.

    ``hot_set_size`` is the number of lockable items (smaller = more
    contention); ``spill_penalty`` is forwarded to the buffer pool;
    ``max_parallelism`` is the per-query ceiling on resource units,
    i.e. intra-query parallelism (1.0 = a query can at most keep one
    core and one disk unit busy).
    """

    hot_set_size: int = 1000
    spill_penalty: float = 3.0
    max_parallelism: float = 1.0


@dataclass
class _Running:
    query: Query
    weight: float
    throttle: float = 1.0            # 1 = full speed, 0 = paused
    blocked: bool = False
    speed: float = 0.0
    lock_points: Sequence[float] = ()
    next_lock: int = 0
    last_sync: float = 0.0

    def next_milestone(self) -> float:
        """Progress value of the next interesting point (lock or done)."""
        if self.next_lock < len(self.lock_points):
            return self.lock_points[self.next_lock]
        return 1.0


class ExecutionEngine:
    """Concurrent query execution over a simulated machine."""

    def __init__(
        self,
        sim: Simulator,
        machine: Optional[MachineSpec] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.sim = sim
        self.machine = machine or MachineSpec()
        self.config = config or EngineConfig()
        self.buffer_pool = BufferPool(
            capacity_mb=self.machine.memory_mb,
            spill_penalty=self.config.spill_penalty,
        )
        self.lock_manager = LockManager(
            num_items=self.config.hot_set_size, rng=sim.rng("locks")
        )
        self.resources = {
            kind: Resource(kind=kind, capacity=cap)
            for kind, cap in self.machine.rate_capacities().items()
        }
        self._running: Dict[int, _Running] = {}
        self._callbacks: List[CompletionCallback] = []
        self._milestone_handle = None
        self.completed_count = 0
        self.killed_count = 0
        self.aborted_count = 0

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def on_exit(self, callback: CompletionCallback) -> None:
        """Register a callback fired whenever a query leaves the engine."""
        self._callbacks.append(callback)

    @property
    def running_count(self) -> int:
        return len(self._running)

    def running_ids(self) -> List[int]:
        return list(self._running.keys())

    def running_queries(self) -> List[Query]:
        return [entry.query for entry in self._running.values()]

    def is_running(self, query_id: int) -> bool:
        return query_id in self._running

    def progress_of(self, query_id: int) -> float:
        self._sync_all()
        return self._entry(query_id).query.progress

    def speed_of(self, query_id: int) -> float:
        return self._entry(query_id).speed

    def weight_of(self, query_id: int) -> float:
        return self._entry(query_id).weight

    def throttle_of(self, query_id: int) -> float:
        return self._entry(query_id).throttle

    def conflict_ratio(self) -> float:
        return self.lock_manager.conflict_ratio()

    def memory_pressure(self) -> float:
        return self.buffer_pool.pressure

    def utilization(self, kind: ResourceKind) -> float:
        """Instantaneous utilization (0..1) of a rate resource."""
        resource = self.resources[kind]
        return resource.instantaneous_usage / resource.capacity

    # ------------------------------------------------------------------
    # lifecycle operations
    # ------------------------------------------------------------------
    def start(self, query: Query, weight: float = 1.0) -> None:
        """Begin executing ``query`` with the given fair-share weight."""
        if query.query_id in self._running:
            raise QueryStateError(f"query {query.query_id} is already running")
        self._sync_all()
        query.transition(QueryState.RUNNING)
        if query.start_time is None:
            query.start_time = self.sim.now
        self.buffer_pool.reserve(query.query_id, query.true_cost.memory_mb)
        lock_points: Sequence[float] = ()
        if query.true_cost.lock_count > 0:
            lock_points = self.lock_manager.register(
                query.query_id, query.true_cost.lock_count, self.sim.now
            )
        entry = _Running(
            query=query,
            weight=max(weight, 1e-9),
            lock_points=[p for p in lock_points if p > query.progress],
            last_sync=self.sim.now,
        )
        self._running[query.query_id] = entry
        # Sub-nanosecond demands complete instantly; without the epsilon
        # a denormal demand overflows the speed-cap division below.
        if query.true_cost.nominal_duration <= 1e-9:
            self._finish(entry, CompletionOutcome.COMPLETED)
            return
        self._reallocate()

    def kill(self, query_id: int) -> Query:
        """Cancel a running query, releasing its resources immediately."""
        self._sync_all()
        entry = self._entry(query_id)
        self._finish(entry, CompletionOutcome.KILLED)
        return entry.query

    def remove_suspended(self, query_id: int) -> Query:
        """Evict a query for suspension; caller owns checkpoint costs."""
        self._sync_all()
        entry = self._entry(query_id)
        self._finish(entry, CompletionOutcome.SUSPENDED)
        return entry.query

    def set_weight(self, query_id: int, weight: float) -> None:
        """Change a query's fair-share weight (reprioritization)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._sync_all()
        self._entry(query_id).weight = weight
        self._reallocate()

    def set_throttle(self, query_id: int, factor: float) -> None:
        """Cap a query's speed at ``factor`` of full speed (0 pauses it)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"throttle factor must be in [0,1], got {factor}")
        self._sync_all()
        self._entry(query_id).throttle = factor
        self._reallocate()

    def pause(self, query_id: int) -> None:
        """Convenience for ``set_throttle(query_id, 0.0)``."""
        self.set_throttle(query_id, 0.0)

    def resume(self, query_id: int) -> None:
        """Convenience for ``set_throttle(query_id, 1.0)``."""
        self.set_throttle(query_id, 1.0)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _entry(self, query_id: int) -> _Running:
        entry = self._running.get(query_id)
        if entry is None:
            raise QueryStateError(f"query {query_id} is not running")
        return entry

    def _sync_all(self) -> None:
        """Advance every running query's progress to the current time."""
        now = self.sim.now
        for entry in self._running.values():
            dt = now - entry.last_sync
            if dt > 0 and entry.speed > 0:
                entry.query.progress = min(
                    1.0, entry.query.progress + entry.speed * dt
                )
            entry.last_sync = now

    def _effective_demands(self, entry: _Running) -> Dict[ResourceKind, float]:
        cost = entry.query.true_cost
        remaining = 1.0 - entry.query.progress
        if remaining <= 0:
            return {}
        inflation = self.buffer_pool.io_inflation()
        return {
            ResourceKind.CPU: cost.cpu_seconds,
            ResourceKind.DISK: cost.io_seconds * inflation,
        }

    def _reallocate(self) -> None:
        """Recompute speeds and (re)schedule the next milestone event."""
        requests = []
        for entry in self._running.values():
            demands = self._effective_demands(entry)
            bottleneck = max(demands.values(), default=0.0)
            if bottleneck <= 1e-9:
                # vanishing remaining demand: mark done so the milestone
                # reaper completes it rather than dividing by ~zero
                entry.query.progress = 1.0
                continue
            paused = entry.blocked or entry.throttle <= 0
            cap = 0.0 if paused else (
                entry.throttle * self.config.max_parallelism / bottleneck
            )
            requests.append(
                ShareRequest(
                    key=entry.query.query_id,
                    # Divide by the bottleneck demand so equal business
                    # weights mean equal *resource* shares, not equal
                    # progress speeds (see resources.py docstring).
                    weight=entry.weight / bottleneck,
                    demands=demands,
                    speed_cap=cap,
                )
            )
        allocations = allocate_fair_shares(
            requests, self.machine.rate_capacities()
        )
        usage_totals = {kind: 0.0 for kind in self.resources}
        for entry in self._running.values():
            alloc = allocations.get(entry.query.query_id)
            entry.speed = alloc.speed if alloc else 0.0
            if alloc:
                for kind, used in alloc.usage.items():
                    usage_totals[kind] = usage_totals.get(kind, 0.0) + used
        for kind, resource in self.resources.items():
            resource.record(self.sim.now, usage_totals.get(kind, 0.0))
        self._schedule_next_milestone()

    def _schedule_next_milestone(self) -> None:
        if self._milestone_handle is not None:
            self._milestone_handle.cancel()
            self._milestone_handle = None
        best_time = None
        best_id = None
        for entry in self._running.values():
            done = (
                entry.query.progress >= 1.0 - 1e-12
                and entry.next_lock >= len(entry.lock_points)
            )
            if done:
                # Finished during a sync triggered by someone else's event;
                # reap it via an immediate milestone of its own.
                best_time, best_id = self.sim.now, entry.query.query_id
                break
            if entry.speed <= 0:
                continue
            gap = entry.next_milestone() - entry.query.progress
            eta = self.sim.now + max(gap, 0.0) / entry.speed
            if best_time is None or eta < best_time:
                best_time, best_id = eta, entry.query.query_id
        if best_id is not None:
            self._milestone_handle = self.sim.schedule_at(
                best_time,
                lambda qid=best_id: self._on_milestone(qid),
                label=f"milestone:q{best_id}",
            )

    def _on_milestone(self, query_id: int) -> None:
        self._milestone_handle = None
        entry = self._running.get(query_id)
        if entry is None:  # left the engine since scheduling
            self._sync_all()
            self._reallocate()
            return
        self._sync_all()
        milestone = entry.next_milestone()
        if entry.query.progress >= milestone - 1e-9:
            entry.query.progress = max(entry.query.progress, milestone)
            if entry.next_lock < len(entry.lock_points):
                self._acquire_next_lock(entry)
                return
            if entry.query.progress >= 1.0 - 1e-12:
                self._finish(entry, CompletionOutcome.COMPLETED)
                return
        self._reallocate()

    def _acquire_next_lock(self, entry: _Running) -> None:
        outcome = self.lock_manager.try_acquire(
            entry.query.query_id, entry.next_lock
        )
        if outcome is LockOutcome.GRANTED:
            entry.next_lock += 1
            self._reallocate()
        elif outcome is LockOutcome.WAIT:
            entry.blocked = True
            entry.query.transition(QueryState.BLOCKED)
            self._reallocate()
        else:  # DIE: wait-die victim, abort and let policies resubmit
            self._finish(entry, CompletionOutcome.ABORTED)

    def _finish(self, entry: _Running, outcome: CompletionOutcome) -> None:
        query = entry.query
        self._running.pop(query.query_id, None)
        self.buffer_pool.release(query.query_id)
        woken = self.lock_manager.release_all(query.query_id)
        if outcome is CompletionOutcome.COMPLETED:
            query.progress = 1.0
            query.end_time = self.sim.now
            query.transition(QueryState.COMPLETED)
            self.completed_count += 1
        elif outcome is CompletionOutcome.KILLED:
            if query.state is QueryState.BLOCKED:
                query.transition(QueryState.RUNNING)
            query.end_time = self.sim.now
            query.transition(QueryState.KILLED)
            self.killed_count += 1
        elif outcome is CompletionOutcome.ABORTED:
            if query.state is QueryState.BLOCKED:
                query.transition(QueryState.RUNNING)
            query.transition(QueryState.ABORTED)
            query.progress = 0.0
            self.aborted_count += 1
        elif outcome is CompletionOutcome.SUSPENDED:
            if query.state is QueryState.BLOCKED:
                query.transition(QueryState.RUNNING)
            query.transition(QueryState.SUSPENDED)
            query.suspend_count += 1
        for woken_id in woken:
            woken_entry = self._running.get(woken_id)
            if woken_entry is not None and woken_entry.blocked:
                woken_entry.blocked = False
                woken_entry.query.transition(QueryState.RUNNING)
                woken_entry.next_lock += 1
        self._reallocate()
        for callback in list(self._callbacks):
            callback(query, outcome)
