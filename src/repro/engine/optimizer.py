"""Query optimizer cost estimation with configurable error.

Admission control decisions in the surveyed systems are driven by the
*optimizer's estimates*, and the paper (§2.3) stresses that "query costs
estimated by the database query optimizer may be inaccurate", which is
why long-running queries slip past admission control and execution
control exists at all.  This module reproduces that gap: given a query's
true cost it produces an estimate perturbed by multiplicative log-normal
error, the standard model for optimizer misestimation (errors compound
multiplicatively through join cardinality estimation).

``error_sigma=0`` yields a perfect optimizer; realistic values are
0.3–1.0 (a sigma of ~0.7 produces the order-of-magnitude errors reported
for multi-join plans).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.query import CostVector, Query


@dataclass(frozen=True)
class OptimizerProfile:
    """Error characteristics of a simulated query optimizer.

    ``error_sigma`` is the standard deviation of the natural log of the
    multiplicative error applied to time-like costs; ``cardinality_sigma``
    plays the same role for row counts, which are usually *worse*
    estimated than costs; ``bias`` shifts the error's median (optimizers
    often systematically underestimate long queries).
    """

    error_sigma: float = 0.0
    cardinality_sigma: float = 0.0
    bias: float = 0.0

    def __post_init__(self) -> None:
        if self.error_sigma < 0 or self.cardinality_sigma < 0:
            raise ValueError("error sigmas must be non-negative")


class Optimizer:
    """Produces estimated :class:`CostVector` values for queries.

    Parameters
    ----------
    profile:
        Error characteristics.
    rng:
        Seeded generator; pass ``Simulator.rng("optimizer")`` so runs are
        reproducible.
    """

    def __init__(self, profile: OptimizerProfile, rng: np.random.Generator) -> None:
        self.profile = profile
        self._rng = rng
        # Zero-sigma draws never touch the RNG; cache their constant
        # factor (perfect optimizers sit on the per-query hot path).
        self._bias_factor = float(np.exp(profile.bias))

    def estimate(self, true_cost: CostVector) -> CostVector:
        """Estimate a cost vector from the true one.

        CPU and I/O seconds share one error draw (both derive from the
        same cardinality estimates), memory a second, rows a third.
        """
        time_factor = self._draw(self.profile.error_sigma)
        mem_factor = self._draw(self.profile.error_sigma * 0.5)
        row_factor = self._draw(self.profile.cardinality_sigma)
        return CostVector(
            cpu_seconds=true_cost.cpu_seconds * time_factor,
            io_seconds=true_cost.io_seconds * time_factor,
            memory_mb=true_cost.memory_mb * mem_factor,
            lock_count=true_cost.lock_count,
            rows=int(round(true_cost.rows * row_factor)),
        )

    def annotate(self, query: Query) -> Query:
        """Fill in ``query.estimated_cost`` from its true cost, in place."""
        query.estimated_cost = self.estimate(query.true_cost)
        return query

    def _draw(self, sigma: float) -> float:
        if sigma <= 0:
            return self._bias_factor
        return float(np.exp(self._rng.normal(self.profile.bias, sigma)))


def perfect_optimizer() -> "OptimizerProfile":
    """Profile of an optimizer whose estimates are exact."""
    return OptimizerProfile(error_sigma=0.0, cardinality_sigma=0.0)


def realistic_optimizer() -> "OptimizerProfile":
    """Profile with the error magnitude typical of production optimizers."""
    return OptimizerProfile(error_sigma=0.6, cardinality_sigma=0.9, bias=-0.1)
