"""Columnar (struct-of-arrays) storage for the engine's running set.

The execution engine's hot loops — fluid advance, milestone selection,
fair-share solving — touch a handful of scalar fields per running query.
Storing those fields as parallel numpy arrays instead of attributes on
per-query Python objects lets the hot loops run as single array
operations (and makes the scalar fallback loops cache-friendly).

Design constraints (see DESIGN.md §7):

* **Insertion order is observable.**  The engine's float accumulation
  order (growth sums in the fair-share fill, usage totals) follows the
  running-set iteration order, and committed digests depend on it.  The
  store therefore preserves insertion order exactly like the dict it
  replaced: new entries append at the tail, removals leave tombstones,
  and compaction gathers live rows without reordering them.  A
  swap-remove free list would be O(1) but would silently reorder float
  sums and break bit-identity.
* **Slots are unstable across compaction.**  Callers must map ids to
  slots through :attr:`index` at use time rather than caching slot
  numbers across membership changes.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

#: Minimum number of tombstoned rows before compaction is considered.
_COMPACT_MIN_DEAD = 32


class RunStore:
    """Order-preserving struct-of-arrays table of running queries.

    Columns (all indexed by slot):

    ``qid``          query id (int64; -1 in dead slots)
    ``progress``     fluid progress in [0, 1]
    ``speed``        current fair-share speed
    ``weight``       business fair-share weight
    ``throttle``     throttle factor in [0, 1]
    ``start_time``   when the query entered the engine
    ``cpu_base``     CPU seconds demanded per unit progress (>= 0)
    ``io_base``      raw disk seconds per unit progress (>= 0)
    ``disk_demand``  ``io_base`` inflated by the current buffer-pool epoch
    ``bottleneck``   max(cpu_base, disk_demand) — unloaded duration
    ``solve_weight`` ``weight / bottleneck`` — the solver's weight
    ``speed_cap``    solver speed cap (0 when blocked or paused)
    ``milestone``    progress value of the next lock point or 1.0
    ``blocked``      waiting on a lock
    ``locks_pending``query still has lock points ahead
    ``alive``        slot holds a live entry
    """

    __slots__ = (
        "capacity",
        "size",
        "count",
        "index",
        "qid",
        "progress",
        "speed",
        "weight",
        "throttle",
        "start_time",
        "cpu_base",
        "io_base",
        "disk_demand",
        "bottleneck",
        "solve_weight",
        "speed_cap",
        "milestone",
        "blocked",
        "locks_pending",
        "alive",
        "_live_cache",
    )

    _FLOAT_COLS = (
        "progress",
        "speed",
        "weight",
        "throttle",
        "start_time",
        "cpu_base",
        "io_base",
        "disk_demand",
        "bottleneck",
        "solve_weight",
        "speed_cap",
        "milestone",
    )
    _BOOL_COLS = ("blocked", "locks_pending", "alive")

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = max(int(capacity), 8)
        self.size = 0        # dense prefix length (live + tombstones)
        self.count = 0       # live entries
        self.index: Dict[int, int] = {}
        self.qid = np.full(self.capacity, -1, dtype=np.int64)
        for name in self._FLOAT_COLS:
            setattr(self, name, np.zeros(self.capacity, dtype=np.float64))
        for name in self._BOOL_COLS:
            setattr(self, name, np.zeros(self.capacity, dtype=bool))
        self._live_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    def add(self, query_id: int) -> int:
        """Append a row for ``query_id`` and return its slot.

        The caller fills the columns; the row starts zeroed with
        ``alive`` set.  Appending keeps insertion order; capacity is
        reclaimed from tombstones (order-preserving) before growing.
        """
        if query_id in self.index:
            raise ValueError(f"query {query_id} already stored")
        if self.size == self.capacity:
            if self.size - self.count >= _COMPACT_MIN_DEAD:
                self.compact()
            else:
                self._grow()
        slot = self.size
        self.size = slot + 1
        self.count += 1
        self.qid[slot] = query_id
        for name in self._FLOAT_COLS:
            getattr(self, name)[slot] = 0.0
        self.blocked[slot] = False
        self.locks_pending[slot] = False
        self.alive[slot] = True
        self.index[query_id] = slot
        self._live_cache = None
        return slot

    def remove(self, query_id: int) -> None:
        """Tombstone the row for ``query_id`` (order-preserving)."""
        slot = self.index.pop(query_id)
        self.alive[slot] = False
        self.qid[slot] = -1
        # Dead rows must not poison vectorized passes that operate on
        # the dense prefix rather than gathered live rows.
        self.speed[slot] = 0.0
        self.count -= 1
        self._live_cache = None
        if (
            self.size - self.count >= _COMPACT_MIN_DEAD
            and self.size - self.count > self.count
        ):
            self.compact()

    def live_indices(self) -> np.ndarray:
        """Slots of live rows in insertion order (cached; treat read-only)."""
        cache = self._live_cache
        if cache is None:
            cache = self._live_cache = np.flatnonzero(self.alive[: self.size])
        return cache

    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Drop tombstones by gathering live rows, preserving order."""
        if self.size == self.count:
            return
        keep = np.flatnonzero(self.alive[: self.size])
        n = int(keep.size)
        self.qid[:n] = self.qid[keep]
        self.qid[n : self.size] = -1
        for name in self._FLOAT_COLS:
            col = getattr(self, name)
            col[:n] = col[keep]
        for name in self._BOOL_COLS:
            col = getattr(self, name)
            col[:n] = col[keep]
            col[n : self.size] = False
        self.size = n
        self.index = {int(q): i for i, q in enumerate(self.qid[:n])}
        self._live_cache = None

    def _grow(self) -> None:
        new_capacity = self.capacity * 2
        grown_qid = np.full(new_capacity, -1, dtype=np.int64)
        grown_qid[: self.size] = self.qid[: self.size]
        self.qid = grown_qid
        for name in self._FLOAT_COLS:
            col = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=np.float64)
            grown[: self.size] = col[: self.size]
            setattr(self, name, grown)
        for name in self._BOOL_COLS:
            col = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=bool)
            grown[: self.size] = col[: self.size]
            setattr(self, name, grown)
        self.capacity = new_capacity

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def __contains__(self, query_id: int) -> bool:
        return query_id in self.index

    def live_qids(self) -> List[int]:
        """Query ids of live rows in insertion order."""
        return [int(q) for q in self.qid[self.live_indices()]]

    def __repr__(self) -> str:
        return (
            f"RunStore(count={self.count}, size={self.size}, "
            f"capacity={self.capacity})"
        )
