"""Discrete-event DBMS simulator substrate.

The engine package provides everything the workload-management framework
needs from a "database server": a simulation clock and event queue
(:mod:`repro.engine.simulator`), queries with true and estimated cost
vectors (:mod:`repro.engine.query`, :mod:`repro.engine.optimizer`),
weighted processor-sharing resources (:mod:`repro.engine.resources`), a
buffer pool whose oversubscription penalizes I/O
(:mod:`repro.engine.bufferpool`), a two-phase lock manager
(:mod:`repro.engine.locks`) and the execution engine that ties them
together (:mod:`repro.engine.executor`).

The simulator is fully deterministic: all time is simulated and all
randomness flows from seeded generators, so every experiment in the
benchmark harness is reproducible bit-for-bit.
"""

from repro.engine.simulator import Simulator, Event
from repro.engine.query import Query, QueryState, CostVector, QueryPlan, PlanOperator
from repro.engine.optimizer import Optimizer, OptimizerProfile
from repro.engine.resources import Resource, ResourceKind, MachineSpec
from repro.engine.bufferpool import BufferPool
from repro.engine.locks import LockManager, LockConflictStats
from repro.engine.executor import ExecutionEngine, EngineConfig
from repro.engine.sessions import Session, ConnectionAttributes

__all__ = [
    "Simulator",
    "Event",
    "Query",
    "QueryState",
    "CostVector",
    "QueryPlan",
    "PlanOperator",
    "Optimizer",
    "OptimizerProfile",
    "Resource",
    "ResourceKind",
    "MachineSpec",
    "BufferPool",
    "LockManager",
    "LockConflictStats",
    "ExecutionEngine",
    "EngineConfig",
    "Session",
    "ConnectionAttributes",
]
