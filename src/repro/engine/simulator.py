"""Discrete-event simulation core: clock, event queue and RNG streams.

The :class:`Simulator` owns simulated time.  Components schedule callbacks
at absolute times or after delays; the simulator fires them in time order
with deterministic FIFO tie-breaking (events scheduled earlier run first
when times are equal).  Periodic processes — monitors, controllers,
arrival generators — are built from the same primitive via
:meth:`Simulator.schedule_periodic`.

Determinism rules used throughout the library:

* no wall-clock reads — time only advances through the event loop;
* all randomness comes from named, seeded :class:`numpy.random.Generator`
  streams obtained via :meth:`Simulator.rng`, so adding a new random
  consumer does not perturb existing streams.

Throughput notes (see DESIGN.md §7): an :class:`Event` is its own
cancellation handle (one ``__slots__`` object per scheduled callback
instead of a frozen-dataclass/handle pair), and the run loops dispatch
all events sharing one timestamp as a *batch* bracketed by registered
enter/exit hooks, so an engine can defer its reallocation solve until
the last event of the instant has fired.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationBudgetExceeded, SimulationError


class Event:
    """A scheduled callback, doubling as its own cancellation handle.

    Events compare by ``(time, seq)`` which gives deterministic FIFO
    ordering among events scheduled for the same instant.  The object
    is pushed on the heap directly; :meth:`cancel` marks it dead and
    keeps the simulator's live-event counter exact, and ``done`` blocks
    a late cancel on an already-fired event from drifting the count.
    """

    __slots__ = ("time", "seq", "action", "label", "cancelled", "done", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        label: str = "",
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False
        self.done = False
        self.sim = sim

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        """Prevent the event's action from running when it is dequeued."""
        if self.cancelled or self.done:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._live_events -= 1

    @property
    def event(self) -> "Event":
        """Back-compat: the old handle exposed the event it guarded."""
        return self

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else ("done" if self.done else "pending")
        return f"Event(t={self.time:.6f}, seq={self.seq}, {self.label!r}, {state})"


#: Back-compat alias: ``schedule``/``schedule_at`` used to return a
#: separate handle type; the event now plays both roles.
_EventHandle = Event


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Every named stream handed out by :meth:`rng` is
        derived from it with :func:`numpy.random.SeedSequence.spawn`-style
        hashing, so two simulators built with the same seed produce
        identical behaviour.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._rngs: Dict[str, np.random.Generator] = {}
        self._running = False
        self._events_fired = 0
        self._live_events = 0
        #: (enter, exit) pairs bracketing same-timestamp event batches.
        self._batch_hooks: List[Tuple[Callable[[], None], Callable[[], None]]] = []

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (useful for run-cost stats)."""
        return self._events_fired

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, stream: str) -> np.random.Generator:
        """Return the named random stream, creating it on first use.

        Streams are independent of one another and stable across runs:
        the generator for a given ``(seed, stream)`` pair is always
        identical.
        """
        if stream not in self._rngs:
            # zlib.crc32 is stable across processes (unlike built-in str
            # hashing, which is salted), keeping streams reproducible.
            seed_seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(zlib.crc32(stream.encode("utf-8")),)
            )
            self._rngs[stream] = np.random.Generator(np.random.PCG64(seed_seq))
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run at absolute simulated ``time``."""
        now = self._now
        if time < now:
            if time < now - 1e-12:
                raise SimulationError(
                    f"cannot schedule event at {time:.6f} in the past (now={now:.6f})"
                )
            time = now
        event = Event(time, next(self._seq), action, label, self)
        heapq.heappush(self._queue, event)
        self._live_events += 1
        return event

    def schedule(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, action, label=label)

    def schedule_periodic(
        self,
        period: float,
        action: Callable[[], None],
        start: Optional[float] = None,
        label: str = "",
    ) -> "_PeriodicProcess":
        """Run ``action`` every ``period`` seconds until stopped.

        The first firing happens at ``start`` (defaults to ``now +
        period``).  Returns a :class:`_PeriodicProcess` whose ``stop()``
        halts future firings.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        process = _PeriodicProcess(self, period, action, label)
        first = (self._now + period) if start is None else start
        process._arm(first)
        return process

    # ------------------------------------------------------------------
    # batch hooks
    # ------------------------------------------------------------------
    def add_batch_hooks(
        self, enter: Callable[[], None], exit: Callable[[], None]
    ) -> None:
        """Register an enter/exit pair bracketing same-timestamp batches.

        When the run loop finds several events queued for one instant it
        calls every ``enter`` hook, fires the whole batch, then calls the
        ``exit`` hooks in reverse order.  Execution engines register
        their reallocation deferral here so N events at one timestamp
        trigger one fair-share solve instead of N.  Hooks must be
        idempotent per batch and must not advance time.
        """
        self._batch_hooks.append((enter, exit))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain.

        ``step`` fires exactly one event and never batches, so callers
        single-stepping a simulation observe every event boundary.
        """
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)
            if event.cancelled:
                event.done = True
                continue
            event.done = True
            self._live_events -= 1
            self._now = event.time
            self._events_fired += 1
            event.action()
            return True
        return False

    def run_until(self, time: float, max_events: Optional[int] = None) -> None:
        """Run events until simulated ``time`` (inclusive of events at it).

        Events sharing a timestamp are dispatched as one batch bracketed
        by the registered batch hooks.  If ``max_events`` is given and
        exhausted before ``time`` is reached,
        :class:`~repro.errors.SimulationBudgetExceeded` is raised — the
        run never silently truncates.
        """
        fired = self._dispatch(time, max_events, f"run_until({time})")
        if time != float("inf") and time > self._now:
            self._now = time
        return fired

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or ``max_events`` fire).

        Raises :class:`~repro.errors.SimulationBudgetExceeded` at the
        cap; pass an explicit ``max_events`` sized to the scenario when
        driving large runs so the budget is a deliberate choice rather
        than a silent default.
        """
        self._dispatch(float("inf"), max_events, "run()")

    def _dispatch(
        self, until: float, max_events: Optional[int], what: str
    ) -> int:
        """Shared batched dispatch loop for :meth:`run_until` / :meth:`run`."""
        queue = self._queue
        hooks = self._batch_hooks
        fired = 0
        while queue:
            head = queue[0]
            time = head.time
            if time > until:
                break
            heapq.heappop(queue)
            if head.cancelled:
                head.done = True
                continue
            head.done = True
            self._live_events -= 1
            self._now = time
            self._events_fired += 1
            if hooks and queue and queue[0].time == time:
                # Same-timestamp batch: bracket with the registered
                # hooks and drain every event at this instant.  Events
                # scheduled *during* the batch at the same time join it
                # (heap order keeps (time, seq) FIFO semantics intact).
                for enter, _ in hooks:
                    enter()
                try:
                    head.action()
                    fired += 1
                    if max_events is not None and fired >= max_events:
                        raise SimulationBudgetExceeded(
                            f"{what} exceeded max_events={max_events}; "
                            "possible event storm or undersized budget",
                            budget=max_events,
                            fired=fired,
                        )
                    while queue and queue[0].time == time:
                        nxt = heapq.heappop(queue)
                        if nxt.cancelled:
                            nxt.done = True
                            continue
                        nxt.done = True
                        self._live_events -= 1
                        self._events_fired += 1
                        nxt.action()
                        fired += 1
                        if max_events is not None and fired >= max_events:
                            raise SimulationBudgetExceeded(
                                f"{what} exceeded max_events={max_events}; "
                                "possible event storm or undersized budget",
                                budget=max_events,
                                fired=fired,
                            )
                finally:
                    for _, exit in reversed(hooks):
                        exit()
            else:
                head.action()
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationBudgetExceeded(
                        f"{what} exceeded max_events={max_events}; "
                        "possible event storm or undersized budget",
                        budget=max_events,
                        fired=fired,
                    )
        return fired

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue.

        O(1): a live counter maintained on push, fire and cancel, so
        decision paths (elastic provisioning, dispatch) can poll it
        freely without scanning the heap.
        """
        return self._live_events

    # ------------------------------------------------------------------
    # scoping (multi-instance simulations)
    # ------------------------------------------------------------------
    def scoped(self, scope: str) -> "ScopedSimulator":
        """A view of this simulator with namespaced RNG streams.

        Multiple simulated servers sharing one clock (see
        :mod:`repro.cluster`) must not share random streams: if two
        engines both ask for ``rng("locks")`` their draws interleave and
        adding a node perturbs every other node's behaviour.  A scoped
        view shares the clock and event queue but prefixes every stream
        name with ``scope``, giving each instance its own independent,
        seed-stable streams.
        """
        return ScopedSimulator(self, scope)


class ScopedSimulator:
    """A :class:`Simulator` facade with a private RNG namespace.

    Everything except :meth:`rng` delegates to the base simulator, so
    components built against the ``Simulator`` interface (engines,
    managers, generators) run unmodified on a scoped view while their
    randomness stays isolated per scope.

    Hot delegated methods (``schedule``, ``schedule_at``, …) are bound
    as instance attributes at construction: cluster engines call them
    on every event, and routing each call through ``__getattr__`` costs
    a failed instance/class lookup plus a ``getattr`` per call.
    ``__getattr__`` remains as the fallback for everything else.
    """

    #: Base-simulator methods bound directly onto every scoped view.
    _BOUND_METHODS = (
        "schedule",
        "schedule_at",
        "schedule_periodic",
        "step",
        "run_until",
        "run",
        "pending_events",
        "add_batch_hooks",
    )

    def __init__(self, base: Simulator, scope: str) -> None:
        if not scope:
            raise SimulationError("scope must be a non-empty string")
        self._base = base
        self.scope = scope
        for name in self._BOUND_METHODS:
            setattr(self, name, getattr(base, name))

    @property
    def base(self) -> Simulator:
        """The underlying shared simulator."""
        return self._base

    @property
    def now(self) -> float:
        """Current simulated time (shared clock)."""
        return self._base._now

    @property
    def events_fired(self) -> int:
        return self._base._events_fired

    def rng(self, stream: str) -> np.random.Generator:
        return self._base.rng(f"{self.scope}/{stream}")

    def __getattr__(self, name: str):
        return getattr(self._base, name)

    def __repr__(self) -> str:
        return f"ScopedSimulator(scope={self.scope!r}, base={self._base!r})"


@dataclass
class _PeriodicProcess:
    """A repeating event created by :meth:`Simulator.schedule_periodic`."""

    sim: Simulator
    period: float
    action: Callable[[], None]
    label: str = ""
    _stopped: bool = field(default=False, init=False)
    _handle: Optional[Event] = field(default=None, init=False)

    def _arm(self, time: float) -> None:
        if self._stopped:
            return
        self._handle = self.sim.schedule_at(time, self._fire, label=self.label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.action()
        self._arm(self.sim.now + self.period)

    def stop(self) -> None:
        """Stop future firings (a firing already underway completes)."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
