"""Buffer pool / working-memory model.

Queries reserve working memory (sort heaps, hash tables) for their whole
run.  While total reservations fit in the pool, I/O demand is the cost
vector's nominal value.  Once the pool is oversubscribed, operators spill
to disk: effective I/O demand inflates with the oversubscription ratio.

This single mechanism produces the *thrashing knee* of Denning [16] and
Carey et al. [7] that motivates MPL-based admission control (paper
§3.2): throughput rises with concurrency until memory oversubscription
makes every query's I/O superlinear, after which throughput falls
"dramatically".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional


@dataclass
class BufferPool:
    """Working-memory pool with spill-based I/O inflation.

    Parameters
    ----------
    capacity_mb:
        Total working memory available to concurrently running queries.
    spill_penalty:
        How steeply I/O inflates with oversubscription.  With pressure
        ``p = committed/capacity`` and ``p > 1``, every running query's
        I/O demand is multiplied by ``1 + spill_penalty * (p - 1)``.
    """

    capacity_mb: float
    spill_penalty: float = 3.0
    _committed: Dict[Hashable, float] = field(default_factory=dict)
    _committed_total: Optional[float] = field(default=None, repr=False)

    def reserve(self, key: Hashable, memory_mb: float) -> None:
        """Reserve working memory for a query entering the engine."""
        self._committed[key] = max(0.0, memory_mb)
        self._committed_total = None

    def release(self, key: Hashable) -> None:
        """Release a query's reservation (idempotent)."""
        if self._committed.pop(key, None) is not None:
            self._committed_total = None

    @property
    def committed_mb(self) -> float:
        """Total memory currently reserved.

        Cached between reservation changes; the cache recomputes the
        same insertion-order sum, never an incremental update, so the
        value is bit-identical to summing on every read.
        """
        total = self._committed_total
        if total is None:
            total = self._committed_total = sum(self._committed.values())
        return total

    @property
    def pressure(self) -> float:
        """Committed-to-capacity ratio; > 1 means oversubscribed."""
        if self.capacity_mb <= 0:
            return float("inf") if self._committed else 0.0
        return self.committed_mb / self.capacity_mb

    def io_inflation(self) -> float:
        """Multiplier applied to every running query's I/O demand."""
        overflow = max(0.0, self.pressure - 1.0)
        return 1.0 + self.spill_penalty * overflow

    def reset(self) -> None:
        """Drop all reservations (between experiment repetitions)."""
        self._committed.clear()
        self._committed_total = None
