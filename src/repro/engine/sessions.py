"""Client sessions and connection attributes.

Workload identification in the surveyed systems is keyed off *who* is
submitting work: DB2 maps connections to workload objects via connection
attributes (application name, authorization id, client user id...), SQL
Server's classifier functions inspect the session, Teradata's "who"
classification criteria use user/account/application/client IP
(paper §2.2, §4.1).  Sessions carry those attributes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

_session_ids = itertools.count(1)


@dataclass(frozen=True)
class ConnectionAttributes:
    """Origin attributes of a database connection (paper §2.2 "who")."""

    application: str = "unknown"
    user: str = "unknown"
    client_ip: str = "0.0.0.0"
    account: str = ""
    extra: Optional[frozenset] = None   # frozenset of (key, value) pairs

    def get(self, key: str, default: str = "") -> str:
        """Look up an attribute by name, including extras."""
        builtin = {
            "application": self.application,
            "user": self.user,
            "client_ip": self.client_ip,
            "account": self.account,
        }
        if key in builtin:
            return builtin[key]
        if self.extra:
            for k, v in self.extra:
                if k == key:
                    return v
        return default


@dataclass
class Session:
    """A client connection through which queries arrive."""

    attributes: ConnectionAttributes
    session_id: int = field(default_factory=lambda: next(_session_ids))
    queries_submitted: int = 0

    def note_submission(self) -> None:
        self.queries_submitted += 1


class SessionRegistry:
    """Tracks open sessions so identification can resolve session ids."""

    def __init__(self) -> None:
        self._sessions: Dict[int, Session] = {}

    def open(self, attributes: ConnectionAttributes) -> Session:
        session = Session(attributes=attributes)
        self._sessions[session.session_id] = session
        return session

    def close(self, session_id: int) -> None:
        self._sessions.pop(session_id, None)

    def get(self, session_id: Optional[int]) -> Optional[Session]:
        if session_id is None:
            return None
        return self._sessions.get(session_id)

    def __len__(self) -> int:
        return len(self._sessions)
