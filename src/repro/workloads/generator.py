"""Workload generators: drive workload specs on a simulator.

A :class:`WorkloadGenerator` turns :class:`~repro.workloads.models.WorkloadSpec`
objects into a stream of submitted queries: it opens sessions carrying
the spec's origin attributes, draws request classes/costs/plans from the
spec's distributions, annotates optimizer estimates, and schedules
submissions.  Closed workloads resubmit per-client after a think time
when notified of completion.

The module also ships the canonical workload builders used across
examples, tests and benchmarks — the OLTP / BI / report-batch / utility
mix the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.optimizer import Optimizer, OptimizerProfile
from repro.engine.query import Query, StatementType
from repro.engine.sessions import ConnectionAttributes, Session, SessionRegistry
from repro.engine.simulator import Simulator
from repro.workloads.models import (
    BatchArrivals,
    ClosedArrivals,
    Constant,
    Exponential,
    LogNormal,
    OpenArrivals,
    RequestClass,
    Uniform,
    WorkloadSpec,
)

SubmitFn = Callable[[Query], None]


class WorkloadGenerator:
    """Generates and submits queries for a set of workload specs.

    Parameters
    ----------
    sim:
        The simulator to schedule arrivals on.
    submit:
        Callback receiving each newly created query (normally
        ``WorkloadManager.submit``).
    optimizer:
        Annotates estimated costs.  Defaults to a perfect optimizer.
    """

    def __init__(
        self,
        sim: Simulator,
        submit: SubmitFn,
        optimizer: Optional[Optimizer] = None,
        sessions: Optional[SessionRegistry] = None,
    ) -> None:
        self.sim = sim
        self.submit = submit
        self.optimizer = optimizer or Optimizer(
            OptimizerProfile(), sim.rng("optimizer")
        )
        # Share the manager's registry so identification by connection
        # attributes (static characterization) can resolve sessions.
        self.sessions = sessions if sessions is not None else SessionRegistry()
        self._specs: List[WorkloadSpec] = []
        self._spec_by_name: Dict[str, WorkloadSpec] = {}
        self._spec_sessions: Dict[str, List[Session]] = {}
        self._next_session: Dict[str, int] = {}
        self._closed_outstanding: Dict[int, str] = {}  # query_id -> spec name
        # Per-spec hot-path handles: the cost/think RNG streams (memoized
        # by the simulator, but the f-string + dict lookup per query adds
        # up) and the per-class sql labels.
        self._cost_rngs: Dict[str, object] = {}
        self._think_rngs: Dict[str, object] = {}
        self._sql_labels: Dict[int, str] = {}
        self._horizon = 0.0
        self.generated_count = 0

    def add(self, spec: WorkloadSpec) -> None:
        """Register a workload spec (before :meth:`start`)."""
        self._specs.append(spec)
        self._spec_by_name[spec.name] = spec

    def start(self, horizon: float) -> None:
        """Schedule all arrivals within ``[0, horizon)``."""
        self._horizon = horizon
        for spec in self._specs:
            sessions = [
                self.sessions.open(spec.session_attributes)
                for _ in range(max(1, spec.sessions))
            ]
            self._spec_sessions[spec.name] = sessions
            self._next_session[spec.name] = 0
            rng = self.sim.rng(f"arrivals:{spec.name}")
            for time in spec.arrivals.arrival_times(rng, horizon):
                self.sim.schedule_at(
                    time,
                    lambda s=spec: self._emit(s),
                    label=f"arrival:{spec.name}",
                )

    def notify_done(self, query: Query) -> None:
        """Tell the generator a query finished (drives closed workloads).

        Wire this to the manager's completion listener.  Open and batch
        workloads ignore it.
        """
        spec_name = self._closed_outstanding.pop(query.query_id, None)
        if spec_name is None:
            return
        spec = self._spec_by_name.get(spec_name)
        if spec is None or not isinstance(spec.arrivals, ClosedArrivals):
            return
        if self.sim.now >= self._horizon:
            return
        rng = self._think_rngs.get(spec_name)
        if rng is None:
            rng = self._think_rngs[spec_name] = self.sim.rng(f"think:{spec_name}")
        think = max(0.0, spec.arrivals.think_time.sample(rng))
        self.sim.schedule(
            think, lambda s=spec: self._emit(s), label=f"think:{spec.name}"
        )

    # ------------------------------------------------------------------
    def make_query(self, spec: WorkloadSpec) -> Query:
        """Create one query for ``spec`` without submitting it."""
        name = spec.name
        rng = self._cost_rngs.get(name)
        if rng is None:
            rng = self._cost_rngs[name] = self.sim.rng(f"costs:{name}")
        request_class = spec.pick_class(rng)
        sessions = self._spec_sessions.get(name) or [
            self.sessions.open(spec.session_attributes)
        ]
        index = self._next_session.get(name, 0)
        session = sessions[index % len(sessions)]
        self._next_session[name] = index + 1
        session.note_submission()
        sql = self._sql_labels.get(id(request_class))
        if sql is None:
            sql = f"{name}:{request_class.name}"
            self._sql_labels[id(request_class)] = sql
        query = Query(
            true_cost=request_class.sample_cost(rng),
            estimated_cost=request_class.sample_cost(rng),  # overwritten below
            statement_type=request_class.statement_type,
            plan=request_class.sample_plan(rng),
            session_id=session.session_id,
            priority=spec.priority,
            sql=sql,
            objects=tuple(request_class.objects),
        )
        self.optimizer.annotate(query)
        self.generated_count += 1
        return query

    def _emit(self, spec: WorkloadSpec) -> None:
        query = self.make_query(spec)
        if isinstance(spec.arrivals, ClosedArrivals):
            self._closed_outstanding[query.query_id] = spec.name
        self.submit(query)


@dataclass
class Scenario:
    """A bundle of workload specs plus a horizon, ready to run."""

    specs: Sequence[WorkloadSpec]
    horizon: float = 300.0
    optimizer_profile: OptimizerProfile = field(default_factory=OptimizerProfile)

    def build(
        self,
        sim: Simulator,
        submit: SubmitFn,
        sessions: Optional[SessionRegistry] = None,
    ) -> WorkloadGenerator:
        """Create a generator for this scenario and schedule arrivals."""
        optimizer = Optimizer(self.optimizer_profile, sim.rng("optimizer"))
        generator = WorkloadGenerator(sim, submit, optimizer, sessions=sessions)
        for spec in self.specs:
            generator.add(spec)
        generator.start(self.horizon)
        return generator

    def spec(self, name: str) -> WorkloadSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(name)


# ----------------------------------------------------------------------
# canonical workload builders
# ----------------------------------------------------------------------
def oltp_workload(
    name: str = "oltp",
    rate: float = 10.0,
    priority: int = 3,
    write_fraction: float = 0.6,
    mean_cpu: float = 0.015,
    mean_io: float = 0.02,
    lock_count: float = 8.0,
    application: str = "order-entry",
) -> WorkloadSpec:
    """Short, cheap, high-priority transaction processing (paper §1).

    Transactions "may require only milliseconds of CPU time and very
    small amounts of disk I/O".  Writes take row locks; reads do not.
    """
    write_class = RequestClass(
        name="txn-write",
        cpu=Exponential(mean_cpu),
        io=Exponential(mean_io),
        memory_mb=Constant(4.0),
        locks=Constant(lock_count),
        rows=Constant(5.0),
        statement_type=StatementType.WRITE,
        plan_shape=("index-probe", "update"),
        operator_state_mb=0.5,
    )
    read_class = RequestClass(
        name="txn-read",
        cpu=Exponential(mean_cpu * 0.7),
        io=Exponential(mean_io * 0.7),
        memory_mb=Constant(2.0),
        locks=Constant(0.0),
        rows=Constant(20.0),
        statement_type=StatementType.READ,
        plan_shape=("index-probe", "fetch"),
        operator_state_mb=0.5,
    )
    return WorkloadSpec(
        name=name,
        request_classes=(
            (write_class, write_fraction),
            (read_class, 1.0 - write_fraction),
        ),
        arrivals=OpenArrivals(rate=rate),
        priority=priority,
        session_attributes=ConnectionAttributes(
            application=application, user="clerk", client_ip="10.0.0.1"
        ),
        sessions=8,
    )


def bi_workload(
    name: str = "bi",
    rate: float = 0.1,
    priority: int = 1,
    median_cpu: float = 15.0,
    median_io: float = 25.0,
    sigma: float = 0.9,
    memory_low: float = 200.0,
    memory_high: float = 1500.0,
    application: str = "analytics",
) -> WorkloadSpec:
    """Long, heavy, low-priority business-intelligence queries (§1).

    "Longer, more complex and resource-intensive queries that can
    require hours or an even longer time to complete" — heavy-tailed
    log-normal demands and large working memory.
    """
    adhoc = RequestClass(
        name="bi-adhoc",
        cpu=LogNormal(median=median_cpu, sigma=sigma),
        io=LogNormal(median=median_io, sigma=sigma),
        memory_mb=Uniform(memory_low, memory_high),
        rows=LogNormal(median=50_000, sigma=1.2),
        statement_type=StatementType.READ,
        plan_shape=("scan", "hash-build", "join", "sort", "aggregate"),
        operator_state_mb=120.0,
    )
    return WorkloadSpec(
        name=name,
        request_classes=((adhoc, 1.0),),
        arrivals=OpenArrivals(rate=rate),
        priority=priority,
        session_attributes=ConnectionAttributes(
            application=application, user="analyst", client_ip="10.0.1.7"
        ),
        sessions=4,
    )


def report_batch_workload(
    name: str = "reports",
    count: int = 40,
    at: float = 0.0,
    priority: int = 2,
    median_cpu: float = 4.0,
    median_io: float = 6.0,
    sigma: float = 0.7,
) -> WorkloadSpec:
    """A report-generation batch (paper §2.2's "daily routine" example)."""
    report = RequestClass(
        name="report",
        cpu=LogNormal(median=median_cpu, sigma=sigma),
        io=LogNormal(median=median_io, sigma=sigma),
        memory_mb=Uniform(50.0, 300.0),
        rows=LogNormal(median=5_000, sigma=0.8),
        statement_type=StatementType.READ,
        plan_shape=("scan", "join", "aggregate"),
        operator_state_mb=40.0,
    )
    return WorkloadSpec(
        name=name,
        request_classes=((report, 1.0),),
        arrivals=BatchArrivals(count=count, at=at),
        priority=priority,
        session_attributes=ConnectionAttributes(
            application="report-runner", user="batch", client_ip="10.0.2.2"
        ),
        sessions=2,
    )


def utility_workload(
    name: str = "utilities",
    count: int = 2,
    at: float = 0.0,
    io_seconds: float = 120.0,
    priority: int = 1,
) -> WorkloadSpec:
    """On-line maintenance utilities (backup, reorg) per Parekh et al. [64]."""
    utility = RequestClass(
        name="backup",
        cpu=Constant(io_seconds * 0.2),
        io=Constant(io_seconds),
        memory_mb=Constant(100.0),
        rows=Constant(0.0),
        statement_type=StatementType.UTILITY,
        plan_shape=("read-pages", "write-archive"),
        operator_state_mb=10.0,
    )
    return WorkloadSpec(
        name=name,
        request_classes=((utility, 1.0),),
        arrivals=BatchArrivals(count=count, at=at),
        priority=priority,
        session_attributes=ConnectionAttributes(
            application="maintenance", user="dba", client_ip="10.0.9.9"
        ),
        sessions=1,
    )


def mixed_scenario(
    horizon: float = 300.0,
    oltp_rate: float = 10.0,
    bi_rate: float = 0.08,
    optimizer_error: float = 0.0,
) -> Scenario:
    """The paper's motivating consolidation mix: OLTP + BI + reports."""
    return Scenario(
        specs=(
            oltp_workload(rate=oltp_rate),
            bi_workload(rate=bi_rate),
            report_batch_workload(at=horizon * 0.1),
        ),
        horizon=horizon,
        optimizer_profile=OptimizerProfile(
            error_sigma=optimizer_error, cardinality_sigma=optimizer_error
        ),
    )
