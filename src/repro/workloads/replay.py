"""Trace replay: drive a recorded query stream through another policy.

The cleanest way to compare two workload-management configurations is
on an *identical* request sequence — same costs, same arrival times,
same optimizer estimates.  A :class:`~repro.workloads.traces.QueryLog`
recorded under one configuration can be replayed into a fresh manager
with :func:`schedule_replay`, and :func:`ab_compare` packages the whole
A/B experiment: record under a baseline, replay under a candidate,
return both managers for metric comparison.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.manager import WorkloadManager
from repro.engine.query import Query
from repro.engine.simulator import Simulator
from repro.workloads.traces import QueryLog

ManagerFactory = Callable[[Simulator], WorkloadManager]


def schedule_replay(
    sim: Simulator, manager: WorkloadManager, log: QueryLog
) -> List[Query]:
    """Schedule every logged request for submission at its recorded time.

    Returns the fresh query objects in submission order so the caller
    can inspect individual outcomes afterwards.
    """
    queries = log.replay_queries()
    for query, submit_time in zip(queries, log.arrival_schedule()):
        sim.schedule_at(
            submit_time,
            lambda q=query: manager.submit(q),
            label="replay:submit",
        )
    return queries


def record_run(
    factory: ManagerFactory,
    scenario,
    seed: int = 0,
    drain: Optional[float] = None,
) -> WorkloadManager:
    """Run ``scenario`` under ``factory``'s manager, recording the log."""
    sim = Simulator(seed=seed)
    manager = factory(sim)
    generator = scenario.build(sim, manager.submit, sessions=manager.sessions)
    manager.add_completion_listener(generator.notify_done)
    manager.run(
        scenario.horizon,
        drain=scenario.horizon if drain is None else drain,
    )
    return manager


def ab_compare(
    baseline_factory: ManagerFactory,
    candidate_factory: ManagerFactory,
    scenario,
    seed: int = 0,
    drain: Optional[float] = None,
) -> Tuple[WorkloadManager, WorkloadManager]:
    """Record under the baseline, replay the exact stream under the
    candidate; returns ``(baseline_manager, candidate_manager)``.

    The candidate sees the identical request sequence — including
    requests the baseline rejected or killed (they are replayed as
    fresh submissions, which is the point: a better policy may admit
    them).
    """
    baseline = record_run(baseline_factory, scenario, seed=seed, drain=drain)
    replay_sim = Simulator(seed=seed + 1)  # candidate's own control RNG
    candidate = candidate_factory(replay_sim)
    schedule_replay(replay_sim, candidate, baseline.query_log)
    horizon = scenario.horizon
    candidate.run(horizon, drain=horizon if drain is None else drain)
    return baseline, candidate
