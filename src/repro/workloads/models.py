"""Workload models: cost distributions, request classes, arrival processes.

A :class:`WorkloadSpec` bundles what the paper calls a *workload* — "a
set of requests that have some common characteristics such as
application, source of request, type of query, business priority and/or
performance objectives" (§1) — into a generator-ready description:
request classes with cost distributions, an arrival process (open
Poisson or closed with think time, per Schroeder et al. [70]), session
origin attributes, and a business priority.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.query import CostVector, PlanOperator, QueryPlan, StatementType
from repro.engine.sessions import ConnectionAttributes


# ----------------------------------------------------------------------
# distributions
# ----------------------------------------------------------------------
class Distribution(abc.ABC):
    """A sampleable scalar distribution."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value (used by analytical MPL models)."""


@dataclass(frozen=True)
class Constant(Distribution):
    """Always returns ``value``."""

    value: float

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean (OLTP-ish service demands)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_value))

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Heavy-tailed log-normal (BI/DSS demands).

    Parameterized by the *median* and the log-space sigma, which is the
    natural way to say "typically 60 s, occasionally 10 minutes".
    """

    median: float
    sigma: float
    cap: Optional[float] = None     # optional truncation

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0:
            raise ValueError("median must be > 0 and sigma >= 0")

    def sample(self, rng: np.random.Generator) -> float:
        value = float(self.median * np.exp(rng.normal(0.0, self.sigma)))
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def mean(self) -> float:
        mean = self.median * float(np.exp(self.sigma**2 / 2.0))
        if self.cap is not None:
            mean = min(mean, self.cap)
        return mean


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("high must be >= low")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


# ----------------------------------------------------------------------
# request classes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestClass:
    """A family of similar requests within a workload (paper §2.2 "what").

    ``cpu``/``io`` are distributions of device-seconds; ``memory_mb`` of
    working memory; ``locks`` of exclusive locks taken (0 for read-only
    classes); ``rows`` of result cardinality.  ``plan_shape`` names the
    operators of generated plans (used by progress/suspend machinery).
    """

    name: str
    cpu: Distribution
    io: Distribution
    memory_mb: Distribution = Constant(16.0)
    locks: Distribution = Constant(0.0)
    rows: Distribution = Constant(100.0)
    statement_type: StatementType = StatementType.READ
    plan_shape: Sequence[str] = ("scan", "join", "aggregate")
    operator_state_mb: float = 8.0
    #: database objects this class's queries access ("where" criteria)
    objects: Tuple[str, ...] = ()

    def sample_cost(self, rng: np.random.Generator) -> CostVector:
        """Draw one true cost vector."""
        return CostVector(
            cpu_seconds=max(0.0, self.cpu.sample(rng)),
            io_seconds=max(0.0, self.io.sample(rng)),
            memory_mb=max(0.0, self.memory_mb.sample(rng)),
            lock_count=int(round(max(0.0, self.locks.sample(rng)))),
            rows=int(round(max(0.0, self.rows.sample(rng)))),
        )

    def _plan_template(self):
        """Cached (names, alpha, blocking) for :meth:`sample_plan`.

        The operator names, the Dirichlet alpha vector and the blocking
        flags are properties of the class, not of the draw; rebuilding
        them per query dominated ``sample_plan``.  The cached alpha holds
        the same values as the inline ``np.ones(n) * 2.0`` did, so the
        Dirichlet draw (and the RNG stream) is unchanged.
        """
        cached = self.__dict__.get("_plan_cache")
        if cached is None:
            names = tuple(self.plan_shape) or ("scan",)
            alpha = np.full(len(names), 2.0)
            blocking = tuple(
                name in ("sort", "hash-build", "aggregate") for name in names
            )
            cached = (names, alpha, blocking)
            object.__setattr__(self, "_plan_cache", cached)
        return cached

    def sample_plan(self, rng: np.random.Generator) -> QueryPlan:
        """Draw a plan: the named operators with Dirichlet work split."""
        names, alpha, blocking = self._plan_template()
        fractions = rng.dirichlet(alpha)
        # Normalize defensively against float drift.
        fractions = fractions / fractions.sum()
        state_mb = self.operator_state_mb
        operators = tuple(
            PlanOperator(
                name=name,
                work_fraction=float(fraction),
                state_mb=state_mb,
                blocking=is_blocking,
            )
            for name, fraction, is_blocking in zip(names, fractions, blocking)
        )
        return QueryPlan(operators=operators)


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
class ArrivalProcess(abc.ABC):
    """How a workload's requests arrive over time."""

    @abc.abstractmethod
    def arrival_times(
        self, rng: np.random.Generator, horizon: float
    ) -> List[float]:
        """Pre-draw open-arrival times in [0, horizon); closed processes
        return only the initial submissions and reschedule on completion."""


@dataclass(frozen=True)
class OpenArrivals(ArrivalProcess):
    """Open system: Poisson arrivals at ``rate`` per second.

    Optionally modulated by ``phases`` — (start, rate) pairs that change
    the rate over time (used by the autonomic-loop experiments where the
    mix shifts mid-run).
    """

    rate: float
    phases: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be >= 0")

    def rate_at(self, time: float) -> float:
        rate = self.rate
        for start, phase_rate in self.phases:
            if time >= start:
                rate = phase_rate
        return rate

    def arrival_times(self, rng: np.random.Generator, horizon: float) -> List[float]:
        times: List[float] = []
        now = 0.0
        while True:
            rate = self.rate_at(now)
            if rate <= 0:
                # jump to the next phase boundary, if any
                upcoming = [s for s, _ in self.phases if s > now]
                if not upcoming:
                    break
                now = min(upcoming)
                continue
            now += float(rng.exponential(1.0 / rate))
            if now >= horizon:
                break
            times.append(now)
        return times


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson arrivals (a compressed day).

    The instantaneous rate is ``base_rate * (1 + amplitude *
    sin(2π(t - phase)/period))`` — the diurnal curve every consolidated
    tenant rides.  Arrivals are drawn by thinning a homogeneous Poisson
    stream at the peak rate, which consumes the RNG in a fixed
    (candidate, acceptance) pattern and is therefore exactly as
    seed-deterministic as :class:`OpenArrivals`.
    """

    base_rate: float
    amplitude: float = 0.5
    period: float = 60.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate < 0:
            raise ValueError("base_rate must be >= 0")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def rate_at(self, time: float) -> float:
        return self.base_rate * (
            1.0
            + self.amplitude
            * float(np.sin(2.0 * np.pi * (time - self.phase) / self.period))
        )

    def arrival_times(self, rng: np.random.Generator, horizon: float) -> List[float]:
        peak = self.base_rate * (1.0 + self.amplitude)
        if peak <= 0:
            return []
        times: List[float] = []
        now = 0.0
        while True:
            now += float(rng.exponential(1.0 / peak))
            if now >= horizon:
                break
            if float(rng.random()) * peak < self.rate_at(now):
                times.append(now)
        return times


@dataclass(frozen=True)
class ClosedArrivals(ArrivalProcess):
    """Closed system: ``population`` clients, each resubmitting after a
    think time when its previous request completes [70]."""

    population: int
    think_time: Distribution = Constant(1.0)

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be >= 1")

    def arrival_times(self, rng: np.random.Generator, horizon: float) -> List[float]:
        # Initial submissions only; the generator reschedules on completion.
        return [float(rng.uniform(0.0, 0.05)) for _ in range(self.population)]


@dataclass(frozen=True)
class BatchArrivals(ArrivalProcess):
    """A batch: ``count`` requests all present at ``at`` (report batches)."""

    count: int
    at: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")

    def arrival_times(self, rng: np.random.Generator, horizon: float) -> List[float]:
        if self.at >= horizon:
            return []
        return [self.at] * self.count


# ----------------------------------------------------------------------
# workload specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """A complete, generator-ready workload description."""

    name: str
    request_classes: Sequence[Tuple[RequestClass, float]]  # (class, mix weight)
    arrivals: ArrivalProcess
    priority: int = 1
    session_attributes: ConnectionAttributes = field(
        default_factory=ConnectionAttributes
    )
    sessions: int = 4               # connections the workload spreads over

    def __post_init__(self) -> None:
        if not self.request_classes:
            raise ValueError(f"workload {self.name!r} has no request classes")
        if any(weight <= 0 for _, weight in self.request_classes):
            raise ValueError("mix weights must be positive")

    def _mix_template(self):
        """Cached (classes, mix CDF) for :meth:`pick_class`.

        The CDF is a property of the spec, not of the draw; caching it
        and inverting one uniform draw replaces ``rng.choice``'s
        per-call probability validation and cumsum, which dominated
        ``pick_class``.  The draw is *identical* to
        ``rng.choice(n, p=weights / weights.sum())``: ``Generator.choice``
        with probabilities consumes exactly one ``rng.random()`` and
        right-searches the renormalized CDF, which is what this does
        (``tests/workloads`` pins the equivalence draw-for-draw).
        """
        cached = self.__dict__.get("_mix_cache")
        if cached is None:
            classes = tuple(cls for cls, _ in self.request_classes)
            weights = np.array(
                [w for _, w in self.request_classes], dtype=float
            )
            cdf = (weights / weights.sum()).cumsum()
            cdf /= cdf[-1]
            cached = (classes, cdf)
            object.__setattr__(self, "_mix_cache", cached)
        return cached

    def pick_class(self, rng: np.random.Generator) -> RequestClass:
        """Draw a request class according to the mix weights."""
        classes, cdf = self._mix_template()
        return classes[cdf.searchsorted(rng.random(), side="right")]

    def mean_cost(self) -> CostVector:
        """Mix-weighted mean cost (consumed by analytical MPL models)."""
        weights = np.array([w for _, w in self.request_classes], dtype=float)
        weights = weights / weights.sum()
        cpu = io = mem = locks = rows = 0.0
        for (cls, _), weight in zip(self.request_classes, weights):
            cpu += weight * cls.cpu.mean()
            io += weight * cls.io.mean()
            mem += weight * cls.memory_mb.mean()
            locks += weight * cls.locks.mean()
            rows += weight * cls.rows.mean()
        return CostVector(cpu, io, mem, int(round(locks)), int(round(rows)))
