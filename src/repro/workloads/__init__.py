"""Workload generation: request classes, arrival processes and traces.

The paper's motivating scenario (§1) is a consolidated server running a
*mix* of workload types — short high-priority OLTP transactions next to
long resource-intensive BI queries, plus report batches and maintenance
utilities.  This package synthesizes those mixes deterministically:

* :mod:`repro.workloads.models` — distributions, request classes and
  workload specifications (open Poisson or closed think-time arrivals);
* :mod:`repro.workloads.generator` — drives specs on a simulator and
  provides ready-made OLTP / BI / batch / utility builders;
* :mod:`repro.workloads.traces` — a DBQL-style query log for recording,
  analysis (Teradata Workload Analyzer flavour) and replay.
"""

from repro.workloads.models import (
    Distribution,
    Constant,
    Exponential,
    LogNormal,
    Uniform,
    RequestClass,
    ArrivalProcess,
    OpenArrivals,
    ClosedArrivals,
    BatchArrivals,
    DiurnalArrivals,
    WorkloadSpec,
)
from repro.workloads.generator import (
    WorkloadGenerator,
    Scenario,
    oltp_workload,
    bi_workload,
    report_batch_workload,
    utility_workload,
    mixed_scenario,
)
from repro.workloads.traces import QueryLogRecord, QueryLog

__all__ = [
    "Distribution",
    "Constant",
    "Exponential",
    "LogNormal",
    "Uniform",
    "RequestClass",
    "ArrivalProcess",
    "OpenArrivals",
    "ClosedArrivals",
    "BatchArrivals",
    "DiurnalArrivals",
    "WorkloadSpec",
    "WorkloadGenerator",
    "Scenario",
    "oltp_workload",
    "bi_workload",
    "report_batch_workload",
    "utility_workload",
    "mixed_scenario",
    "QueryLogRecord",
    "QueryLog",
]
