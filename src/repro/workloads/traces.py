"""Query log (DBQL-style) recording, analysis windows, and replay.

Teradata's Workload Analyzer recommends workload definitions "by
analyzing the data of database query log (DBQL)" (paper §4.1.3), and the
dynamic-characterization techniques of §3.1 learn from observed request
streams.  This module provides the log those components consume: an
append-only record of everything that flowed through the manager, with
windowed aggregation for feature extraction and replay support.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.engine.query import CostVector, Query, QueryState, StatementType


@dataclass(frozen=True)
class QueryLogRecord:
    """One DBQL row: what a request was and how it fared."""

    query_id: int
    workload: Optional[str]
    statement_type: StatementType
    priority: int
    submit_time: float
    start_time: Optional[float]
    end_time: Optional[float]
    final_state: QueryState
    estimated_cost: CostVector
    true_cost: CostVector
    session_id: Optional[int]
    sql: str = ""
    plan_operators: int = 1

    @property
    def response_time(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time

    @property
    def completed(self) -> bool:
        return self.final_state is QueryState.COMPLETED

    def as_dict(self) -> dict:
        """JSON-serializable form (see :meth:`QueryLog.to_jsonl`)."""
        return {
            "query_id": self.query_id,
            "workload": self.workload,
            "statement_type": self.statement_type.value,
            "priority": self.priority,
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "final_state": self.final_state.value,
            "estimated_cost": _cost_to_dict(self.estimated_cost),
            "true_cost": _cost_to_dict(self.true_cost),
            "session_id": self.session_id,
            "sql": self.sql,
            "plan_operators": self.plan_operators,
        }

    @staticmethod
    def from_dict(data: dict) -> "QueryLogRecord":
        return QueryLogRecord(
            query_id=int(data["query_id"]),
            workload=data.get("workload"),
            statement_type=StatementType(data["statement_type"]),
            priority=int(data["priority"]),
            submit_time=float(data["submit_time"]),
            start_time=_opt_float(data.get("start_time")),
            end_time=_opt_float(data.get("end_time")),
            final_state=QueryState(data["final_state"]),
            estimated_cost=_cost_from_dict(data["estimated_cost"]),
            true_cost=_cost_from_dict(data["true_cost"]),
            session_id=data.get("session_id"),
            sql=data.get("sql", ""),
            plan_operators=int(data.get("plan_operators", 1)),
        )


def _cost_to_dict(cost: CostVector) -> dict:
    return {
        "cpu_seconds": cost.cpu_seconds,
        "io_seconds": cost.io_seconds,
        "memory_mb": cost.memory_mb,
        "lock_count": cost.lock_count,
        "rows": cost.rows,
    }


def _cost_from_dict(data: dict) -> CostVector:
    return CostVector(
        cpu_seconds=float(data.get("cpu_seconds", 0.0)),
        io_seconds=float(data.get("io_seconds", 0.0)),
        memory_mb=float(data.get("memory_mb", 0.0)),
        lock_count=int(data.get("lock_count", 0)),
        rows=int(data.get("rows", 0)),
    )


def _opt_float(value) -> Optional[float]:
    return None if value is None else float(value)


class QueryLog:
    """Append-only query log with window aggregation and replay."""

    def __init__(self) -> None:
        self._records: List[QueryLogRecord] = []

    def record_query(self, query: Query) -> QueryLogRecord:
        """Append a record snapshotting ``query``'s final disposition."""
        record = QueryLogRecord(
            query_id=query.query_id,
            workload=query.workload_name,
            statement_type=query.statement_type,
            priority=query.priority,
            submit_time=query.submit_time if query.submit_time is not None else 0.0,
            start_time=query.start_time,
            end_time=query.end_time,
            final_state=query.state,
            estimated_cost=query.estimated_cost,
            true_cost=query.true_cost,
            session_id=query.session_id,
            sql=query.sql,
            plan_operators=len(query.plan),
        )
        self._records.append(record)
        return record

    def append(self, record: QueryLogRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(
        self,
        workload: Optional[str] = None,
        completed_only: bool = False,
    ) -> List[QueryLogRecord]:
        """Filtered view of the log."""
        out = []
        for record in self._records:
            if workload is not None and record.workload != workload:
                continue
            if completed_only and not record.completed:
                continue
            out.append(record)
        return out

    # ------------------------------------------------------------------
    # windowed aggregation (feature extraction for characterization)
    # ------------------------------------------------------------------
    def windows(
        self, width: float, horizon: Optional[float] = None
    ) -> List[List[QueryLogRecord]]:
        """Partition records into fixed-width windows by submit time."""
        if width <= 0:
            raise ValueError("window width must be positive")
        if not self._records:
            return []
        end = horizon
        if end is None:
            end = max(r.submit_time for r in self._records) + width
        count = int(np.ceil(end / width))
        buckets: List[List[QueryLogRecord]] = [[] for _ in range(count)]
        for record in self._records:
            index = int(record.submit_time // width)
            if 0 <= index < count:
                buckets[index].append(record)
        return buckets

    def throughput(
        self, width: float, horizon: Optional[float] = None
    ) -> List[float]:
        """Completions per second in each window (by end time)."""
        if width <= 0:
            raise ValueError("window width must be positive")
        completed = [r for r in self._records if r.completed and r.end_time is not None]
        if not completed:
            return []
        end = horizon
        if end is None:
            end = max(r.end_time for r in completed) + width
        count = int(np.ceil(end / width))
        counts = [0] * count
        for record in completed:
            index = int(record.end_time // width)
            if 0 <= index < count:
                counts[index] += 1
        return [c / width for c in counts]

    # ------------------------------------------------------------------
    # serialization (JSON Lines, one record per line)
    # ------------------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> int:
        """Write the log as JSON Lines; returns the record count.

        The format is append-friendly and tool-friendly (``jq``, pandas
        ``read_json(lines=True)``): one self-contained record object per
        line, enum fields as their string values, costs as nested
        objects.  :meth:`from_jsonl` round-trips exactly.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(self._records)

    @staticmethod
    def from_jsonl(path: Union[str, Path]) -> "QueryLog":
        """Load a log written by :meth:`to_jsonl` (blank lines skipped)."""
        log = QueryLog()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                log.append(QueryLogRecord.from_dict(json.loads(line)))
        return log

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay_queries(self) -> List[Query]:
        """Fresh queries replicating the logged stream (same costs/times).

        The caller schedules each at its record's ``submit_time``; useful
        for A/B-ing two policies on an identical request sequence.
        """
        replayed = []
        for record in self._records:
            query = Query(
                true_cost=record.true_cost,
                estimated_cost=record.estimated_cost,
                statement_type=record.statement_type,
                priority=record.priority,
                session_id=record.session_id,
                sql=record.sql,
            )
            replayed.append(query)
        return replayed

    def arrival_schedule(self) -> List[float]:
        """Submit times aligned with :meth:`replay_queries` order."""
        return [record.submit_time for record in self._records]
