"""Canonical sweeps: placement policy × seed grids with a rollup table.

This is the ``python -m repro sweep`` backend — the advisor-style
evaluation loop (WiSeDB trains over thousands of simulated workloads;
scheduling surveys sweep policy × seed grids) run on the deterministic
parallel runtime.  The rollup is computed from results reduced in task
order, so the printed table is byte-identical for any worker count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.placement import POLICY_NAMES
from repro.errors import ConfigurationError
from repro.parallel.runner import Log, SweepResult, run_tasks
from repro.parallel.spec import SweepSpec

DEFAULT_SEEDS = (42, 43, 44)


def policy_sweep_spec(
    policies: Sequence[str] = POLICY_NAMES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    nodes: int = 4,
    horizon: float = 60.0,
    mpl: int = 2,
    oltp_rate: float = 30.0,
    bi_rate: float = 0.3,
    dispatch: str = "push",
) -> SweepSpec:
    """A placement-policy × seed grid over the cluster scenario."""
    unknown = [p for p in policies if p not in POLICY_NAMES]
    if unknown:
        raise ConfigurationError(
            f"unknown placement policies {unknown}; choose from {POLICY_NAMES}"
        )
    return SweepSpec(
        runner="cluster",
        grid={"policy": tuple(policies)},
        seeds=tuple(int(s) for s in seeds),
        base={
            "nodes": nodes,
            "horizon": horizon,
            "mpl": mpl,
            "oltp_rate": oltp_rate,
            "bi_rate": bi_rate,
            "dispatch": dispatch,
        },
    )


def run_policy_sweep(
    policies: Sequence[str] = POLICY_NAMES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: int = 1,
    log: Log = None,
    **scenario_params,
) -> SweepResult:
    """Run the policy × seed grid (parallel when ``workers > 1``)."""
    spec = policy_sweep_spec(policies=policies, seeds=seeds, **scenario_params)
    return run_tasks(spec.tasks(), workers=workers, log=log)


def _fmt(value: Optional[float], width: int = 8) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:{width}.3f}"


def rollup_table(result: SweepResult) -> str:
    """Deterministic ASCII rollup: one row per run, then per-policy
    aggregates.  Built purely from the ordered result list."""
    header = (
        f"{'policy':<18} {'seed':>5} {'done':>6} {'rej':>5} {'resub':>5} "
        f"{'oltp p95':>8} {'bi mean':>8}  digest"
    )
    lines = [header, "-" * len(header)]
    by_policy: Dict[str, List[Dict[str, object]]] = {}
    for value in result.values:
        response = value.get("response", {})
        oltp = response.get("oltp", {}) if isinstance(response, dict) else {}
        bi = response.get("bi", {}) if isinstance(response, dict) else {}
        lines.append(
            f"{str(value['policy']):<18} {value['seed']:>5} "
            f"{value['completed']:>6} {value['rejected']:>5} "
            f"{value['resubmitted']:>5} "
            f"{_fmt(oltp.get('p95'))} {_fmt(bi.get('mean'))}  "
            f"{str(value['digest'])[:12]}…"
        )
        by_policy.setdefault(str(value["policy"]), []).append(value)
    lines.append("-" * len(header))
    for policy in sorted(by_policy):
        runs = by_policy[policy]
        completed = sum(int(v["completed"]) for v in runs)
        rejected = sum(int(v["rejected"]) for v in runs)
        resubmitted = sum(int(v["resubmitted"]) for v in runs)
        p95s = [
            v["response"]["oltp"]["p95"]
            for v in runs
            if isinstance(v.get("response"), dict)
            and v["response"].get("oltp", {}).get("p95") is not None
        ]
        worst = max(p95s) if p95s else None
        lines.append(
            f"{policy + ' (all)':<18} {len(runs):>5} {completed:>6} "
            f"{rejected:>5} {resubmitted:>5} {_fmt(worst)} {_fmt(None)}  "
            f"worst-seed p95"
        )
    return "\n".join(lines)
