"""Outcome digests: the determinism contract made checkable.

Every sweep task returns (among other fields) a SHA-256 ``digest`` over
its full-precision outcome streams.  Two runs are behaviourally
identical iff their digests match, so ``combine`` of the per-task
digests in task-key order is a digest of the whole sweep — and parallel
execution is *verified* (not assumed) to be bit-identical to serial
execution by comparing these.

The helpers here are also what the perf harness commits into
``BENCH_core.json``: :func:`outcome_digest` hashes a single
:class:`~repro.core.manager.WorkloadManager`'s streams,
:func:`dispatcher_digest` a whole cluster run.
"""

from __future__ import annotations

import struct
from hashlib import sha256
from typing import Iterable


def outcome_digest(manager) -> str:
    """SHA-256 over a manager's full-precision outcome streams.

    Covers, in deterministic order: final simulated time, counters, and
    every per-workload outcome list (response times, queue delays,
    velocities, completion times) at full float precision.  Two runs are
    behaviourally identical iff their digests match.
    """
    h = sha256()
    h.update(struct.pack("<d", manager.sim.now))
    h.update(
        struct.pack("<qq", manager.submitted_count, manager.rejected_count)
    )
    for name in sorted(manager.metrics.workloads()):
        stats = manager.metrics.stats_for(name)
        h.update(name.encode("utf-8"))
        h.update(
            struct.pack(
                "<qqqqq",
                stats.completions,
                stats.rejections,
                stats.kills,
                stats.aborts,
                stats.suspensions,
            )
        )
        for series in (
            stats.response_times,
            stats.queue_delays,
            stats.velocities,
            stats.completion_times,
        ):
            h.update(struct.pack("<q", len(series)))
            if series:
                h.update(struct.pack(f"<{len(series)}d", *series))
    return h.hexdigest()


def dispatcher_digest(dispatcher) -> str:
    """SHA-256 over a whole cluster run: every node's outcome streams
    plus the dispatcher's conservation counters and placement counts."""
    h = sha256()
    for node in dispatcher.nodes:
        h.update(outcome_digest(node.manager).encode("ascii"))
    h.update(
        struct.pack(
            "<qqqqq",
            dispatcher.arrivals,
            dispatcher.completions,
            dispatcher.rejections,
            dispatcher.resubmissions,
            dispatcher.metrics.replacements,
        )
    )
    for node in dispatcher.nodes:
        h.update(struct.pack("<q", dispatcher.metrics.placements[node.name]))
    return h.hexdigest()


def combine(digests: Iterable[str]) -> str:
    """Digest-of-digests, order-sensitive.

    This is the sweep-level reduction: feeding per-task digests in
    task-key order makes the combined digest independent of worker
    count and completion order iff every task is bit-deterministic.
    """
    return sha256("".join(digests).encode("ascii")).hexdigest()
