"""Task descriptors for the deterministic sweep runtime.

A :class:`RunTask` is a *picklable description* of one independent
simulation run: a runner (registered task name or ``module:function``
dotted path), a parameter mapping and a seed.  No live simulator,
manager or RNG object ever crosses the process boundary — a worker
rebuilds everything from ``(runner, params, seed)``, which is exactly
what makes parallel execution bit-identical to serial execution.

A :class:`SweepSpec` expands a parameter grid × seed list into an
ordered task list.  The expansion order is deterministic (sorted
parameter names, values and seeds in the given order), and reduction
happens in this task-key order regardless of which worker finishes
first (see :mod:`repro.parallel.runner`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Parameter payload: sorted ``(name, value)`` pairs, hashable + picklable.
Params = Tuple[Tuple[str, object], ...]


def _freeze_params(params: Mapping[str, object]) -> Params:
    return tuple(sorted(params.items()))


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class RunTask:
    """One independent, reproducible simulation run.

    ``key`` uniquely identifies the task inside a sweep and fixes its
    position in the reduced output; two tasks with equal keys may not
    coexist in one sweep.
    """

    key: str
    runner: str
    params: Params = ()
    seed: int = 0
    timeout: Optional[float] = None

    @property
    def kwargs(self) -> Dict[str, object]:
        """The parameter mapping a worker calls the runner with."""
        return dict(self.params)

    def describe(self) -> str:
        parts = [f"{k}={_format_value(v)}" for k, v in self.params]
        parts.append(f"seed={self.seed}")
        return f"{self.runner}({', '.join(parts)})"


def make_task(
    runner: str,
    seed: int = 0,
    key: Optional[str] = None,
    timeout: Optional[float] = None,
    **params: object,
) -> RunTask:
    """Build a single :class:`RunTask` with a derived default key."""
    frozen = _freeze_params(params)
    if key is None:
        bits = [f"{k}={_format_value(v)}" for k, v in frozen]
        bits.append(f"seed={seed}")
        key = f"{runner}[{';'.join(bits)}]"
    return RunTask(
        key=key, runner=runner, params=frozen, seed=int(seed), timeout=timeout
    )


@dataclass(frozen=True)
class SweepSpec:
    """A parameter grid × seed list over one runner.

    Parameters
    ----------
    runner:
        Registered task name (see :mod:`repro.parallel.tasks`) or a
        ``module:function`` dotted path importable in a fresh process.
    grid:
        Swept parameters: name → sequence of values.  The expansion
        iterates sorted parameter names, each value sequence in its
        given order (outer-to-inner), seeds innermost.
    seeds:
        Seed replications per grid point.
    base:
        Fixed parameters forwarded to every run.
    timeout:
        Optional per-task soft timeout in seconds (see the runner).
    """

    runner: str
    grid: Mapping[str, Sequence[object]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    base: Mapping[str, object] = field(default_factory=dict)
    timeout: Optional[float] = None

    def tasks(self) -> List[RunTask]:
        """Expand the grid into the sweep's ordered task list."""
        if not self.seeds:
            raise ConfigurationError("a sweep needs at least one seed")
        names = sorted(self.grid)
        overlap = set(names) & set(self.base)
        if overlap:
            raise ConfigurationError(
                f"parameters both swept and fixed: {sorted(overlap)}"
            )
        tasks: List[RunTask] = []
        value_axes = [self.grid[name] for name in names]
        for combo in itertools.product(*value_axes):
            point = dict(self.base)
            point.update(zip(names, combo))
            for seed in self.seeds:
                tasks.append(
                    make_task(
                        self.runner, seed=seed, timeout=self.timeout, **point
                    )
                )
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("sweep expansion produced duplicate keys")
        return tasks
