"""The deterministic multi-process sweep runner.

Independent seeded runs fan out over a ``ProcessPoolExecutor`` and the
results are reduced **in task-key order**, so the output — values,
rollups and the combined SHA-256 digest — is bit-identical to serial
execution regardless of worker count or completion order.  The
determinism contract:

* tasks are picklable descriptors (:class:`~repro.parallel.spec.RunTask`);
  workers rebuild the simulator from ``(runner, params, seed)`` and no
  live object crosses the process boundary;
* every task is itself seed-deterministic (the library-wide rule);
* reduction order is fixed by the task list, never by completion order.

Operational behaviour layered on top: workers are warm-started (an
initializer pre-imports the task modules), tasks are dispatched in
chunks to amortize IPC, failed shards are retried a bounded number of
times, slow shards are logged as stragglers, shards past their deadline
are abandoned and retried, and when ``workers <= 1`` — or the platform
cannot start a process pool at all — execution falls back to the same
in-process code path the workers run.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ParallelExecutionError
from repro.parallel.digest import combine
from repro.parallel.spec import RunTask
from repro.parallel.tasks import execute_task, runner_module

Log = Optional[Callable[[str], None]]

#: Seconds between straggler/deadline sweeps while waiting on workers.
_POLL_S = 0.25


def _warm_import(modules: Tuple[str, ...]) -> None:
    """Worker initializer: pre-import task modules so the first real
    shard does not pay the import cost inside its timing window."""
    import importlib

    for name in modules:
        try:
            importlib.import_module(name)
        except Exception:  # tolerated: the shard will surface the error
            pass


def _execute_shard(tasks: Tuple[RunTask, ...]) -> List[Dict[str, object]]:
    """Run a shard's tasks sequentially inside one worker.

    A task failure is captured per task so the rest of the shard still
    completes; the parent decides what to retry.
    """
    out: List[Dict[str, object]] = []
    for task in tasks:
        try:
            out.append({"key": task.key, "ok": True, "value": execute_task(task)})
        except Exception as error:
            out.append(
                {
                    "key": task.key,
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                }
            )
    return out


@dataclass
class TaskOutcome:
    """Terminal state of one task after all attempts."""

    task: RunTask
    value: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.value is not None


@dataclass
class SweepResult:
    """Every task outcome, reduced in task order, plus run telemetry."""

    outcomes: List[TaskOutcome]
    workers: int
    wall_s: float
    retried_shards: int = 0
    stragglers: List[str] = field(default_factory=list)
    fell_back_serial: bool = False

    @property
    def values(self) -> List[Dict[str, object]]:
        """Result dicts in task order (failed tasks excluded)."""
        return [o.value for o in self.outcomes if o.value is not None]

    @property
    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def digest(self) -> str:
        """Combined SHA-256 over per-task digests in task-key order."""
        return combine(
            str(o.value.get("digest", "")) if o.value else "<failed>"
            for o in self.outcomes
        )


@dataclass
class _Shard:
    tasks: Tuple[RunTask, ...]
    submitted_at: float
    deadline: Optional[float]
    straggler_logged: bool = False


def _shard_deadline(tasks: Sequence[RunTask], submitted_at: float) -> Optional[float]:
    """A shard has a deadline only when every member task has a timeout
    (they run sequentially, so the budget is the sum)."""
    timeouts = [task.timeout for task in tasks]
    if any(t is None for t in timeouts):
        return None
    return submitted_at + sum(timeouts)  # type: ignore[arg-type]


def default_chunk_size(task_count: int, workers: int) -> int:
    """Small enough to balance load, large enough to amortize IPC."""
    return max(1, task_count // (workers * 4))


def run_tasks(
    tasks: Sequence[RunTask],
    workers: int = 1,
    chunk_size: Optional[int] = None,
    max_retries: int = 2,
    straggler_after: Optional[float] = None,
    mp_context: Optional[str] = None,
    strict: bool = True,
    log: Log = None,
) -> SweepResult:
    """Run every task and reduce the results in task order.

    Parameters
    ----------
    workers:
        Process count; ``<= 1`` runs everything in-process (the serial
        fallback — same code path the workers execute).
    chunk_size:
        Tasks per dispatched shard; defaults to
        :func:`default_chunk_size`.
    max_retries:
        How many extra attempts a failed/timed-out task gets (each
        retry is resubmitted as its own shard).
    straggler_after:
        Log a shard still running after this many wall seconds.
    mp_context:
        Multiprocessing start method; default prefers ``fork`` (cheap,
        inherits warm imports) and falls back to ``spawn``.
    strict:
        Raise :class:`~repro.errors.ParallelExecutionError` if any task
        is still failed after retries; otherwise record the failure.
    """
    tasks = list(tasks)
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        raise ConfigurationError("duplicate task keys in sweep")
    start = time.perf_counter()
    outcomes: Dict[str, TaskOutcome] = {
        task.key: TaskOutcome(task=task) for task in tasks
    }
    result = SweepResult(outcomes=[], workers=max(1, workers), wall_s=0.0)

    if workers <= 1 or len(tasks) <= 1:
        _run_serial(tasks, outcomes, max_retries, log)
    else:
        try:
            _run_pool(
                tasks,
                outcomes,
                result,
                workers=workers,
                chunk_size=chunk_size,
                max_retries=max_retries,
                straggler_after=straggler_after,
                mp_context=mp_context,
                log=log,
            )
        except _PoolUnavailable as reason:
            if log:
                log(f"process pool unavailable ({reason}); running serially")
            result.fell_back_serial = True
            _run_serial(tasks, outcomes, max_retries, log)

    result.outcomes = [outcomes[task.key] for task in tasks]
    result.wall_s = round(time.perf_counter() - start, 3)
    if strict:
        failed = result.failures
        if failed:
            detail = "; ".join(
                f"{o.task.key}: {o.error}" for o in failed[:5]
            )
            raise ParallelExecutionError(
                f"{len(failed)} task(s) failed after retries: {detail}"
            )
    return result


class _PoolUnavailable(Exception):
    """Internal: the platform could not start a process pool."""


def _run_serial(
    tasks: Sequence[RunTask],
    outcomes: Dict[str, TaskOutcome],
    max_retries: int,
    log: Log,
) -> None:
    for task in tasks:
        outcome = outcomes[task.key]
        for attempt in range(1 + max_retries):
            outcome.attempts += 1
            try:
                outcome.value = execute_task(task)
                outcome.error = None
                break
            except Exception as error:
                outcome.error = f"{type(error).__name__}: {error}"
                if log:
                    log(
                        f"task {task.key} failed (attempt {outcome.attempts}): "
                        f"{outcome.error}"
                    )


def _make_pool(
    workers: int, mp_context: Optional[str], modules: Tuple[str, ...]
) -> ProcessPoolExecutor:
    methods = multiprocessing.get_all_start_methods()
    if mp_context is None:
        mp_context = "fork" if "fork" in methods else "spawn"
    if mp_context not in methods:
        raise _PoolUnavailable(f"start method {mp_context!r} not supported")
    try:
        context = multiprocessing.get_context(mp_context)
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_warm_import,
            initargs=(modules,),
        )
    except (NotImplementedError, ImportError, OSError, ValueError) as error:
        raise _PoolUnavailable(str(error)) from error


def _run_pool(
    tasks: Sequence[RunTask],
    outcomes: Dict[str, TaskOutcome],
    result: SweepResult,
    workers: int,
    chunk_size: Optional[int],
    max_retries: int,
    straggler_after: Optional[float],
    mp_context: Optional[str],
    log: Log,
) -> None:
    if chunk_size is None:
        chunk_size = default_chunk_size(len(tasks), workers)
    modules = tuple(sorted({runner_module(task.runner) for task in tasks}))
    pool = _make_pool(workers, mp_context, modules)
    try:
        wave: List[RunTask] = list(tasks)
        shards = [
            tuple(wave[i : i + chunk_size])
            for i in range(0, len(wave), chunk_size)
        ]
        for attempt in range(1 + max_retries):
            failed = _run_wave(
                pool, shards, outcomes, result, straggler_after, log
            )
            if not failed:
                return
            if attempt == max_retries:
                return  # failures stay recorded; strict mode raises above
            result.retried_shards += len(failed)
            if log:
                log(
                    f"retrying {len(failed)} failed task(s), "
                    f"attempt {attempt + 2}/{1 + max_retries}"
                )
            # retries are singleton shards: isolate the failure
            shards = [(task,) for task in failed]
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _run_wave(
    pool: ProcessPoolExecutor,
    shards: Sequence[Tuple[RunTask, ...]],
    outcomes: Dict[str, TaskOutcome],
    result: SweepResult,
    straggler_after: Optional[float],
    log: Log,
) -> List[RunTask]:
    """Dispatch one wave of shards; return the tasks needing a retry."""
    pending: Dict[Future, _Shard] = {}
    failed: List[RunTask] = []
    for tasks in shards:
        for task in tasks:
            outcomes[task.key].attempts += 1
        now = time.perf_counter()
        try:
            future = pool.submit(_execute_shard, tasks)
        except Exception as error:  # pool already broken
            for task in tasks:
                outcomes[task.key].error = f"submit failed: {error}"
                failed.append(task)
            continue
        pending[future] = _Shard(
            tasks=tasks, submitted_at=now, deadline=_shard_deadline(tasks, now)
        )

    while pending:
        done, _ = wait(pending, timeout=_POLL_S, return_when=FIRST_COMPLETED)
        for future in done:
            shard = pending.pop(future)
            error = future.exception()
            if error is not None:
                for task in shard.tasks:
                    outcome = outcomes[task.key]
                    if outcome.value is None:
                        outcome.error = f"{type(error).__name__}: {error}"
                        failed.append(task)
                continue
            for record in future.result():
                outcome = outcomes[str(record["key"])]
                if record["ok"]:
                    outcome.value = record["value"]  # type: ignore[assignment]
                    outcome.error = None
                else:
                    outcome.error = str(record["error"])
                    failed.append(outcome.task)
                    if log:
                        log(f"task {outcome.task.key} failed: {outcome.error}")
        now = time.perf_counter()
        for future, shard in list(pending.items()):
            age = now - shard.submitted_at
            if (
                straggler_after is not None
                and not shard.straggler_logged
                and age > straggler_after
            ):
                shard.straggler_logged = True
                keys = ", ".join(task.key for task in shard.tasks)
                result.stragglers.extend(task.key for task in shard.tasks)
                if log:
                    log(f"straggler: [{keys}] still running after {age:.1f}s")
            if shard.deadline is not None and now > shard.deadline:
                # Abandon the shard: the worker cannot be interrupted,
                # but the tasks are marked timed out and retried on a
                # free worker (bounded by the wave count).
                future.cancel()
                pending.pop(future)
                for task in shard.tasks:
                    outcome = outcomes[task.key]
                    if outcome.value is None:
                        outcome.error = (
                            f"timeout: shard exceeded {age:.1f}s budget"
                        )
                        failed.append(task)
                        if log:
                            log(f"task {task.key} timed out after {age:.1f}s")
    return failed
