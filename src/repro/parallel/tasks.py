"""Task runners: how a worker turns a :class:`RunTask` into a result.

A runner is resolved from the task's ``runner`` string either through
the registry (:func:`register_task` names, e.g. ``"cluster"``) or as a
``module:function`` dotted path imported in the worker process.  Either
way the runner is a plain function ``fn(seed=..., **params) -> dict``
that rebuilds its simulator from scratch — workers share nothing with
the parent but the task descriptor.

Result dicts should be small, picklable and carry a ``digest`` key so
the sweep-level reduction can verify determinism (see
:mod:`repro.parallel.digest`).
"""

from __future__ import annotations

import importlib
import time
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.parallel.spec import RunTask

TaskRunner = Callable[..., Dict[str, object]]

TASK_REGISTRY: Dict[str, TaskRunner] = {}


def register_task(name: str) -> Callable[[TaskRunner], TaskRunner]:
    """Register ``fn`` under a short runner name usable in RunTasks."""

    def decorator(fn: TaskRunner) -> TaskRunner:
        TASK_REGISTRY[name] = fn
        return fn

    return decorator


def resolve_runner(runner: str) -> TaskRunner:
    """Registry name or ``module:function`` dotted path → callable."""
    fn = TASK_REGISTRY.get(runner)
    if fn is not None:
        return fn
    if ":" not in runner:
        raise ConfigurationError(
            f"unknown task runner {runner!r}: not registered and not a "
            "'module:function' path"
        )
    module_name, _, attr = runner.partition(":")
    module = importlib.import_module(module_name)
    fn = getattr(module, attr, None)
    if fn is None:
        raise ConfigurationError(f"{module_name!r} has no attribute {attr!r}")
    return fn


def runner_module(runner: str) -> str:
    """The module a worker must import to execute ``runner`` (warm-up)."""
    if runner in TASK_REGISTRY:
        return TASK_REGISTRY[runner].__module__
    return runner.partition(":")[0]


def execute_task(task: RunTask) -> Dict[str, object]:
    """Run one task in this process; the worker-side entry point.

    The same function executes tasks in serial fallback mode, so the
    parallel and serial paths are one code path by construction.
    """
    fn = resolve_runner(task.runner)
    start = time.perf_counter()
    value = fn(seed=task.seed, **task.kwargs)
    if not isinstance(value, dict):
        raise TypeError(
            f"task runner {task.runner!r} returned {type(value).__name__}, "
            "expected a result dict"
        )
    value = dict(value)
    value.setdefault("task_key", task.key)
    value["task_wall_s"] = round(time.perf_counter() - start, 3)
    return value


# ----------------------------------------------------------------------
# built-in runners
# ----------------------------------------------------------------------
def _percentile(values: List[float], q: float) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[index]


def _summarize_dispatcher(dispatcher) -> Dict[str, object]:
    """Picklable rollup of a finished cluster run.

    Aggregates each workload's response times across all nodes; the
    multiset is order-independent, so sorting makes the reduction
    deterministic regardless of node iteration details.
    """
    from repro.parallel.digest import dispatcher_digest

    by_workload: Dict[str, List[float]] = {}
    for node in dispatcher.nodes:
        metrics = node.manager.metrics
        for workload in metrics.workloads():
            series = metrics.stats_for(workload).response_times
            if series:
                by_workload.setdefault(workload, []).extend(series)
    response: Dict[str, Dict[str, Optional[float]]] = {}
    for workload in sorted(by_workload):
        ordered = sorted(by_workload[workload])
        response[workload] = {
            "count": len(ordered),
            "mean": sum(ordered) / len(ordered),
            "p95": _percentile(ordered, 95.0),
        }
    return {
        "dispatch": dispatcher.dispatch,
        "arrivals": dispatcher.arrivals,
        "completed": dispatcher.completions,
        "rejected": dispatcher.rejections,
        "resubmitted": dispatcher.resubmissions,
        "sim_time": dispatcher.sim.now,
        "events": dispatcher.sim.events_fired,
        "response": response,
        "digest": dispatcher_digest(dispatcher),
    }


@register_task("cluster")
def run_cluster_task(
    seed: int = 42,
    nodes: int = 4,
    policy: str = "cost",
    horizon: float = 60.0,
    drain: Optional[float] = None,
    oltp_rate: float = 30.0,
    bi_rate: float = 0.3,
    mpl: int = 2,
    max_queue_depth: Optional[int] = None,
    dispatch: str = "push",
) -> Dict[str, object]:
    """One seeded cluster run (the EXP18 scenario), summarized.

    Returns conservation counters, cluster-wide per-workload response
    aggregates and the run's :func:`dispatcher digest
    <repro.parallel.digest.dispatcher_digest>` — everything the sweep
    rollup and the determinism check need, nothing that can't pickle.
    """
    from repro.cluster.scenario import run_cluster_scenario

    dispatcher = run_cluster_scenario(
        seed=seed,
        nodes=nodes,
        policy=policy,
        horizon=horizon,
        drain=drain,
        oltp_rate=oltp_rate,
        bi_rate=bi_rate,
        mpl=mpl,
        max_queue_depth=max_queue_depth,
        dispatch=dispatch,
    )
    summary = _summarize_dispatcher(dispatcher)
    summary.update({"seed": seed, "policy": policy, "nodes": nodes})
    return summary


@register_task("scenario")
def run_scenario_task(
    seed: int = 42,
    scenario: str = "noisy_neighbor",
    policy: str = "baseline",
    exclude_noisy: bool = False,
    drain: Optional[float] = None,
) -> Dict[str, object]:
    """One seeded multi-tenant scenario run, summarized.

    ``scenario`` and ``policy`` are matrix names resolved in the worker
    (task descriptors stay picklable primitives); ``exclude_noisy``
    runs the leakage companion — the same scenario with its antagonist
    tenants removed.  The summary dict carries per-tenant conservation
    ledgers, SLA verdicts and the scenario digest.
    """
    from repro.scenarios import get_policy, get_scenario, run_scenario
    from repro.scenarios.runner import summarize_run

    spec = get_scenario(scenario)
    if exclude_noisy:
        spec = spec.without_noisy()
    result = run_scenario(spec, get_policy(policy), seed=seed, drain=drain)
    summary = summarize_run(result)
    summary["exclude_noisy"] = bool(exclude_noisy)
    return summary


@register_task("matcher")
def run_matcher_task(
    seed: int = 42,
    nodes: int = 64,
    dispatch: str = "pull",
    policy: str = "cost",
    horizon: float = 120.0,
    drain: Optional[float] = None,
    mpl: int = 2,
    oltp_rate_per_node: float = 6.0,
    bi_rate: float = 1.0,
    churn: bool = True,
    heterogeneous: bool = True,
) -> Dict[str, object]:
    """One seeded matcher stress run (push vs pull), summarized.

    Same rollup shape as the ``cluster`` task; the sweep-level digest
    combine over these is what the worker-count-stability tests pin.
    """
    from repro.cluster.scenario import run_matcher_scenario

    dispatcher = run_matcher_scenario(
        seed=seed,
        nodes=nodes,
        dispatch=dispatch,
        policy=policy,
        horizon=horizon,
        drain=drain,
        mpl=mpl,
        oltp_rate_per_node=oltp_rate_per_node,
        bi_rate=bi_rate,
        churn=churn,
        heterogeneous=heterogeneous,
    )
    summary = _summarize_dispatcher(dispatcher)
    summary.update({"seed": seed, "policy": policy, "nodes": nodes})
    return summary
