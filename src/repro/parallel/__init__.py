"""Deterministic multi-process experiment runtime.

Our simulations are seed-deterministic and shared-nothing per run —
embarrassingly parallel.  This package supplies the runtime: picklable
task descriptors (:mod:`~repro.parallel.spec`), a process-pool runner
with warm start, chunked dispatch, bounded retry, timeouts and a serial
fallback (:mod:`~repro.parallel.runner`), task-key-ordered reduction
with SHA-256 digest verification (:mod:`~repro.parallel.digest`), and
canonical policy × seed sweeps (:mod:`~repro.parallel.sweep`).

The contract: for any task list, ``run_tasks(tasks, workers=N)``
returns the same ordered values — and the same combined digest — for
every ``N``.  The property suite and ``make bench-parallel`` enforce
it.
"""

from repro.parallel.digest import combine, dispatcher_digest, outcome_digest
from repro.parallel.runner import (
    SweepResult,
    TaskOutcome,
    default_chunk_size,
    run_tasks,
)
from repro.parallel.spec import RunTask, SweepSpec, make_task
from repro.parallel.sweep import (
    DEFAULT_SEEDS,
    policy_sweep_spec,
    rollup_table,
    run_policy_sweep,
)
from repro.parallel.tasks import (
    TASK_REGISTRY,
    execute_task,
    register_task,
    resolve_runner,
)

__all__ = [
    "DEFAULT_SEEDS",
    "RunTask",
    "SweepResult",
    "SweepSpec",
    "TASK_REGISTRY",
    "TaskOutcome",
    "combine",
    "default_chunk_size",
    "dispatcher_digest",
    "execute_task",
    "make_task",
    "outcome_digest",
    "policy_sweep_spec",
    "register_task",
    "resolve_runner",
    "rollup_table",
    "run_policy_sweep",
    "run_tasks",
]
