"""Core of the reproduction: the taxonomy made executable, plus the
workload-management framework that hosts every surveyed technique.

* :mod:`repro.core.taxonomy` — Figure 1 as a data structure;
* :mod:`repro.core.registry` / :mod:`repro.core.classify` — the surveyed
  approaches and systems as feature descriptors, and the rule engine
  that assigns them to taxonomy classes (regenerating Tables 2–5);
* :mod:`repro.core.sla` — performance objectives (§2.1);
* :mod:`repro.core.policy` — management policies and control types (Table 1);
* :mod:`repro.core.metrics` — response time / throughput / velocity;
* :mod:`repro.core.interfaces` — controller plug-in points;
* :mod:`repro.core.manager` — the WorkloadManager pipeline
  (identify → control → execute, with monitoring).
"""

from repro.core.taxonomy import (
    TaxonomyNode,
    TechniqueClass,
    build_taxonomy,
    TAXONOMY,
)
from repro.core.sla import (
    ObjectiveKind,
    PerformanceObjective,
    ServiceLevelAgreement,
    SLASet,
    ObjectiveResult,
)
from repro.core.policy import (
    ControlType,
    Threshold,
    ThresholdKind,
    ThresholdAction,
    ExecutionRule,
    AdmissionPolicy,
    SchedulingPolicy,
    ExecutionPolicy,
    WorkloadManagementPolicy,
)
from repro.core.metrics import MetricsCollector, WorkloadStats, SystemSample
from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    AdmissionOutcome,
    Scheduler,
    ExecutionController,
    Characterizer,
    ManagerContext,
)
from repro.core.manager import WorkloadManager, WorkloadInfo
from repro.core.capacity import (
    CapacityAwareAdmission,
    CapacityEstimate,
    CapacityEstimator,
    SystemState,
)
from repro.core.registry import (
    ApproachDescriptor,
    Feature,
    ADMISSION_APPROACHES,
    EXECUTION_APPROACHES,
    RESEARCH_TECHNIQUES,
    COMMERCIAL_SYSTEMS,
    CONTROL_TYPES,
)
from repro.core.classify import classify_descriptor, classify_component

__all__ = [
    "TaxonomyNode",
    "TechniqueClass",
    "build_taxonomy",
    "TAXONOMY",
    "ObjectiveKind",
    "PerformanceObjective",
    "ServiceLevelAgreement",
    "SLASet",
    "ObjectiveResult",
    "ControlType",
    "Threshold",
    "ThresholdKind",
    "ThresholdAction",
    "ExecutionRule",
    "AdmissionPolicy",
    "SchedulingPolicy",
    "ExecutionPolicy",
    "WorkloadManagementPolicy",
    "MetricsCollector",
    "WorkloadStats",
    "SystemSample",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionOutcome",
    "Scheduler",
    "ExecutionController",
    "Characterizer",
    "ManagerContext",
    "WorkloadManager",
    "WorkloadInfo",
    "ApproachDescriptor",
    "Feature",
    "ADMISSION_APPROACHES",
    "EXECUTION_APPROACHES",
    "RESEARCH_TECHNIQUES",
    "COMMERCIAL_SYSTEMS",
    "CONTROL_TYPES",
    "classify_descriptor",
    "classify_component",
    "CapacityAwareAdmission",
    "CapacityEstimate",
    "CapacityEstimator",
    "SystemState",
]
