"""System capacity estimation (paper §5.2, an identified open problem).

"System capacity estimation is also significant in the workload
management process, as all controls imposed on the end user's requests
are based on the system state.  If the system state of a database
server is overloaded, no requests can be admitted and scheduled, while
some running requests should have their execution slowed down."

This module provides the estimator the paper calls for: a snapshot of
how loaded the server is (per-resource utilization, memory
subscription, lock contention), a three-state classification
(UNDERLOADED / NORMAL / OVERLOADED), and a *headroom* answer to the
question every controller asks — "can this query be admitted while
keeping the system in a normal state?".  The admission gate built on it
(:class:`CapacityAwareAdmission`) is the taxonomy's threshold-based
class with the thresholds derived from the estimate instead of being
manually configured — addressing §5.2's complaint that "a large number
of workload control threshold values must be well understood and set by
the system administrators".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.classify import Feature
from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    ManagerContext,
)
from repro.engine.executor import ExecutionEngine
from repro.engine.query import Query
from repro.engine.resources import ResourceKind


class SystemState(enum.Enum):
    """The three-state load classification of §5.2."""

    UNDERLOADED = "underloaded"
    NORMAL = "normal"
    OVERLOADED = "overloaded"


@dataclass(frozen=True)
class CapacityEstimate:
    """A snapshot of available capacity on the simulated server."""

    state: SystemState
    cpu_utilization: float          # 0..1
    disk_utilization: float         # 0..1
    memory_headroom_mb: float       # can be negative when oversubscribed
    memory_subscription: float      # committed / capacity
    conflict_ratio: float
    bottleneck_utilization: float   # max of cpu/disk utilization

    @property
    def admits_new_work(self) -> bool:
        return self.state is not SystemState.OVERLOADED


class CapacityEstimator:
    """Classifies system state and answers admission headroom queries.

    Thresholds (all overridable):

    * ``overload_memory`` — memory subscription beyond which spill makes
      added work counterproductive (the EXP1 knee's mechanism);
    * ``overload_conflict`` — the critical conflict ratio [56];
    * ``underload_utilization`` — below this bottleneck utilization the
      machine has idle capacity.
    """

    def __init__(
        self,
        overload_memory: float = 1.1,
        overload_conflict: float = 1.5,
        underload_utilization: float = 0.5,
    ) -> None:
        if overload_memory <= 0:
            raise ValueError("overload_memory must be positive")
        self.overload_memory = overload_memory
        self.overload_conflict = overload_conflict
        self.underload_utilization = underload_utilization

    def estimate(self, engine: ExecutionEngine) -> CapacityEstimate:
        """Snapshot the engine's load state."""
        cpu = engine.utilization(ResourceKind.CPU)
        disk = engine.utilization(ResourceKind.DISK)
        bottleneck = max(cpu, disk)
        subscription = engine.memory_pressure()
        headroom = engine.machine.memory_mb * (1.0 - subscription)
        conflict = min(engine.conflict_ratio(), 1e6)

        if subscription > self.overload_memory or conflict > self.overload_conflict:
            state = SystemState.OVERLOADED
        elif bottleneck < self.underload_utilization and subscription < 0.8:
            state = SystemState.UNDERLOADED
        else:
            state = SystemState.NORMAL

        return CapacityEstimate(
            state=state,
            cpu_utilization=cpu,
            disk_utilization=disk,
            memory_headroom_mb=headroom,
            memory_subscription=subscription,
            conflict_ratio=conflict,
            bottleneck_utilization=bottleneck,
        )

    def fits(self, engine: ExecutionEngine, query: Query) -> bool:
        """Would admitting ``query`` keep the system out of overload?

        Uses the *estimated* memory demand (the only pre-execution
        signal a real server has) against the current headroom, plus
        the current state classification.
        """
        snapshot = self.estimate(engine)
        if snapshot.state is SystemState.OVERLOADED:
            return False
        projected = (
            engine.buffer_pool.committed_mb + query.estimated_cost.memory_mb
        ) / max(engine.machine.memory_mb, 1e-9)
        return projected <= self.overload_memory


class CapacityAwareAdmission(AdmissionController):
    """Admission driven by the capacity estimate instead of manual knobs.

    Low-priority requests are delayed while the system is overloaded or
    while their memory demand would push it there; requests at or above
    ``protected_priority`` pass (the §2.3 asymmetry).
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_MONITOR_METRICS,
        }
    )

    def __init__(
        self,
        estimator: Optional[CapacityEstimator] = None,
        protected_priority: int = 3,
    ) -> None:
        self.estimator = estimator or CapacityEstimator()
        self.protected_priority = protected_priority
        self.delays = 0

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        if query.priority >= self.protected_priority:
            return AdmissionDecision.accept("protected priority")
        if self.estimator.fits(context.engine, query):
            snapshot = self.estimator.estimate(context.engine)
            return AdmissionDecision.accept(
                f"fits ({snapshot.state.value}, "
                f"headroom {snapshot.memory_headroom_mb:.0f}MB)"
            )
        self.delays += 1
        snapshot = self.estimator.estimate(context.engine)
        return AdmissionDecision.delay(
            f"insufficient capacity ({snapshot.state.value}, "
            f"subscription {snapshot.memory_subscription:.2f})"
        )
