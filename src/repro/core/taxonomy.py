"""The taxonomy of workload-management techniques (paper Figure 1).

The taxonomy is the paper's central contribution.  We encode it as an
immutable tree of :class:`TaxonomyNode` values so that the rest of the
library can *compute* with it: the classification engine
(:mod:`repro.core.classify`) assigns technique descriptors to leaves,
the reporting package renders the tree, and tests assert structural
invariants (four major classes, the subsonic splits of §3).

Figure 1 structure::

    Workload Management Techniques
    ├── Workload Characterization
    │   ├── Static Characterization
    │   └── Dynamic Characterization
    ├── Admission Control
    │   ├── Threshold-based
    │   └── Prediction-based
    ├── Scheduling
    │   ├── Queue Management
    │   └── Query Restructuring
    └── Execution Control
        ├── Query Reprioritization
        ├── Query Cancellation
        └── Request Suspension
            ├── Request Throttling
            └── Query Suspend-and-Resume
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


class TechniqueClass(enum.Enum):
    """Stable identifiers for every node of the taxonomy.

    The enum value is the node's display name as used in the paper.
    """

    ROOT = "Workload Management Techniques"
    # major classes (§3)
    WORKLOAD_CHARACTERIZATION = "Workload Characterization"
    ADMISSION_CONTROL = "Admission Control"
    SCHEDULING = "Scheduling"
    EXECUTION_CONTROL = "Execution Control"
    # characterization subclasses (§3.1)
    STATIC_CHARACTERIZATION = "Static Characterization"
    DYNAMIC_CHARACTERIZATION = "Dynamic Characterization"
    # admission subclasses (§3.2)
    THRESHOLD_BASED_ADMISSION = "Threshold-based Admission Control"
    PREDICTION_BASED_ADMISSION = "Prediction-based Admission Control"
    # scheduling subclasses (§3.3)
    QUEUE_MANAGEMENT = "Queue Management"
    QUERY_RESTRUCTURING = "Query Restructuring"
    # execution-control subclasses (§3.4)
    QUERY_REPRIORITIZATION = "Query Reprioritization"
    QUERY_CANCELLATION = "Query Cancellation"
    REQUEST_SUSPENSION = "Request Suspension"
    REQUEST_THROTTLING = "Request Throttling"
    SUSPEND_AND_RESUME = "Query Suspend-and-Resume"

    @property
    def display_name(self) -> str:
        return self.value


@dataclass(frozen=True)
class TaxonomyNode:
    """One class in the taxonomy tree."""

    technique_class: TechniqueClass
    description: str
    paper_section: str
    children: Tuple["TaxonomyNode", ...] = ()

    @property
    def name(self) -> str:
        return self.technique_class.display_name

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["TaxonomyNode"]:
        """Depth-first traversal, self first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, technique_class: TechniqueClass) -> Optional["TaxonomyNode"]:
        """Locate a node anywhere under this one."""
        for node in self.walk():
            if node.technique_class is technique_class:
                return node
        return None

    def path_to(self, technique_class: TechniqueClass) -> List["TaxonomyNode"]:
        """Root-to-node path, or [] if absent."""
        if self.technique_class is technique_class:
            return [self]
        for child in self.children:
            below = child.path_to(technique_class)
            if below:
                return [self] + below
        return []

    def leaves(self) -> List["TaxonomyNode"]:
        return [node for node in self.walk() if node.is_leaf]

    def depth_of(self, technique_class: TechniqueClass) -> int:
        """0 for this node, -1 if not present."""
        path = self.path_to(technique_class)
        return len(path) - 1 if path else -1


def build_taxonomy() -> TaxonomyNode:
    """Construct the Figure 1 taxonomy tree."""
    characterization = TaxonomyNode(
        TechniqueClass.WORKLOAD_CHARACTERIZATION,
        "Identifying characteristic classes of a workload in the context "
        "of its properties (costs, resource demands, priorities, "
        "performance requirements).",
        "3.1",
        children=(
            TaxonomyNode(
                TechniqueClass.STATIC_CHARACTERIZATION,
                "Workloads are defined before requests arrive; arriving "
                "requests are differentiated by operational properties and "
                "mapped to workloads with resources allocated by priority.",
                "3.1",
            ),
            TaxonomyNode(
                TechniqueClass.DYNAMIC_CHARACTERIZATION,
                "The type of a workload is identified while it is present "
                "on the server, typically with a machine-learned classifier "
                "built from sample workloads.",
                "3.1",
            ),
        ),
    )
    admission = TaxonomyNode(
        TechniqueClass.ADMISSION_CONTROL,
        "Determines whether or not newly arriving requests can be admitted "
        "into the database system.",
        "3.2",
        children=(
            TaxonomyNode(
                TechniqueClass.THRESHOLD_BASED_ADMISSION,
                "An arriving query is admitted only under the upper limit "
                "of a threshold: a system parameter (query cost, MPL) or a "
                "performance/monitor metric (conflict ratio, throughput, "
                "indicators).",
                "3.2",
            ),
            TaxonomyNode(
                TechniqueClass.PREDICTION_BASED_ADMISSION,
                "Performance behaviour of a query is predicted before it "
                "runs using machine-learned models over pre-execution "
                "properties.",
                "3.2",
            ),
        ),
    )
    scheduling = TaxonomyNode(
        TechniqueClass.SCHEDULING,
        "Sends requests to the execution engine in an order that meets "
        "performance objectives while keeping the system in a normal "
        "(optimal) state.",
        "3.3",
        children=(
            TaxonomyNode(
                TechniqueClass.QUEUE_MANAGEMENT,
                "Execution order of queued requests is determined from "
                "properties (resource demands, priorities, objectives) via "
                "scheduling policies, utility/rank functions, and dynamic "
                "MPL prediction (queueing models, feedback controllers).",
                "3.3",
            ),
            TaxonomyNode(
                TechniqueClass.QUERY_RESTRUCTURING,
                "A query is decomposed into a series of smaller queries or "
                "sub-plans scheduled individually, so short queries are not "
                "stuck behind large ones.",
                "3.3",
            ),
        ),
    )
    suspension = TaxonomyNode(
        TechniqueClass.REQUEST_SUSPENSION,
        "Slowing down a request's execution.",
        "3.4",
        children=(
            TaxonomyNode(
                TechniqueClass.REQUEST_THROTTLING,
                "The running request's process is paused for certain times "
                "(self-imposed sleep), freeing resources without "
                "terminating it.",
                "3.4",
            ),
            TaxonomyNode(
                TechniqueClass.SUSPEND_AND_RESUME,
                "A running query is terminated with its intermediate state "
                "stored, and restarted later from the suspend point.",
                "3.4",
            ),
        ),
    )
    execution = TaxonomyNode(
        TechniqueClass.EXECUTION_CONTROL,
        "Manages the execution of running requests to reduce their "
        "performance impact on concurrently running requests.",
        "3.4",
        children=(
            TaxonomyNode(
                TechniqueClass.QUERY_REPRIORITIZATION,
                "Dynamically adjusting the priority of a query as it runs, "
                "causing resource reallocation (priority aging, "
                "importance-policy-driven allocation).",
                "3.4",
            ),
            TaxonomyNode(
                TechniqueClass.QUERY_CANCELLATION,
                "Killing the process of a running query, immediately "
                "releasing the resources it used.",
                "3.4",
            ),
            suspension,
        ),
    )
    return TaxonomyNode(
        TechniqueClass.ROOT,
        "Techniques for monitoring and controlling work executing on a "
        "database system to use resources efficiently and meet "
        "per-workload performance objectives.",
        "3",
        children=(characterization, admission, scheduling, execution),
    )


#: Singleton taxonomy tree, the library-wide reference for Figure 1.
TAXONOMY: TaxonomyNode = build_taxonomy()


def major_classes() -> List[TaxonomyNode]:
    """The four major technique classes (the paper's first split)."""
    return list(TAXONOMY.children)


def node_for(technique_class: TechniqueClass) -> TaxonomyNode:
    """Look up a node in the singleton taxonomy."""
    node = TAXONOMY.find(technique_class)
    if node is None:  # unreachable while enum and tree agree
        raise KeyError(technique_class)
    return node


def render_tree(root: Optional[TaxonomyNode] = None) -> str:
    """ASCII rendering of the taxonomy (Figure 1)."""
    root = root or TAXONOMY
    lines: List[str] = [root.name]

    def _render(node: TaxonomyNode, prefix: str) -> None:
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            connector = "└── " if last else "├── "
            lines.append(prefix + connector + child.name)
            extension = "    " if last else "│   "
            _render(child, prefix + extension)

    _render(root, "")
    return "\n".join(lines)
