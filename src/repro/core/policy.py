"""Workload-management policies and the three control types (Table 1).

"Policies are the plans of an organization to achieve its objectives"
(§2.1): admission policies say how a request is controlled at arrival,
scheduling policies guide ordering/dispatch, and execution-control
policies define dynamic run-time actions.  This module provides those
policy objects, the threshold/action vocabulary the commercial systems
share (DB2 thresholds, Teradata exception criteria, SQL Server query
governor), and the :class:`ControlType` descriptors that regenerate
Table 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PolicyError


class ControlType(enum.Enum):
    """The three types of controls in a workload-management process."""

    ADMISSION_CONTROL = "Admission Control"
    SCHEDULING = "Scheduling"
    EXECUTION_CONTROL = "Execution Control"

    @property
    def description(self) -> str:
        return _CONTROL_DESCRIPTIONS[self][0]

    @property
    def control_point(self) -> str:
        return _CONTROL_DESCRIPTIONS[self][1]

    @property
    def associated_policy(self) -> str:
        return _CONTROL_DESCRIPTIONS[self][2]


_CONTROL_DESCRIPTIONS: Dict[ControlType, Tuple[str, str, str]] = {
    ControlType.ADMISSION_CONTROL: (
        "Determines whether or not an arriving request can be admitted "
        "into a database system",
        "Upon arrival in the database system",
        "Admission control policies derived from a workload management policy",
    ),
    ControlType.SCHEDULING: (
        "Determines the execution order of requests in batch workloads "
        "or in wait queues",
        "Prior to sending requests to the database execution engine",
        "Scheduling policies derived from a workload management policy",
    ),
    ControlType.EXECUTION_CONTROL: (
        "Manages the execution of running requests to reduce their "
        "performance impact on the other requests running concurrently",
        "During execution of the requests",
        "Execution control policies derived from a workload management policy",
    ),
}


# ----------------------------------------------------------------------
# thresholds and actions (the shared vocabulary of §2.3/§4.1)
# ----------------------------------------------------------------------
class ThresholdKind(enum.Enum):
    """What a threshold is measured against."""

    ESTIMATED_COST = "estimated_cost"          # optimizer total work (s)
    ESTIMATED_ROWS = "estimated_rows"          # optimizer cardinality
    ELAPSED_TIME = "elapsed_time"              # run time so far (s)
    ROWS_RETURNED = "rows_returned"            # actual rows produced
    CPU_TIME = "cpu_time"                      # CPU service consumed (s)
    CONCURRENCY = "concurrency"                # running requests (MPL)
    QUEUE_LENGTH = "queue_length"
    MEMORY_MB = "memory_mb"


class ThresholdAction(enum.Enum):
    """What to do when a threshold is violated (DB2's action list + the
    taxonomy's execution-control repertoire)."""

    REJECT = "reject"
    QUEUE = "queue"
    CONTINUE = "continue"              # collect data, let it run
    STOP_EXECUTION = "stop_execution"  # kill
    KILL_AND_RESUBMIT = "kill_and_resubmit"
    DEMOTE = "demote"                  # priority aging: lower service class
    THROTTLE = "throttle"
    SUSPEND = "suspend"


@dataclass(frozen=True)
class Threshold:
    """An upper limit on some quantity, with an action on violation."""

    kind: ThresholdKind
    limit: float
    action: ThresholdAction
    label: str = ""

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise PolicyError(f"threshold limit must be >= 0, got {self.limit}")

    def violated_by(self, value: Optional[float]) -> bool:
        """True when ``value`` exceeds the limit (None never violates)."""
        if value is None:
            return False
        return value > self.limit

    def describe(self) -> str:
        name = self.label or self.kind.value
        return f"{name} > {self.limit:g} -> {self.action.value}"


@dataclass(frozen=True)
class ExecutionRule:
    """A run-time rule: threshold + the action's parameters.

    ``throttle_factor`` applies to THROTTLE actions; ``demote_to`` names
    the target service class for DEMOTE; ``resubmit_delay`` applies to
    KILL_AND_RESUBMIT.
    """

    threshold: Threshold
    throttle_factor: float = 0.25
    demote_to: Optional[str] = None
    resubmit_delay: float = 30.0
    applies_to_workloads: Optional[Tuple[str, ...]] = None

    def applies_to(self, workload: Optional[str]) -> bool:
        if self.applies_to_workloads is None:
            return True
        return workload in self.applies_to_workloads


# ----------------------------------------------------------------------
# policy bundles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionPolicy:
    """Admission thresholds for one workload (or the whole server).

    ``reject_over_cost`` and ``queue_over_cost`` are estimated-cost
    limits; ``max_concurrency`` is the MPL; ``queue_when_full`` selects
    queueing (True) vs. rejection (False) at the MPL limit; the optional
    ``period_overrides`` map (start, end) time-of-day windows (in
    simulated seconds within a day) to alternate cost limits, per §3.2's
    "different thresholds for various operating periods".
    """

    reject_over_cost: Optional[float] = None
    queue_over_cost: Optional[float] = None
    max_concurrency: Optional[int] = None
    queue_when_full: bool = True
    period_overrides: Tuple[Tuple[float, float, float], ...] = ()
    day_length: float = 86_400.0

    def cost_limit_at(self, time: float) -> Optional[float]:
        """The effective rejection cost limit at simulated ``time``."""
        limit = self.reject_over_cost
        if self.period_overrides:
            time_of_day = time % self.day_length
            for start, end, override in self.period_overrides:
                if start <= time_of_day < end:
                    limit = override
        return limit


@dataclass(frozen=True)
class SchedulingPolicy:
    """How queued requests are ordered and released."""

    discipline: str = "fcfs"            # fcfs | priority | sjf | utility
    max_concurrency: Optional[int] = None
    per_workload_concurrency: Tuple[Tuple[str, int], ...] = ()

    def workload_limit(self, workload: Optional[str]) -> Optional[int]:
        for name, limit in self.per_workload_concurrency:
            if name == workload:
                return limit
        return None


@dataclass(frozen=True)
class ExecutionPolicy:
    """Run-time rules applied by execution controllers."""

    rules: Tuple[ExecutionRule, ...] = ()

    def rules_for(self, workload: Optional[str]) -> List[ExecutionRule]:
        return [rule for rule in self.rules if rule.applies_to(workload)]


@dataclass(frozen=True)
class WorkloadManagementPolicy:
    """The full policy of a server: per-workload and default controls.

    This is the object Table 1's "associated policy" column refers to —
    admission, scheduling and execution policies are *derived from* a
    workload-management policy.
    """

    name: str = "default"
    default_admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    admission_by_workload: Tuple[Tuple[str, AdmissionPolicy], ...] = ()
    scheduling: SchedulingPolicy = field(default_factory=SchedulingPolicy)
    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    def admission_for(self, workload: Optional[str]) -> AdmissionPolicy:
        for name, policy in self.admission_by_workload:
            if name == workload:
                return policy
        return self.default_admission
