"""Classification engine: feature descriptors → taxonomy classes.

This is the taxonomy *applied*, as in the paper's Section 4: given a
machine-readable description of what a technique or system does (an
:class:`~repro.core.registry.ApproachDescriptor`), derive the taxonomy
classes it belongs to.  The reproduced Tables 4 and 5 are outputs of
this engine over the registry, and the expected classifications from
the paper's §4.1.4/§4.2.5 are asserted in the test suite.

Classification rules (from the taxonomy definitions of §3):

* maps requests to workloads with predefined rules → static
  characterization; by learning from samples → dynamic characterization;
* acts at arrival with thresholds → threshold-based admission control;
  with pre-execution performance prediction → prediction-based;
* acts before execution determining order / managing queues → queue
  management; by decomposing queries → query restructuring;
* acts at runtime changing priorities or reallocating resources →
  query reprioritization; terminating without checkpoints → query
  cancellation; pausing → request throttling; terminating *with*
  checkpoints → suspend-and-resume (both suspension subclasses roll up
  to request suspension).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.core.registry import ApproachDescriptor, Feature
from repro.core.taxonomy import TAXONOMY, TechniqueClass


def classify_features(features: Set[Feature]) -> List[TechniqueClass]:
    """Map a feature set to taxonomy leaf classes (ordered by taxonomy)."""
    classes: List[TechniqueClass] = []

    def add(cls: TechniqueClass) -> None:
        if cls not in classes:
            classes.append(cls)

    # --- workload characterization -----------------------------------
    if Feature.MAPS_REQUESTS_TO_WORKLOADS in features:
        if Feature.LEARNS_FROM_SAMPLES in features:
            add(TechniqueClass.DYNAMIC_CHARACTERIZATION)
        if Feature.PREDEFINED_WORKLOAD_RULES in features:
            add(TechniqueClass.STATIC_CHARACTERIZATION)

    # --- admission control --------------------------------------------
    if Feature.ACTS_AT_ARRIVAL in features:
        if Feature.PREDICTS_PERFORMANCE in features:
            add(TechniqueClass.PREDICTION_BASED_ADMISSION)
        if Feature.USES_THRESHOLDS in features:
            add(TechniqueClass.THRESHOLD_BASED_ADMISSION)

    # --- scheduling -----------------------------------------------------
    if Feature.ACTS_BEFORE_EXECUTION in features:
        if (
            Feature.DETERMINES_EXECUTION_ORDER in features
            or Feature.MANAGES_WAIT_QUEUES in features
            or Feature.PREDICTS_MPL in features
        ):
            add(TechniqueClass.QUEUE_MANAGEMENT)
        if Feature.DECOMPOSES_QUERIES in features:
            add(TechniqueClass.QUERY_RESTRUCTURING)

    # --- execution control ----------------------------------------------
    if Feature.ACTS_AT_RUNTIME in features:
        if (
            Feature.CHANGES_RUNNING_PRIORITY in features
            or Feature.REALLOCATES_RESOURCES in features
        ):
            add(TechniqueClass.QUERY_REPRIORITIZATION)
        if Feature.TERMINATES_RUNNING_REQUEST in features:
            if Feature.CHECKPOINTS_STATE in features:
                add(TechniqueClass.SUSPEND_AND_RESUME)
            else:
                add(TechniqueClass.QUERY_CANCELLATION)
        if Feature.PAUSES_RUNNING_REQUEST in features:
            add(TechniqueClass.REQUEST_THROTTLING)

    return _taxonomy_order(classes)


def _taxonomy_order(classes: Iterable[TechniqueClass]) -> List[TechniqueClass]:
    """Stable ordering: depth-first position in the taxonomy tree."""
    order = [node.technique_class for node in TAXONOMY.walk()]
    return sorted(set(classes), key=order.index)


def classify_descriptor(descriptor: ApproachDescriptor) -> List[TechniqueClass]:
    """Taxonomy classes for a registered approach/system."""
    return classify_features(set(descriptor.features))


def major_classes_of(descriptor: ApproachDescriptor) -> List[TechniqueClass]:
    """The *major* classes a descriptor falls under (Table 4's columns)."""
    majors: List[TechniqueClass] = []
    for leaf in classify_descriptor(descriptor):
        path = TAXONOMY.path_to(leaf)
        if len(path) >= 2:
            major = path[1].technique_class
            if major not in majors:
                majors.append(major)
    return majors


def classify_component(component: object) -> List[TechniqueClass]:
    """Classify one of *this library's own* implementation objects.

    Implementation classes declare a ``TECHNIQUE_FEATURES`` attribute
    (an iterable of :class:`Feature`); this lets tests prove that, e.g.,
    our throttling controller classifies into the throttling subclass —
    the taxonomy applied to running code, not just to prose.
    """
    features = getattr(component, "TECHNIQUE_FEATURES", None)
    if features is None:
        features = getattr(type(component), "TECHNIQUE_FEATURES", None)
    if features is None:
        return []
    return classify_features(set(features))


def suspension_superclass(classes: Sequence[TechniqueClass]) -> List[TechniqueClass]:
    """Roll throttling / suspend-and-resume up to Request Suspension."""
    rolled: List[TechniqueClass] = []
    for cls in classes:
        if cls in (
            TechniqueClass.REQUEST_THROTTLING,
            TechniqueClass.SUSPEND_AND_RESUME,
        ):
            cls = TechniqueClass.REQUEST_SUSPENSION
        if cls not in rolled:
            rolled.append(cls)
    return rolled
