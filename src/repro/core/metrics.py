"""Performance-metric collection for workloads and the system.

Monitoring is the third stage of every surveyed facility (DB2's
*monitoring* stage, SQL Server's performance counters, Teradata
Manager's dashboards).  The :class:`MetricsCollector` is the library's
equivalent: it accumulates per-workload outcome statistics (response
times, throughput, velocity, rejections, kills, SLA attainment inputs)
and time-stamped system samples (utilization, memory pressure, conflict
ratio) that indicator-based controls consume.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.sla import ObjectiveKind, ServiceLevelAgreement, SLASet
from repro.engine.query import Query


@dataclass
class WorkloadStats:
    """Accumulated outcomes for one workload."""

    workload: str
    completions: int = 0
    rejections: int = 0
    kills: int = 0
    aborts: int = 0
    suspensions: int = 0
    response_times: List[float] = field(default_factory=list)
    queue_delays: List[float] = field(default_factory=list)
    velocities: List[float] = field(default_factory=list)
    completion_times: List[float] = field(default_factory=list)  # sorted

    # ------------------------------------------------------------------
    def mean_response_time(self) -> Optional[float]:
        if not self.response_times:
            return None
        return float(np.mean(self.response_times))

    def percentile_response_time(self, percentile: float) -> Optional[float]:
        if not self.response_times:
            return None
        return float(np.percentile(self.response_times, percentile))

    def mean_velocity(self) -> Optional[float]:
        if not self.velocities:
            return None
        return float(np.mean(self.velocities))

    def mean_queue_delay(self) -> Optional[float]:
        if not self.queue_delays:
            return None
        return float(np.mean(self.queue_delays))

    def throughput(self, window: float, now: float) -> float:
        """Completions per second over the trailing ``window`` seconds."""
        if window <= 0 or now <= 0:
            return 0.0
        start = max(0.0, now - window)
        # completion_times is kept sorted; count items in (start, now]
        lo = bisect.bisect_right(self.completion_times, start)
        return (len(self.completion_times) - lo) / min(window, now)

    def overall_throughput(self, now: float) -> float:
        return self.completions / now if now > 0 else 0.0

    def measurements(
        self, now: float, percentile: float = 95.0, window: float = 60.0
    ) -> Dict[ObjectiveKind, Optional[float]]:
        """Measurement map consumed by :meth:`ServiceLevelAgreement.evaluate`."""
        return {
            ObjectiveKind.AVERAGE_RESPONSE_TIME: self.mean_response_time(),
            ObjectiveKind.PERCENTILE_RESPONSE_TIME: self.percentile_response_time(
                percentile
            ),
            ObjectiveKind.THROUGHPUT: self.overall_throughput(now),
            ObjectiveKind.VELOCITY: self.mean_velocity(),
        }


@dataclass(frozen=True)
class SystemSample:
    """One monitor observation of system-level state."""

    time: float
    cpu_utilization: float
    disk_utilization: float
    memory_pressure: float
    conflict_ratio: float
    running: int
    queued: int


class MetricsCollector:
    """Accumulates workload outcomes and system samples."""

    def __init__(self) -> None:
        self._stats: Dict[str, WorkloadStats] = {}
        self._samples: List[SystemSample] = []

    # ------------------------------------------------------------------
    # per-workload outcomes
    # ------------------------------------------------------------------
    def stats_for(self, workload: Optional[str]) -> WorkloadStats:
        name = workload or "<unassigned>"
        if name not in self._stats:
            self._stats[name] = WorkloadStats(workload=name)
        return self._stats[name]

    def workloads(self) -> List[str]:
        return list(self._stats)

    def record_completion(self, query: Query, now: float) -> None:
        stats = self.stats_for(query.workload_name)
        stats.completions += 1
        if query.response_time is not None:
            stats.response_times.append(query.response_time)
        if query.queueing_delay is not None:
            stats.queue_delays.append(query.queueing_delay)
        velocity = query.execution_velocity(now)
        if velocity is not None:
            stats.velocities.append(velocity)
        bisect.insort(stats.completion_times, now)

    def record_rejection(self, query: Query) -> None:
        self.stats_for(query.workload_name).rejections += 1

    def record_kill(self, query: Query) -> None:
        self.stats_for(query.workload_name).kills += 1

    def record_abort(self, query: Query) -> None:
        self.stats_for(query.workload_name).aborts += 1

    def record_suspension(self, query: Query) -> None:
        self.stats_for(query.workload_name).suspensions += 1

    # ------------------------------------------------------------------
    # system samples
    # ------------------------------------------------------------------
    def record_sample(self, sample: SystemSample) -> None:
        self._samples.append(sample)

    def samples(self, since: float = 0.0) -> List[SystemSample]:
        return [s for s in self._samples if s.time >= since]

    def latest_sample(self) -> Optional[SystemSample]:
        return self._samples[-1] if self._samples else None

    # ------------------------------------------------------------------
    # SLA evaluation
    # ------------------------------------------------------------------
    def evaluate_sla(
        self, sla: ServiceLevelAgreement, now: float
    ) -> Mapping[ObjectiveKind, Optional[float]]:
        """Measurements for ``sla``'s workload (pass to ``sla.evaluate``)."""
        stats = self.stats_for(sla.workload)
        percentile = 95.0
        for objective in sla.objectives:
            if objective.percentile is not None:
                percentile = objective.percentile
        return stats.measurements(now, percentile=percentile)

    def attainment(self, slas: SLASet, now: float) -> Dict[str, float]:
        """Fraction of objectives met per workload (1.0 = all met).

        Workloads with no data count as attainment 0 for goal-ful SLAs:
        if nothing completed, the goals were certainly not met.
        """
        out: Dict[str, float] = {}
        for sla in slas:
            if not sla.has_goals:
                continue
            results = sla.evaluate(self.evaluate_sla(sla, now))
            met = sum(1 for r in results if r.satisfied)
            out[sla.workload] = met / len(results)
        return out

    def summary_line(self, workload: str, now: float) -> str:
        """Human-readable one-liner used by examples and reports."""
        stats = self.stats_for(workload)
        parts = [
            f"{workload}: n={stats.completions}",
            f"rej={stats.rejections}",
            f"kill={stats.kills}",
        ]
        mean_rt = stats.mean_response_time()
        if mean_rt is not None:
            parts.append(f"rt_avg={mean_rt:.3f}s")
        p95 = stats.percentile_response_time(95.0)
        if p95 is not None:
            parts.append(f"rt_p95={p95:.3f}s")
        velocity = stats.mean_velocity()
        if velocity is not None:
            parts.append(f"vel={velocity:.2f}")
        parts.append(f"xput={stats.overall_throughput(now):.2f}/s")
        return " ".join(parts)
