"""Performance-metric collection for workloads and the system.

Monitoring is the third stage of every surveyed facility (DB2's
*monitoring* stage, SQL Server's performance counters, Teradata
Manager's dashboards).  The :class:`MetricsCollector` is the library's
equivalent: it accumulates per-workload outcome statistics (response
times, throughput, velocity, rejections, kills, SLA attainment inputs)
and time-stamped system samples (utilization, memory pressure, conflict
ratio) that indicator-based controls consume.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.sla import ObjectiveKind, ServiceLevelAgreement, SLASet
from repro.engine.query import Query


@dataclass
class WorkloadStats:
    """Accumulated outcomes for one workload.

    The outcome series are **append-only**: the engine only ever adds
    outcomes, never edits history.  That invariant is what makes the
    streaming accessors cheap — numpy views and reduced statistics are
    cached keyed on series length, so repeated reads between
    completions are O(1), and every cached value is *recomputed* (never
    incrementally updated) when the series grows.  Recomputing keeps
    results bit-identical to the naive compute-on-every-read: an
    incremental running mean would drift from numpy's pairwise
    summation by ulps and break seeded reproducibility.
    """

    workload: str
    completions: int = 0
    rejections: int = 0
    kills: int = 0
    aborts: int = 0
    suspensions: int = 0
    response_times: List[float] = field(default_factory=list)
    queue_delays: List[float] = field(default_factory=list)
    velocities: List[float] = field(default_factory=list)
    completion_times: List[float] = field(default_factory=list)  # non-decreasing
    _cache: Dict[Hashable, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def _array(self, name: str, values: List[float]) -> np.ndarray:
        """Cached ndarray view of a series, rebuilt when it grew."""
        key = ("arr", name)
        arr = self._cache.get(key)
        if arr is None or len(arr) != len(values):  # type: ignore[arg-type]
            arr = np.asarray(values, dtype=float)
            self._cache[key] = arr
        return arr  # type: ignore[return-value]

    def _reduced(
        self,
        name: str,
        values: List[float],
        compute: Callable[[np.ndarray], float],
    ) -> Optional[float]:
        """Cached scalar statistic, recomputed when the series grew."""
        key = ("stat", name)
        hit = self._cache.get(key)
        n = len(values)
        if hit is not None and hit[0] == n:  # type: ignore[index]
            return hit[1]  # type: ignore[index]
        value = compute(self._array(name, values)) if n else None
        self._cache[key] = (n, value)
        return value

    def mean_response_time(self) -> Optional[float]:
        return self._reduced(
            "rt_mean", self.response_times, lambda a: float(np.mean(a))
        )

    def percentile_response_time(self, percentile: float) -> Optional[float]:
        return self._reduced(
            f"rt_p{percentile}",
            self.response_times,
            lambda a: float(np.percentile(a, percentile)),
        )

    def mean_velocity(self) -> Optional[float]:
        return self._reduced(
            "vel_mean", self.velocities, lambda a: float(np.mean(a))
        )

    def mean_queue_delay(self) -> Optional[float]:
        return self._reduced(
            "qd_mean", self.queue_delays, lambda a: float(np.mean(a))
        )

    def throughput(self, window: float, now: float) -> float:
        """Completions per second over the trailing ``window`` seconds."""
        if window <= 0 or now <= 0:
            return 0.0
        start = max(0.0, now - window)
        times = self.completion_times
        # Sliding-window count: remember, per window size, where the
        # last query's window began and advance from there (amortized
        # O(1) for the monotone reads a control loop issues).  A query
        # whose window starts earlier than the last one falls back to a
        # fresh bisect; both paths count items in (start, now] exactly.
        key = ("win", window)
        state = self._cache.get(key)
        n = len(times)
        if state is not None and state[0] <= start and state[1] <= n:  # type: ignore[index]
            lo = state[1]  # type: ignore[index]
            while lo < n and times[lo] <= start:
                lo += 1
        else:
            lo = bisect.bisect_right(times, start)
        self._cache[key] = (start, lo)
        return (n - lo) / min(window, now)

    def overall_throughput(self, now: float) -> float:
        return self.completions / now if now > 0 else 0.0

    def measurements(
        self, now: float, percentile: float = 95.0, window: float = 60.0
    ) -> Dict[ObjectiveKind, Optional[float]]:
        """Measurement map consumed by :meth:`ServiceLevelAgreement.evaluate`."""
        return {
            ObjectiveKind.AVERAGE_RESPONSE_TIME: self.mean_response_time(),
            ObjectiveKind.PERCENTILE_RESPONSE_TIME: self.percentile_response_time(
                percentile
            ),
            ObjectiveKind.THROUGHPUT: self.overall_throughput(now),
            ObjectiveKind.VELOCITY: self.mean_velocity(),
        }


@dataclass(frozen=True)
class SystemSample:
    """One monitor observation of system-level state."""

    time: float
    cpu_utilization: float
    disk_utilization: float
    memory_pressure: float
    conflict_ratio: float
    running: int
    queued: int


class MetricsCollector:
    """Accumulates workload outcomes and system samples."""

    def __init__(self) -> None:
        self._stats: Dict[str, WorkloadStats] = {}
        self._samples: List[SystemSample] = []
        self._sample_times: List[float] = []
        self._samples_monotone = True

    # ------------------------------------------------------------------
    # per-workload outcomes
    # ------------------------------------------------------------------
    def stats_for(self, workload: Optional[str]) -> WorkloadStats:
        name = workload or "<unassigned>"
        if name not in self._stats:
            self._stats[name] = WorkloadStats(workload=name)
        return self._stats[name]

    def workloads(self) -> List[str]:
        return list(self._stats)

    def record_completion(self, query: Query, now: float) -> None:
        stats = self.stats_for(query.workload_name)
        stats.completions += 1
        if query.response_time is not None:
            stats.response_times.append(query.response_time)
        if query.queueing_delay is not None:
            stats.queue_delays.append(query.queueing_delay)
        velocity = query.execution_velocity(now)
        if velocity is not None:
            stats.velocities.append(velocity)
        # Simulated time only moves forward, so completion times arrive
        # in order and a plain append keeps the list sorted — no
        # bisect.insort (which is O(n) per completion) needed.
        times = stats.completion_times
        assert not times or now >= times[-1] - 1e-9, (
            f"completion time went backwards: {now} after {times[-1]}"
        )
        times.append(now)

    def record_rejection(self, query: Query) -> None:
        self.stats_for(query.workload_name).rejections += 1

    def record_kill(self, query: Query) -> None:
        self.stats_for(query.workload_name).kills += 1

    def record_abort(self, query: Query) -> None:
        self.stats_for(query.workload_name).aborts += 1

    def record_suspension(self, query: Query) -> None:
        self.stats_for(query.workload_name).suspensions += 1

    # ------------------------------------------------------------------
    # system samples
    # ------------------------------------------------------------------
    def record_sample(self, sample: SystemSample) -> None:
        if self._sample_times and sample.time < self._sample_times[-1]:
            self._samples_monotone = False
        self._samples.append(sample)
        self._sample_times.append(sample.time)

    def samples(self, since: float = 0.0) -> List[SystemSample]:
        if self._samples_monotone:
            lo = bisect.bisect_left(self._sample_times, since)
            return self._samples[lo:]
        return [s for s in self._samples if s.time >= since]

    def latest_sample(self) -> Optional[SystemSample]:
        return self._samples[-1] if self._samples else None

    # ------------------------------------------------------------------
    # SLA evaluation
    # ------------------------------------------------------------------
    def evaluate_sla(
        self, sla: ServiceLevelAgreement, now: float
    ) -> Mapping[ObjectiveKind, Optional[float]]:
        """Measurements for ``sla``'s workload (pass to ``sla.evaluate``)."""
        stats = self.stats_for(sla.workload)
        percentile = 95.0
        for objective in sla.objectives:
            if objective.percentile is not None:
                percentile = objective.percentile
        return stats.measurements(now, percentile=percentile)

    def attainment(self, slas: SLASet, now: float) -> Dict[str, float]:
        """Fraction of objectives met per workload (1.0 = all met).

        Workloads with no data count as attainment 0 for goal-ful SLAs:
        if nothing completed, the goals were certainly not met.
        """
        out: Dict[str, float] = {}
        for sla in slas:
            if not sla.has_goals:
                continue
            results = sla.evaluate(self.evaluate_sla(sla, now))
            met = sum(1 for r in results if r.satisfied)
            out[sla.workload] = met / len(results)
        return out

    def summary_line(self, workload: str, now: float) -> str:
        """Human-readable one-liner used by examples and reports."""
        stats = self.stats_for(workload)
        parts = [
            f"{workload}: n={stats.completions}",
            f"rej={stats.rejections}",
            f"kill={stats.kills}",
        ]
        mean_rt = stats.mean_response_time()
        if mean_rt is not None:
            parts.append(f"rt_avg={mean_rt:.3f}s")
        p95 = stats.percentile_response_time(95.0)
        if p95 is not None:
            parts.append(f"rt_p95={p95:.3f}s")
        velocity = stats.mean_velocity()
        if velocity is not None:
            parts.append(f"vel={velocity:.2f}")
        parts.append(f"xput={stats.overall_throughput(now):.2f}/s")
        return " ".join(parts)
