"""Service-level agreements and performance objectives (paper §2.1).

Objectives are expressed with the metrics the paper names: *response
time* (averages or percentiles — "x% of queries complete in y time units
or less"), *throughput*, and *request execution velocity* (expected
execution time over actual time in system; ~1 means no delay).  A
:class:`ServiceLevelAgreement` attaches objectives and a business
importance to a workload; an :class:`SLASet` holds the agreements for a
whole server and evaluates them against collected metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import PolicyError


class ObjectiveKind(enum.Enum):
    """The performance metrics objectives can target (§2.1)."""

    AVERAGE_RESPONSE_TIME = "average_response_time"
    PERCENTILE_RESPONSE_TIME = "percentile_response_time"
    THROUGHPUT = "throughput"
    VELOCITY = "velocity"


@dataclass(frozen=True)
class PerformanceObjective:
    """One measurable goal.

    ``target`` is an upper bound for response-time kinds and a lower
    bound for throughput/velocity kinds.  ``percentile`` only applies to
    :attr:`ObjectiveKind.PERCENTILE_RESPONSE_TIME` (e.g. 95.0 for "95% of
    queries complete within target").
    """

    kind: ObjectiveKind
    target: float
    percentile: Optional[float] = None

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise PolicyError("objective target must be positive")
        if self.kind is ObjectiveKind.PERCENTILE_RESPONSE_TIME:
            if self.percentile is None or not 0 < self.percentile < 100:
                raise PolicyError(
                    "percentile objectives need percentile in (0, 100)"
                )
        elif self.percentile is not None:
            raise PolicyError(f"{self.kind.value} objective takes no percentile")
        if self.kind is ObjectiveKind.VELOCITY and self.target > 1.0:
            raise PolicyError("velocity targets cannot exceed 1.0")

    def satisfied_by(self, measured: Optional[float]) -> Optional[bool]:
        """Whether ``measured`` meets the objective (None = no data)."""
        if measured is None:
            return None
        if self.kind in (
            ObjectiveKind.AVERAGE_RESPONSE_TIME,
            ObjectiveKind.PERCENTILE_RESPONSE_TIME,
        ):
            return measured <= self.target
        return measured >= self.target

    def describe(self) -> str:
        if self.kind is ObjectiveKind.AVERAGE_RESPONSE_TIME:
            return f"avg response time <= {self.target:g}s"
        if self.kind is ObjectiveKind.PERCENTILE_RESPONSE_TIME:
            return f"p{self.percentile:g} response time <= {self.target:g}s"
        if self.kind is ObjectiveKind.THROUGHPUT:
            return f"throughput >= {self.target:g}/s"
        return f"velocity >= {self.target:g}"


@dataclass(frozen=True)
class ObjectiveResult:
    """Evaluation of one objective against measurements."""

    objective: PerformanceObjective
    measured: Optional[float]
    satisfied: Optional[bool]

    def describe(self) -> str:
        status = (
            "no data" if self.satisfied is None
            else "MET" if self.satisfied else "MISSED"
        )
        measured = "-" if self.measured is None else f"{self.measured:.3f}"
        return f"{self.objective.describe()} [measured {measured}] {status}"


@dataclass(frozen=True)
class ServiceLevelAgreement:
    """Objectives + business importance for one workload.

    ``importance`` is the business-importance level (§2.1): it orders
    workloads for resource access and drives priority-to-weight mapping.
    Non-goal workloads (paper §2.1) simply carry no objectives.
    """

    workload: str
    objectives: Sequence[PerformanceObjective] = ()
    importance: int = 1

    def __post_init__(self) -> None:
        if self.importance < 1:
            raise PolicyError("importance must be >= 1")

    @property
    def has_goals(self) -> bool:
        return bool(self.objectives)

    def evaluate(
        self, measurements: Mapping[ObjectiveKind, Optional[float]]
    ) -> List[ObjectiveResult]:
        """Evaluate every objective against a measurement map."""
        results = []
        for objective in self.objectives:
            measured = measurements.get(objective.kind)
            results.append(
                ObjectiveResult(
                    objective=objective,
                    measured=measured,
                    satisfied=objective.satisfied_by(measured),
                )
            )
        return results


class SLASet:
    """All SLAs configured on a database server."""

    def __init__(self, agreements: Sequence[ServiceLevelAgreement] = ()) -> None:
        self._by_workload: Dict[str, ServiceLevelAgreement] = {}
        for sla in agreements:
            self.add(sla)

    def add(self, sla: ServiceLevelAgreement) -> None:
        if sla.workload in self._by_workload:
            raise PolicyError(f"duplicate SLA for workload {sla.workload!r}")
        self._by_workload[sla.workload] = sla

    def get(self, workload: Optional[str]) -> Optional[ServiceLevelAgreement]:
        if workload is None:
            return None
        return self._by_workload.get(workload)

    def importance_of(self, workload: Optional[str], default: int = 1) -> int:
        sla = self.get(workload)
        return sla.importance if sla else default

    def workloads(self) -> List[str]:
        return list(self._by_workload)

    def __len__(self) -> int:
        return len(self._by_workload)

    def __iter__(self):
        return iter(self._by_workload.values())


def response_time_sla(
    workload: str,
    average: Optional[float] = None,
    p95: Optional[float] = None,
    importance: int = 1,
    velocity: Optional[float] = None,
) -> ServiceLevelAgreement:
    """Convenience builder for the most common SLA shape."""
    objectives: List[PerformanceObjective] = []
    if average is not None:
        objectives.append(
            PerformanceObjective(ObjectiveKind.AVERAGE_RESPONSE_TIME, average)
        )
    if p95 is not None:
        objectives.append(
            PerformanceObjective(
                ObjectiveKind.PERCENTILE_RESPONSE_TIME, p95, percentile=95.0
            )
        )
    if velocity is not None:
        objectives.append(PerformanceObjective(ObjectiveKind.VELOCITY, velocity))
    return ServiceLevelAgreement(
        workload=workload, objectives=tuple(objectives), importance=importance
    )
