"""Plug-in interfaces between the WorkloadManager and its controllers.

The manager implements the three-stage process of §2 (identify →
control → execute); every technique package plugs into one of four
sockets defined here:

* :class:`Characterizer` — workload identification (§2.2, §3.1);
* :class:`AdmissionController` — the admission decision (§3.2);
* :class:`Scheduler` — wait-queue management and dispatch (§3.3);
* :class:`ExecutionController` — run-time control actions (§3.4).

Controllers receive a :class:`ManagerContext` giving them monitored
access to the engine, metrics, SLAs and policy — the same information a
commercial facility's components share.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.core.metrics import MetricsCollector
from repro.core.policy import WorkloadManagementPolicy
from repro.core.sla import SLASet
from repro.engine.executor import ExecutionEngine
from repro.engine.query import Query
from repro.engine.sessions import SessionRegistry
from repro.engine.simulator import Simulator
from repro.workloads.traces import QueryLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.manager import WorkloadManager


class AdmissionOutcome(enum.Enum):
    """The possible fates of an arriving request (§2.3)."""

    ACCEPT = "accept"      # pass to the scheduler's wait queue(s)
    REJECT = "reject"      # deny with a returned message
    DELAY = "delay"        # hold back; re-evaluated on the next pump


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome plus the reason used in logs/experiments."""

    outcome: AdmissionOutcome
    reason: str = ""

    @staticmethod
    def accept(reason: str = "") -> "AdmissionDecision":
        return AdmissionDecision(AdmissionOutcome.ACCEPT, reason)

    @staticmethod
    def reject(reason: str = "") -> "AdmissionDecision":
        return AdmissionDecision(AdmissionOutcome.REJECT, reason)

    @staticmethod
    def delay(reason: str = "") -> "AdmissionDecision":
        return AdmissionDecision(AdmissionOutcome.DELAY, reason)


@dataclass
class ManagerContext:
    """Shared state handed to every controller."""

    sim: Simulator
    engine: ExecutionEngine
    metrics: MetricsCollector
    slas: SLASet
    policy: WorkloadManagementPolicy
    sessions: SessionRegistry
    query_log: QueryLog
    manager: Optional["WorkloadManager"] = None

    @property
    def now(self) -> float:
        return self.sim.now

    def importance_of(self, workload: Optional[str], default: int = 1) -> int:
        """Business importance for a workload (SLA, else default)."""
        return self.slas.importance_of(workload, default=default)


class Characterizer(abc.ABC):
    """Maps an arriving request to a workload (identification stage)."""

    @abc.abstractmethod
    def identify(self, query: Query, context: ManagerContext) -> Optional[str]:
        """Return the workload name for ``query`` (None = unclassified).

        Implementations may also set ``query.priority`` and
        ``query.service_class`` as commercial facilities do.
        """

    def attach(self, context: ManagerContext) -> None:
        """Called once when plugged into a manager (optional override)."""


class AdmissionController(abc.ABC):
    """Decides whether an identified request may enter the system."""

    @abc.abstractmethod
    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        """Evaluate an arriving request."""

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        """Observe a request leaving the engine (for feedback schemes)."""

    def attach(self, context: ManagerContext) -> None:
        """Called once when plugged into a manager (optional override)."""


class Scheduler(abc.ABC):
    """Owns the wait queue(s) and decides what runs when (§3.3)."""

    @abc.abstractmethod
    def enqueue(self, query: Query, context: ManagerContext) -> None:
        """Accept a request into the wait queue(s)."""

    @abc.abstractmethod
    def next_batch(self, context: ManagerContext) -> List[Query]:
        """Queries to dispatch *now*, in order; [] when none should run.

        Called after every admission, completion and control tick; the
        scheduler enforces its MPLs by returning an empty list.
        """

    @abc.abstractmethod
    def queued_count(self) -> int:
        """Requests currently waiting."""

    def remove(self, query_id: int) -> Optional[Query]:
        """Withdraw a queued request (kill-in-queue); None if absent."""
        return None

    def attach(self, context: ManagerContext) -> None:
        """Called once when plugged into a manager (optional override)."""


class ExecutionController(abc.ABC):
    """Applies run-time control actions to running requests (§3.4)."""

    @abc.abstractmethod
    def control(self, context: ManagerContext) -> None:
        """Inspect running work and act; called every control interval."""

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        """Observe a request leaving the engine (optional override)."""

    def attach(self, context: ManagerContext) -> None:
        """Called once when plugged into a manager (optional override)."""
