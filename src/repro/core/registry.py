"""Structured registry of the surveyed approaches and systems.

Each row of the paper's Tables 2–5 becomes an
:class:`ApproachDescriptor`: a machine-readable statement of *what the
approach does* (its :class:`Feature` set, control point, mechanism
description, citations).  Classification into the taxonomy is **not**
stored here — :mod:`repro.core.classify` derives it from the features,
so the reproduced tables are outputs of the classification engine
rather than transcriptions.

Descriptors also name the module in this library that implements the
approach (``implementation``), giving DESIGN.md's inventory a
machine-checkable form (tests assert every implementation imports).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.policy import ControlType


class Feature(enum.Enum):
    """Mechanism features used to classify techniques (paper §3).

    The classification rules in :mod:`repro.core.classify` map feature
    combinations to taxonomy classes.
    """

    # control points
    ACTS_AT_ARRIVAL = "acts at arrival"
    ACTS_BEFORE_EXECUTION = "acts before execution"
    ACTS_AT_RUNTIME = "acts at runtime"
    # characterization
    MAPS_REQUESTS_TO_WORKLOADS = "maps requests to workloads"
    PREDEFINED_WORKLOAD_RULES = "workloads defined before arrival"
    LEARNS_FROM_SAMPLES = "learns from sample workloads"
    # admission mechanisms
    USES_THRESHOLDS = "compares against thresholds"
    THRESHOLD_ON_SYSTEM_PARAMETER = "thresholds on system parameters"
    THRESHOLD_ON_PERFORMANCE_METRIC = "thresholds on performance metrics"
    THRESHOLD_ON_MONITOR_METRICS = "thresholds on monitor metrics"
    PREDICTS_PERFORMANCE = "predicts per-query performance pre-execution"
    # scheduling mechanisms
    DETERMINES_EXECUTION_ORDER = "determines execution order"
    MANAGES_WAIT_QUEUES = "manages wait queues"
    DECOMPOSES_QUERIES = "decomposes queries into smaller pieces"
    PREDICTS_MPL = "predicts multiprogramming levels"
    # execution-control mechanisms
    CHANGES_RUNNING_PRIORITY = "changes priority of a running request"
    REALLOCATES_RESOURCES = "reallocates resources among running work"
    TERMINATES_RUNNING_REQUEST = "terminates a running request"
    RESUBMITS_AFTER_KILL = "resubmits after kill"
    PAUSES_RUNNING_REQUEST = "pauses a running request"
    CHECKPOINTS_STATE = "checkpoints intermediate state for later resume"
    USES_FEEDBACK_CONTROLLER = "uses a feedback controller"
    USES_UTILITY_FUNCTIONS = "uses utility functions"
    USES_ECONOMIC_MODELS = "uses economic models"
    TRACKS_QUERY_PROGRESS = "tracks query progress"


@dataclass(frozen=True)
class ApproachDescriptor:
    """A surveyed approach/system in machine-readable form."""

    name: str
    citation: str                       # reference keys as in the paper
    mechanism: str                      # Table "description" column text
    features: frozenset
    threshold_basis: str = ""           # Table 2 "type" column
    objective: str = ""                 # Table 5 "objectives" column
    implementation: str = ""            # repro module implementing it
    kind: str = "technique"             # technique | system

    def has(self, feature: Feature) -> bool:
        return feature in self.features


def _descriptor(
    name: str,
    citation: str,
    mechanism: str,
    features: Sequence[Feature],
    **kwargs,
) -> ApproachDescriptor:
    return ApproachDescriptor(
        name=name,
        citation=citation,
        mechanism=mechanism,
        features=frozenset(features),
        **kwargs,
    )


# ----------------------------------------------------------------------
# Table 1 — the three control types
# ----------------------------------------------------------------------
CONTROL_TYPES: Tuple[ControlType, ...] = (
    ControlType.ADMISSION_CONTROL,
    ControlType.SCHEDULING,
    ControlType.EXECUTION_CONTROL,
)


# ----------------------------------------------------------------------
# Table 2 — approaches used for workload admission control
# ----------------------------------------------------------------------
ADMISSION_APPROACHES: Tuple[ApproachDescriptor, ...] = (
    _descriptor(
        "Query Cost",
        "[9] [50] [72]",
        "If an arriving query's estimated cost is greater than the "
        "threshold, the query's admission is denied, otherwise, accepted.",
        [
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_SYSTEM_PARAMETER,
        ],
        threshold_basis="System Parameter",
        implementation="repro.admission.threshold",
    ),
    _descriptor(
        "MPLs",
        "[9] [50] [72]",
        "If the number of concurrently running requests in a database "
        "system has reached the threshold, an arriving request's "
        "admission is denied, otherwise, accepted.",
        [
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_SYSTEM_PARAMETER,
        ],
        threshold_basis="System Parameter",
        implementation="repro.admission.threshold",
    ),
    _descriptor(
        "Conflict Ratio",
        "[56]",
        "If the conflict ratio of transactions in a database system "
        "exceeds the threshold, new transactions are suspended, "
        "otherwise, admitted.",
        [
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_PERFORMANCE_METRIC,
        ],
        threshold_basis="Performance Metric",
        implementation="repro.admission.conflict_ratio",
    ),
    _descriptor(
        "Transaction Throughput",
        "[26]",
        "If the system throughput in the last measurement interval has "
        "increased, more transactions are admitted, otherwise fewer "
        "transactions are admitted.",
        [
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_PERFORMANCE_METRIC,
            Feature.USES_FEEDBACK_CONTROLLER,
        ],
        threshold_basis="Performance Metric",
        implementation="repro.admission.throughput_feedback",
    ),
    _descriptor(
        "Indicators",
        "[79] [80]",
        "If the actual values exceed the pre-defined thresholds, low "
        "priority requests are delayed, otherwise they are admitted.",
        [
            Feature.ACTS_AT_ARRIVAL,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_MONITOR_METRICS,
        ],
        threshold_basis="Monitor Metrics",
        implementation="repro.admission.indicators",
    ),
)

#: Prediction-based admission (discussed in §3.2 though not a Table 2 row).
PREDICTION_ADMISSION: ApproachDescriptor = _descriptor(
    "Prediction-based Admission",
    "[21] [23] [42]",
    "Predict the performance behaviour characteristics of a query "
    "before the query begins running, with machine-learned models over "
    "pre-execution properties.",
    [Feature.ACTS_AT_ARRIVAL, Feature.PREDICTS_PERFORMANCE],
    implementation="repro.admission.prediction",
)


# ----------------------------------------------------------------------
# Table 3 — approaches used for workload execution control
# ----------------------------------------------------------------------
EXECUTION_APPROACHES: Tuple[ApproachDescriptor, ...] = (
    _descriptor(
        "Priority Aging",
        "[9]",
        "Dynamically changes the priority of system resource access for "
        "a request as it runs.",
        [
            Feature.ACTS_AT_RUNTIME,
            Feature.CHANGES_RUNNING_PRIORITY,
            Feature.USES_THRESHOLDS,
        ],
        threshold_basis="Reprioritization",
        implementation="repro.execution.reprioritization",
    ),
    _descriptor(
        "Policy Driven Resource Allocation",
        "[4] [78]",
        "Amounts of shared system resources are dynamically allocated "
        "to concurrent workloads according to the levels of the "
        "workload's business importance.",
        [
            Feature.ACTS_AT_RUNTIME,
            Feature.CHANGES_RUNNING_PRIORITY,
            Feature.REALLOCATES_RESOURCES,
            Feature.USES_UTILITY_FUNCTIONS,
            Feature.USES_ECONOMIC_MODELS,
        ],
        threshold_basis="Reprioritization",
        implementation="repro.execution.economic",
    ),
    _descriptor(
        "Query Kill",
        "[30] [50] [61] [72]",
        "Kills the process of a request as it runs.",
        [Feature.ACTS_AT_RUNTIME, Feature.TERMINATES_RUNNING_REQUEST],
        threshold_basis="Cancellation",
        implementation="repro.execution.cancellation",
    ),
    _descriptor(
        "Query Stop-and-Restart",
        "[10] [12]",
        "Terminates a query when it is running, stores the necessary "
        "intermediate results and restarts the query's execution at a "
        "later time.",
        [
            Feature.ACTS_AT_RUNTIME,
            Feature.TERMINATES_RUNNING_REQUEST,
            Feature.CHECKPOINTS_STATE,
        ],
        threshold_basis="Suspend & Resume",
        implementation="repro.execution.suspend_resume",
    ),
    _descriptor(
        "Request Throttling",
        "[64] [65] [66]",
        "Pauses the process of a request as it runs.",
        [Feature.ACTS_AT_RUNTIME, Feature.PAUSES_RUNNING_REQUEST],
        threshold_basis="Throttling",
        implementation="repro.execution.throttling",
    ),
)


# ----------------------------------------------------------------------
# Table 5 — research techniques (classified in §4.2.5)
# ----------------------------------------------------------------------
RESEARCH_TECHNIQUES: Tuple[ApproachDescriptor, ...] = (
    _descriptor(
        "Niu et al.",
        "[60]",
        "Intercepting arriving queries, acquiring their information, and "
        "determining an execution order",
        [
            Feature.ACTS_AT_ARRIVAL,
            Feature.ACTS_BEFORE_EXECUTION,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_SYSTEM_PARAMETER,
            Feature.DETERMINES_EXECUTION_ORDER,
            Feature.MANAGES_WAIT_QUEUES,
            Feature.USES_UTILITY_FUNCTIONS,
            Feature.PREDICTS_MPL,
        ],
        objective="Achieving a set of service level objectives for "
        "multiple concurrent workloads",
        implementation="repro.scheduling.utility",
    ),
    _descriptor(
        "Parekh et al.",
        "[64]",
        "A self-imposed sleep slows down online utilities; a "
        "Proportional Integral controller determines the amount of "
        "throttling",
        [
            Feature.ACTS_AT_RUNTIME,
            Feature.PAUSES_RUNNING_REQUEST,
            Feature.USES_FEEDBACK_CONTROLLER,
        ],
        objective="Maintaining performance of running workloads at an "
        "acceptable level",
        implementation="repro.execution.throttling",
    ),
    _descriptor(
        "Powley et al.",
        "[65] [66]",
        "A self-imposed sleep slows down large queries; a step function "
        "and a black-box model determine the amount of throttling",
        [
            Feature.ACTS_AT_RUNTIME,
            Feature.PAUSES_RUNNING_REQUEST,
            Feature.USES_FEEDBACK_CONTROLLER,
        ],
        objective="Meeting the service level objectives of high-priority "
        "requests",
        implementation="repro.execution.throttling",
    ),
    _descriptor(
        "Chandramouli et al.",
        "[10]",
        "Query execution is augmented with suspend and resume phases "
        "that are triggered on demand",
        [
            Feature.ACTS_AT_RUNTIME,
            Feature.TERMINATES_RUNNING_REQUEST,
            Feature.CHECKPOINTS_STATE,
        ],
        objective="Achieving high performance for high-priority requests",
        implementation="repro.execution.suspend_resume",
    ),
    _descriptor(
        "Krompass et al.",
        "[39]",
        "Cancelling or reprioritizing low-priority and long-running "
        "queries",
        [
            Feature.ACTS_AT_RUNTIME,
            Feature.TERMINATES_RUNNING_REQUEST,
            Feature.RESUBMITS_AFTER_KILL,
            Feature.CHANGES_RUNNING_PRIORITY,
            Feature.REALLOCATES_RESOURCES,
        ],
        objective="Achieving high performance for high-priority requests",
        implementation="repro.execution.cancellation",
    ),
)


# ----------------------------------------------------------------------
# Table 4 — commercial workload-management systems
# ----------------------------------------------------------------------
COMMERCIAL_SYSTEMS: Tuple[ApproachDescriptor, ...] = (
    _descriptor(
        "IBM DB2 Workload Manager",
        "[30]",
        "Workloads/work classes identify incoming work by source and "
        "type; service classes allocate resources; thresholds detect "
        "exceptions and trigger actions (reject, stop, priority aging).",
        [
            Feature.ACTS_AT_ARRIVAL,
            Feature.ACTS_AT_RUNTIME,
            Feature.MAPS_REQUESTS_TO_WORKLOADS,
            Feature.PREDEFINED_WORKLOAD_RULES,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_SYSTEM_PARAMETER,
            Feature.CHANGES_RUNNING_PRIORITY,
            Feature.REALLOCATES_RESOURCES,
            Feature.TERMINATES_RUNNING_REQUEST,
        ],
        kind="system",
        implementation="repro.systems.db2",
    ),
    _descriptor(
        "Microsoft SQL Server Resource/Query Governor",
        "[50] [51]",
        "Classification functions map sessions to workload groups backed "
        "by resource pools (MIN/MAX); the query governor rejects queries "
        "whose estimated execution time exceeds the cost limit.",
        [
            Feature.ACTS_AT_ARRIVAL,
            Feature.ACTS_AT_RUNTIME,
            Feature.MAPS_REQUESTS_TO_WORKLOADS,
            Feature.PREDEFINED_WORKLOAD_RULES,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_SYSTEM_PARAMETER,
            Feature.REALLOCATES_RESOURCES,
        ],
        kind="system",
        implementation="repro.systems.sqlserver",
    ),
    _descriptor(
        "Teradata Active System Management",
        "[71] [72]",
        "The workload analyzer recommends workload definitions; filters "
        "reject unwanted requests, throttles limit concurrency, and the "
        "regulator monitors exceptions and applies actions (abort).",
        [
            Feature.ACTS_AT_ARRIVAL,
            Feature.ACTS_AT_RUNTIME,
            Feature.MAPS_REQUESTS_TO_WORKLOADS,
            Feature.PREDEFINED_WORKLOAD_RULES,
            Feature.USES_THRESHOLDS,
            Feature.THRESHOLD_ON_SYSTEM_PARAMETER,
            Feature.TERMINATES_RUNNING_REQUEST,
            Feature.REALLOCATES_RESOURCES,
        ],
        kind="system",
        implementation="repro.systems.teradata",
    ),
)


def all_descriptors() -> List[ApproachDescriptor]:
    """Every registered descriptor (used by inventory tests)."""
    return (
        list(ADMISSION_APPROACHES)
        + [PREDICTION_ADMISSION]
        + list(EXECUTION_APPROACHES)
        + list(RESEARCH_TECHNIQUES)
        + list(COMMERCIAL_SYSTEMS)
    )
