"""The WorkloadManager: identify → control → execute, with monitoring.

This is the integration point of the whole library — the equivalent of
DB2 Workload Manager / SQL Server Resource Governor / Teradata ASM in
our simulated server.  Arriving queries are identified (characterizer),
subjected to admission control, queued and dispatched by a scheduler,
run on the execution engine with priority-derived fair-share weights,
and supervised by execution controllers on a periodic control tick.

Every stage is pluggable through the interfaces in
:mod:`repro.core.interfaces`; the defaults (tag characterizer,
accept-all admission, FCFS dispatch with an optional MPL) make an
unconfigured manager behave like a plain DBMS with no workload
management — the baseline of every experiment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    AdmissionOutcome,
    Characterizer,
    ExecutionController,
    ManagerContext,
    Scheduler,
)
from repro.core.metrics import MetricsCollector, SystemSample
from repro.core.policy import WorkloadManagementPolicy
from repro.core.sla import SLASet
from repro.engine.executor import CompletionOutcome, EngineConfig, ExecutionEngine
from repro.engine.query import Query, QueryState
from repro.engine.resources import MachineSpec, ResourceKind
from repro.engine.sessions import SessionRegistry
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.workloads.traces import QueryLog


@dataclass(frozen=True)
class WorkloadInfo:
    """Registration of a workload known to the manager."""

    name: str
    priority: int = 1


class TagCharacterizer(Characterizer):
    """Default identification: parse the generator's ``workload:class`` tag.

    Real identification techniques live in :mod:`repro.characterization`;
    the tag characterizer makes an unconfigured manager usable and is
    also the "oracle" identifier experiments use when identification is
    not the variable under study.
    """

    def identify(self, query: Query, context: ManagerContext) -> Optional[str]:
        if query.workload_name:
            return query.workload_name
        if ":" in query.sql:
            return query.sql.split(":", 1)[0]
        return None


class AcceptAllAdmission(AdmissionController):
    """No admission control (the paper's uncontrolled baseline)."""

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        return AdmissionDecision.accept("no admission control")


class FCFSDispatcher(Scheduler):
    """First-come-first-served dispatch with an optional global MPL.

    ``max_concurrency=None`` dispatches everything immediately — the
    fully uncontrolled baseline that exhibits thrashing under load.
    """

    def __init__(self, max_concurrency: Optional[int] = None) -> None:
        if max_concurrency is not None and max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be >= 1 or None")
        self.max_concurrency = max_concurrency
        # deque: FCFS only pops the head, and list.pop(0) is O(backlog)
        self._queue: Deque[Query] = deque()

    def enqueue(self, query: Query, context: ManagerContext) -> None:
        self._queue.append(query)

    def next_batch(self, context: ManagerContext) -> List[Query]:
        queue = self._queue
        if not queue:
            return []
        batch: List[Query] = []
        limit = self.max_concurrency
        if limit is None:
            batch.extend(queue)
            queue.clear()
            return batch
        running = context.engine.running_count
        while queue and running + len(batch) < limit:
            batch.append(queue.popleft())
        return batch

    def queued_count(self) -> int:
        return len(self._queue)

    def queued_queries(self) -> List[Query]:
        """Snapshot of the wait queue (consumed by monitors/controllers)."""
        return list(self._queue)

    def remove(self, query_id: int) -> Optional[Query]:
        for index, query in enumerate(self._queue):
            if query.query_id == query_id:
                del self._queue[index]
                return query
        return None


WeightFn = Callable[[Query], float]
CompletionListener = Callable[[Query], None]
#: Called when local admission rejects a request.  Returning True means
#: the interceptor took ownership of the query (e.g. a cluster
#: dispatcher re-placing it on another node): the manager then neither
#: finalizes the rejection nor records it.
RejectionInterceptor = Callable[[Query, AdmissionDecision], bool]


class WorkloadManager:
    """Front end of the simulated database server.

    Parameters
    ----------
    sim:
        The simulator everything is scheduled on.
    machine, engine_config:
        Forwarded to a fresh :class:`ExecutionEngine` unless ``engine``
        is given.
    characterizer, admission, scheduler, execution_controllers:
        The pluggable stages; all optional (see class docstring).
    slas, policy:
        Server-level objectives and management policy.
    control_period:
        Seconds between execution-control/monitor ticks.
    weight_fn:
        Maps a dispatched query to its fair-share weight; the default
        uses the query's business priority.
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Optional[MachineSpec] = None,
        engine: Optional[ExecutionEngine] = None,
        engine_config: Optional[EngineConfig] = None,
        characterizer: Optional[Characterizer] = None,
        admission: Optional[AdmissionController] = None,
        scheduler: Optional[Scheduler] = None,
        execution_controllers: Sequence[ExecutionController] = (),
        slas: Optional[SLASet] = None,
        policy: Optional[WorkloadManagementPolicy] = None,
        control_period: float = 1.0,
        weight_fn: Optional[WeightFn] = None,
    ) -> None:
        self.sim = sim
        self.engine = engine or ExecutionEngine(sim, machine, engine_config)
        self.metrics = MetricsCollector()
        self.query_log = QueryLog()
        self.sessions = SessionRegistry()
        self.slas = slas or SLASet()
        self.policy = policy or WorkloadManagementPolicy()
        self.characterizer = characterizer or TagCharacterizer()
        self.admission = admission or AcceptAllAdmission()
        self.scheduler = scheduler or FCFSDispatcher()
        self.execution_controllers = list(execution_controllers)
        self.weight_fn = weight_fn or (lambda q: float(max(q.priority, 1)))
        self.control_period = control_period

        self.context = ManagerContext(
            sim=sim,
            engine=self.engine,
            metrics=self.metrics,
            slas=self.slas,
            policy=self.policy,
            sessions=self.sessions,
            query_log=self.query_log,
            manager=self,
        )
        self._workloads: Dict[str, WorkloadInfo] = {}
        self._delayed: List[Query] = []
        self._listeners: List[CompletionListener] = []
        self._backlog_listeners: List[Callable[[], None]] = []
        self._rejection_interceptor: Optional[RejectionInterceptor] = None
        self._pumping = False
        self.submitted_count = 0
        self.rejected_count = 0

        self.engine.on_exit(self._on_engine_exit)
        for stage in (self.characterizer, self.admission, self.scheduler):
            stage.attach(self.context)
        for controller in self.execution_controllers:
            controller.attach(self.context)
        self._ticker = sim.schedule_periodic(
            control_period, self._tick, label="manager:tick"
        )

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def register_workload(self, name: str, priority: int = 1) -> None:
        """Declare a workload so its priority is known at identification."""
        self._workloads[name] = WorkloadInfo(name=name, priority=priority)

    def workload_priority(self, name: Optional[str]) -> int:
        if name and name in self._workloads:
            return self._workloads[name].priority
        sla = self.slas.get(name)
        return sla.importance if sla else 1

    def add_execution_controller(self, controller: ExecutionController) -> None:
        controller.attach(self.context)
        self.execution_controllers.append(controller)

    def add_completion_listener(self, listener: CompletionListener) -> None:
        """Called for every client-visible terminal outcome."""
        self._listeners.append(listener)

    def add_backlog_listener(self, listener: Callable[[], None]) -> None:
        """Called whenever :meth:`outstanding_work` may have changed.

        Every change to the backlog (queued + running) funnels through
        request intake, engine exits, delayed-admission retries or queue
        evacuation, so those four paths fire the listeners.  A cluster
        dispatcher uses this to notice saturation edge crossings without
        re-scanning node state on every placement.
        """
        self._backlog_listeners.append(listener)

    def _backlog_changed(self) -> None:
        for listener in self._backlog_listeners:
            listener()

    def set_rejection_interceptor(
        self, interceptor: Optional[RejectionInterceptor]
    ) -> None:
        """Install a hook consulted before any rejection is finalized.

        A cluster-level dispatcher uses this to reclaim requests this
        server turns away and re-place them on another node; the local
        manager records nothing for intercepted rejections.
        """
        self._rejection_interceptor = interceptor

    def _reject(self, query: Query, decision: AdmissionDecision) -> bool:
        """Finalize a rejection unless an interceptor takes the query.

        Returns True when the rejection stuck locally.
        """
        if self._rejection_interceptor is not None and self._rejection_interceptor(
            query, decision
        ):
            return False
        query.transition(QueryState.REJECTED)
        query.end_time = self.sim.now
        self.rejected_count += 1
        self.metrics.record_rejection(query)
        self.query_log.record_query(query)
        self._notify(query)
        return True

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def submit(self, query: Query) -> AdmissionDecision:
        """A request arrives at the database server."""
        query.transition(QueryState.SUBMITTED)
        if query.submit_time is None:
            query.submit_time = self.sim.now
        self.submitted_count += 1

        workload = self.characterizer.identify(query, self.context)
        if workload is not None:
            query.workload_name = workload
            registered = self._workloads.get(workload)
            if registered is not None:
                query.priority = registered.priority
            else:
                sla = self.slas.get(workload)
                if sla is not None:
                    query.priority = sla.importance

        decision = self.admission.decide(query, self.context)
        if decision.outcome is AdmissionOutcome.REJECT:
            self._reject(query, decision)
        elif decision.outcome is AdmissionOutcome.DELAY:
            query.transition(QueryState.QUEUED)
            self._delayed.append(query)
            if self._backlog_listeners:
                self._backlog_changed()
        else:
            query.transition(QueryState.QUEUED)
            self.scheduler.enqueue(query, self.context)
            # listeners see the grown backlog before pump, whose
            # callbacks (synchronous completions) may read it
            if self._backlog_listeners:
                self._backlog_changed()
            self.pump()
        return decision

    def resubmit(self, query: Query, delay: float = 0.0) -> None:
        """Schedule a killed/aborted query to re-enter the server."""
        self.sim.schedule(delay, lambda: self.submit(query), label="resubmit")

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Drain the scheduler's dispatchable requests into the engine."""
        if self._pumping:
            return
        self._pumping = True
        # A dispatch burst happens at one instant: coalesce the
        # per-start fair-share reallocations into a single solve.  The
        # batch brackets are called directly (not via the
        # ``reallocation_batch`` contextmanager) because pump runs on
        # every submit and every engine exit.
        engine = self.engine
        engine._batch_enter()
        try:
            for _ in range(10_000):  # safety bound against livelock
                batch = self.scheduler.next_batch(self.context)
                if not batch:
                    break
                for query in batch:
                    engine.start(query, weight=self.weight_fn(query))
        finally:
            engine._batch_exit()
            self._pumping = False

    def _retry_delayed(self) -> None:
        if not self._delayed:
            return
        pending, self._delayed = self._delayed, []
        # the held queries just left the backlog; re-entries below ping
        # again, so listeners never observe a state they weren't told of
        if self._backlog_listeners:
            self._backlog_changed()
        for query in pending:
            decision = self.admission.decide(query, self.context)
            if decision.outcome is AdmissionOutcome.REJECT:
                self._reject(query, decision)
            elif decision.outcome is AdmissionOutcome.DELAY:
                self._delayed.append(query)
                if self._backlog_listeners:
                    self._backlog_changed()
            else:
                self.scheduler.enqueue(query, self.context)
                if self._backlog_listeners:
                    self._backlog_changed()
                # Dispatch immediately so the next decision in this
                # sweep sees the updated running count — otherwise an
                # MPL gate would admit the whole backlog at once.
                self.pump()
        self.pump()

    # ------------------------------------------------------------------
    # engine feedback
    # ------------------------------------------------------------------
    def _on_engine_exit(self, query: Query, outcome: CompletionOutcome) -> None:
        # The engine already removed the query from the running set:
        # backlog listeners must observe that before the completion
        # listeners below can act on (and read through) this manager.
        if self._backlog_listeners:
            self._backlog_changed()
        if outcome is CompletionOutcome.COMPLETED:
            self.metrics.record_completion(query, self.sim.now)
            self.query_log.record_query(query)
            self._notify(query)
        elif outcome is CompletionOutcome.KILLED:
            self.metrics.record_kill(query)
            self.query_log.record_query(query)
            self._notify(query)
        elif outcome is CompletionOutcome.ABORTED:
            self.metrics.record_abort(query)
            backoff = 0.05 * (2 ** min(query.restarts, 6))
            query.restarts += 1
            self.resubmit(query, delay=backoff)
        elif outcome is CompletionOutcome.SUSPENDED:
            self.metrics.record_suspension(query)
        self.admission.notify_exit(query, self.context)
        for controller in self.execution_controllers:
            controller.notify_exit(query, self.context)
        # Retry DELAYed admissions immediately: a departure is exactly
        # when an MPL/indicator gate may reopen.
        self._retry_delayed()
        self.pump()
        if self._backlog_listeners:
            self._backlog_changed()

    def _notify(self, query: Query) -> None:
        for listener in list(self._listeners):
            listener(query)

    # ------------------------------------------------------------------
    # periodic control tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        sample = SystemSample(
            time=self.sim.now,
            cpu_utilization=self.engine.utilization(ResourceKind.CPU),
            disk_utilization=self.engine.utilization(ResourceKind.DISK),
            memory_pressure=self.engine.memory_pressure(),
            conflict_ratio=self.engine.conflict_ratio(),
            running=self.engine.running_count,
            queued=self.queued_count,
        )
        self.metrics.record_sample(sample)
        for controller in self.execution_controllers:
            controller.control(self.context)
        self._retry_delayed()
        self.pump()

    # ------------------------------------------------------------------
    # introspection / teardown
    # ------------------------------------------------------------------
    @property
    def queued_count(self) -> int:
        return self.scheduler.queued_count() + len(self._delayed)

    @property
    def running_count(self) -> int:
        return self.engine.running_count

    def outstanding_work(self) -> int:
        return self.queued_count + self.running_count

    def evacuate_queued(self) -> List[Query]:
        """Withdraw every waiting request (wait queue + delayed holds).

        Used when this server crashes or drains abruptly: the withdrawn
        queries are returned still in QUEUED state so a cluster
        dispatcher can re-place them on surviving nodes.  Running work
        is untouched.
        """
        evacuated: List[Query] = []
        snapshot = getattr(self.scheduler, "queued_queries", None)
        if snapshot is not None:
            for query in snapshot():
                removed = self.scheduler.remove(query.query_id)
                if removed is not None:
                    evacuated.append(removed)
        evacuated.extend(self._delayed)
        self._delayed.clear()
        if self._backlog_listeners:
            self._backlog_changed()
        return evacuated

    def shutdown(self) -> None:
        """Stop the periodic tick so the simulator can drain."""
        self._ticker.stop()

    def resume_ticks(self) -> None:
        """Re-arm the periodic control tick after :meth:`shutdown`.

        Used when a crashed/drained node is brought back into service.
        """
        self._ticker.stop()
        self._ticker = self.sim.schedule_periodic(
            self.control_period, self._tick, label="manager:tick"
        )

    def run(
        self,
        horizon: float,
        drain: float = 0.0,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the simulation to ``horizon`` plus a drain window.

        The observation ends at ``horizon + drain``: work still running
        then stays unfinished (and unrecorded), exactly as a real
        measurement window would leave it.  A fixed endpoint also
        guarantees termination even though controllers keep periodic
        processes armed.  ``max_events`` bounds the event count; hitting
        it raises :class:`~repro.errors.SimulationBudgetExceeded` rather
        than silently truncating the run.
        """
        self.sim.run_until(horizon + drain, max_events=max_events)
        self.shutdown()
