"""Command-line interface: the paper's artifacts from your terminal.

Usage::

    python -m repro figure                 # Figure 1 (add --annotate)
    python -m repro tables [1..5|all]      # regenerate the tables
    python -m repro demo [--seed N]        # run the mixed-workload demo
    python -m repro cluster --nodes 4 --policy cost   # multi-node demo
    python -m repro sweep --workers 4      # parallel policy × seed sweep
    python -m repro scenario run --name noisy_neighbor --policy baseline
    python -m repro scenario report        # the survival matrix
    python -m repro classify F1 F2 ...     # classify a feature set
    python -m repro features               # list classification features
    python -m repro backend run            # execute a plan on a real DBMS
    python -m repro backend calibrate --trace-in t.jsonl   # fit cost model
    python -m repro backend compare        # sim-vs-real metric deltas

The CLI is intentionally thin — every command is one public-API call —
so it doubles as living documentation of the library's entry points.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.reporting.figures import render_figure1

    print(render_figure1(annotate_descriptions=args.annotate))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.reporting import tables

    renderers = {
        "1": tables.render_table1,
        "2": tables.render_table2,
        "3": tables.render_table3,
        "4": tables.render_table4,
        "5": tables.render_table5,
    }
    if args.which == "all":
        print(tables.all_tables())
    else:
        print(renderers[args.which]())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import MachineSpec, Simulator, WorkloadManager, mixed_scenario

    sim = Simulator(seed=args.seed)
    manager = WorkloadManager(
        sim,
        machine=MachineSpec(cpu_capacity=4.0, disk_capacity=2.0, memory_mb=2048.0),
    )
    scenario = mixed_scenario(horizon=args.horizon)
    generator = scenario.build(sim, manager.submit, sessions=manager.sessions)
    manager.add_completion_listener(generator.notify_done)
    print(
        f"Running {args.horizon:.0f}s of consolidated OLTP+BI+reports "
        f"(seed {args.seed})..."
    )
    manager.run(scenario.horizon, drain=args.horizon)
    for workload in sorted(manager.metrics.workloads()):
        print(" ", manager.metrics.summary_line(workload, sim.now))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import FaultPlan, run_cluster_scenario
    from repro.reporting.figures import ascii_cluster_timeline

    plan = None
    if args.kill_node is not None:
        plan = FaultPlan.node_kill(
            args.kill_node, at=args.kill_at, recover_at=args.recover_at
        )
    print(
        f"Dispatching OLTP+BI across {args.nodes} nodes "
        f"({args.policy} placement, {args.dispatch} dispatch, "
        f"seed {args.seed}, {args.horizon:.0f}s horizon)"
        + (f", killing {args.kill_node} at t={args.kill_at:.0f}s" if plan else "")
        + "..."
    )
    dispatcher = run_cluster_scenario(
        seed=args.seed,
        nodes=args.nodes,
        policy=args.policy,
        horizon=args.horizon,
        fault_plan=plan,
        dispatch=args.dispatch,
    )
    now = dispatcher.sim.now
    print()
    print(dispatcher.metrics.rollup_table(now))
    print()
    lanes = dispatcher.metrics.timeline_lanes(now)
    print(ascii_cluster_timeline(lanes, now))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.parallel import rollup_table, run_policy_sweep

    policies = (
        list(args.policies.split(","))
        if args.policies != "all"
        else ["round-robin", "least", "cost", "sla"]
    )
    seeds = args.seeds
    print(
        f"Sweeping {len(policies)} placement polic"
        f"{'y' if len(policies) == 1 else 'ies'} × {len(seeds)} seeds "
        f"({len(policies) * len(seeds)} runs, {args.workers} worker"
        f"{'' if args.workers == 1 else 's'}, {args.nodes} nodes, "
        f"{args.horizon:.0f}s horizon)..."
    )
    result = run_policy_sweep(
        policies=policies,
        seeds=seeds,
        workers=args.workers,
        nodes=args.nodes,
        horizon=args.horizon,
        mpl=args.mpl,
        dispatch=args.dispatch,
    )
    print()
    print(rollup_table(result))
    print()
    print(
        f"{len(result.outcomes)} runs in {result.wall_s:.2f}s wall "
        f"({result.workers} workers"
        + (", serial fallback" if result.fell_back_serial else "")
        + f"); sweep digest {result.digest[:16]}…"
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    try:
        if args.verb == "list":
            return _scenario_list()
        if args.verb == "run":
            return _scenario_run(args)
        if args.verb == "sweep":
            return _scenario_sweep(args)
        return _scenario_report(args)
    except ConfigurationError as error:
        print(f"scenario error: {error}", file=sys.stderr)
        return 2


def _scenario_list() -> int:
    from repro.scenarios import MATRIX_POLICIES, MATRIX_SCENARIOS

    print("Scenarios:")
    for spec in MATRIX_SCENARIOS:
        chaos = " [chaos]" if spec.chaos.active else ""
        noisy = " [noisy]" if spec.has_noisy else ""
        print(
            f"  {spec.name:<16} {len(spec.tenants)} tenants, "
            f"{spec.nodes} nodes, {spec.horizon:.0f}s{chaos}{noisy} "
            f"— {spec.description}"
        )
    print("Policies:")
    for policy in MATRIX_POLICIES:
        print(f"  {policy.name:<16} {policy.describe()}")
    return 0


def _scenario_run(args: argparse.Namespace) -> int:
    from repro.reporting.survival import render_scenario_detail
    from repro.scenarios import (
        get_policy,
        get_scenario,
        load_scenario_file,
        run_scenario,
        summarize_run,
    )

    if args.spec:
        spec = load_scenario_file(args.spec)
    else:
        spec = get_scenario(args.name)
    if args.exclude_noisy:
        spec = spec.without_noisy()
    policy = get_policy(args.policy)
    print(
        f"Running scenario {spec.name!r} under policy {policy.name!r} "
        f"({policy.describe()}, seed {args.seed}, "
        f"{spec.horizon:.0f}s horizon, {spec.nodes} nodes)..."
    )
    result = run_scenario(spec, policy, seed=args.seed)
    summary = summarize_run(result)
    print()
    print(render_scenario_detail(summary, {}))
    print()
    print(f"digest {summary['digest']}")
    return 0


def _scenario_sweep(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.scenarios import run_scenario_matrix

    scenarios = args.scenarios.split(",") if args.scenarios else None
    policies = args.policies.split(",") if args.policies else None
    result = run_scenario_matrix(
        scenarios=scenarios,
        policies=policies,
        seeds=args.seeds,
        workers=args.workers,
    )
    header = (
        f"{'scenario':<16} {'policy':<16} {'companion':>9} {'seed':>5} "
        f"{'done':>6} {'rej':>5}  digest"
    )
    print(header)
    print("-" * len(header))
    for value in result.values:
        companion = "yes" if value.get("exclude_noisy") else ""
        print(
            f"{value['scenario']:<16} {value['policy']:<16} "
            f"{companion:>9} {value['seed']:>5} {value['completed']:>6} "
            f"{value['rejected']:>5}  {str(value['digest'])[:16]}…"
        )
    print()
    print(
        f"{len(result.outcomes)} runs in {result.wall_s:.2f}s wall "
        f"({result.workers} workers); matrix digest {result.digest}"
    )
    if args.json:
        payload = {"digest": result.digest, "results": result.values}
        with open(args.json, "w") as handle:
            json_module.dump(payload, handle, indent=2)
        print(f"wrote results to {args.json}")
    return 0


def _scenario_report(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.errors import ConfigurationError
    from repro.scenarios.report import (
        generate_survival_report,
        survival_report_from_results,
    )

    if args.json:
        try:
            with open(args.json) as handle:
                payload = json_module.load(handle)
        except FileNotFoundError:
            raise ConfigurationError(f"results file not found: {args.json}")
        except json_module.JSONDecodeError as error:
            raise ConfigurationError(
                f"malformed results JSON in {args.json}: {error}"
            )
        report = survival_report_from_results(
            payload.get("results", []), digest=payload.get("digest", "")
        )
    else:
        report, _ = generate_survival_report(workers=args.workers)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote survival report to {args.out}")
    else:
        print(report)
    return 0


def _cmd_features(args: argparse.Namespace) -> int:
    from repro.core.registry import Feature

    print("Classification features (repro.core.registry.Feature):")
    for feature in Feature:
        print(f"  {feature.name:<34} {feature.value}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.core.classify import classify_features
    from repro.core.registry import Feature

    try:
        features = {Feature[name.upper()] for name in args.feature}
    except KeyError as error:
        print(f"unknown feature {error.args[0]!r}; run `python -m repro features`")
        return 2
    classes = classify_features(features)
    if not classes:
        print("no taxonomy class matches this feature set")
        return 1
    print("Classifies as:")
    for technique_class in classes:
        print(f"  - {technique_class.display_name}")
    return 0


_WORKLOAD_BUILDERS = ("oltp", "bi", "reports", "utilities")


def _backend_specs(names: str):
    from repro.workloads.generator import (
        bi_workload,
        oltp_workload,
        report_batch_workload,
        utility_workload,
    )

    builders = {
        "oltp": oltp_workload,
        "bi": bi_workload,
        "reports": report_batch_workload,
        "utilities": utility_workload,
    }
    specs = []
    for name in names.split(","):
        name = name.strip()
        if name not in builders:
            raise SystemExit(
                f"unknown workload {name!r}; choose from {_WORKLOAD_BUILDERS}"
            )
        specs.append(builders[name]())
    return specs


def _backend_plan(args: argparse.Namespace):
    from repro.backends import plan_statements

    return plan_statements(
        _backend_specs(args.workloads),
        horizon=args.horizon,
        seed=args.seed,
        max_statements=args.max_statements,
    )


def _backend_config(args: argparse.Namespace):
    from repro.backends import RunConfig

    return RunConfig(
        mpl=args.mpl,
        max_rate=args.max_rate,
        time_scale=args.time_scale,
        statement_timeout_s=args.statement_timeout,
        rows=args.rows,
    )


def _backend_policies(args: argparse.Namespace):
    from repro.backends import AdmissionGate, SleepThrottle

    gate = None
    if args.cost_limit is not None or args.max_outstanding is not None:
        gate = AdmissionGate(
            cost_limit=args.cost_limit, max_outstanding=args.max_outstanding
        )
    throttle = None
    if args.sleep_fraction > 0:
        workloads = frozenset(
            w.strip() for w in args.throttle_workloads.split(",") if w.strip()
        )
        throttle = SleepThrottle(
            workloads=workloads, sleep_fraction=args.sleep_fraction
        )
    return gate, throttle


def _cmd_backend(args: argparse.Namespace) -> int:
    from repro.backends import (
        BackendRunner,
        BackendUnavailable,
        fit_cost_model,
        make_backend,
        run_comparison,
        service_error,
        summarize_log,
    )
    from repro.workloads.traces import QueryLog

    if args.verb == "calibrate":
        if not args.trace_in:
            print("backend calibrate requires --trace-in FILE")
            return 2
        log = QueryLog.from_jsonl(args.trace_in)
        model = fit_cost_model(log, time_scale=args.time_scale)
        print(
            f"fitted {len(model.fits)} class models "
            f"(+ global fallback) from {len(log)} records"
        )
        for label in sorted(model.fits):
            fit = model.fits[label]
            print(
                f"  {label:<24} service ≈ {fit.intercept:.6f} "
                f"+ {fit.slope:.6f}·work   ({fit.samples} samples)"
            )
        uncal = service_error(log, None, time_scale=args.time_scale)
        cal = service_error(log, model, time_scale=args.time_scale)
        print(f"mean |service error|: uncalibrated {uncal:.6f}s, "
              f"calibrated {cal:.6f}s")
        return 0

    try:
        if args.verb == "run":
            plan = _backend_plan(args)
            gate, throttle = _backend_policies(args)
            driver = make_backend(args.backend)
            print(
                f"executing {len(plan)} planned statements on "
                f"{args.backend} (digest {plan.digest()[:16]}…)"
            )
            report = BackendRunner(
                driver,
                plan,
                _backend_config(args),
                admission=gate,
                throttle=throttle,
            ).run()
            print(report.summary_line())
            summary = summarize_log(report.log, plan.horizon, args.time_scale)
            for name, value in summary.as_dict().items():
                print(f"  {name:<15} {value:.6f}")
            if args.trace_out:
                count = report.log.to_jsonl(args.trace_out)
                print(f"wrote {count} trace records to {args.trace_out}")
            return 0 if report.conserved else 1

        # compare
        plan = _backend_plan(args)
        gate, throttle = _backend_policies(args)
        report = run_comparison(
            plan,
            lambda: make_backend(args.backend),
            _backend_config(args),
            admission=gate,
            throttle=throttle,
            keep_real_reports=bool(args.trace_out),
        )
        print(report.render())
        if args.trace_out:
            count = report.real_reports["baseline"].log.to_jsonl(args.trace_out)
            print(f"\nwrote {count} baseline trace records to {args.trace_out}")
        return 0
    except BackendUnavailable as reason:
        print(f"backend unavailable: {reason}")
        return 3


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    from repro.cluster.dispatcher import DISPATCH_MODES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Workload management in DBMSs: the executable taxonomy.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure = subparsers.add_parser("figure", help="render Figure 1")
    figure.add_argument(
        "--annotate", action="store_true", help="append class definitions"
    )
    figure.set_defaults(func=_cmd_figure)

    tables = subparsers.add_parser("tables", help="render Tables 1-5")
    tables.add_argument(
        "which", nargs="?", default="all", choices=["1", "2", "3", "4", "5", "all"]
    )
    tables.set_defaults(func=_cmd_tables)

    demo = subparsers.add_parser("demo", help="run the mixed-workload demo")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--horizon", type=float, default=60.0)
    demo.set_defaults(func=_cmd_demo)

    cluster = subparsers.add_parser(
        "cluster", help="run the multi-node cluster demo"
    )
    cluster.add_argument("--nodes", type=int, default=4)
    cluster.add_argument(
        "--policy",
        default="cost",
        choices=["round-robin", "least", "cost", "sla"],
        help="placement policy",
    )
    cluster.add_argument("--seed", type=int, default=42)
    cluster.add_argument("--horizon", type=float, default=60.0)
    cluster.add_argument(
        "--kill-node", default=None, metavar="NAME",
        help="crash this node mid-run (e.g. n1)",
    )
    cluster.add_argument("--kill-at", type=float, default=30.0)
    cluster.add_argument(
        "--recover-at", type=float, default=None,
        help="revive the killed node at this time",
    )
    cluster.add_argument(
        "--dispatch",
        default="push",
        choices=list(DISPATCH_MODES),
        help="binding policy: push places on arrival, pull late-binds "
        "through the task queue + matcher",
    )
    cluster.set_defaults(func=_cmd_cluster)

    sweep = subparsers.add_parser(
        "sweep",
        help="parallel placement-policy × seed sweep with a rollup table",
    )
    sweep.add_argument(
        "--policies",
        default="all",
        help="comma-separated placement policies, or 'all' "
        "(round-robin,least,cost,sla)",
    )
    sweep.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[42, 43, 44],
        help="seed replications per policy",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes (1 = in-process serial execution)",
    )
    sweep.add_argument("--nodes", type=int, default=4)
    sweep.add_argument("--horizon", type=float, default=60.0)
    sweep.add_argument("--mpl", type=int, default=2)
    sweep.add_argument(
        "--dispatch",
        default="push",
        choices=list(DISPATCH_MODES),
        help="binding policy for every run in the sweep",
    )
    sweep.set_defaults(func=_cmd_sweep)

    backend = subparsers.add_parser(
        "backend",
        help="execute workloads on a real DBMS backend (sqlite/postgres)",
    )
    backend.add_argument(
        "verb",
        choices=["run", "calibrate", "compare"],
        help="run a plan, fit a cost model from a trace, or compare "
        "sim vs real under admission + throttling policies",
    )
    backend.add_argument(
        "--backend", default="sqlite", choices=["sqlite", "postgres"]
    )
    backend.add_argument(
        "--workloads",
        default="oltp,bi",
        help=f"comma-separated canonical workloads {_WORKLOAD_BUILDERS}",
    )
    backend.add_argument("--horizon", type=float, default=60.0,
                         help="schedule horizon in schedule seconds")
    backend.add_argument("--seed", type=int, default=0)
    backend.add_argument("--mpl", type=int, default=4,
                         help="concurrent statements (worker threads)")
    backend.add_argument(
        "--time-scale", type=float, default=0.02,
        help="real seconds per schedule second (compression factor)",
    )
    backend.add_argument("--max-rate", type=float, default=None,
                         help="token-bucket cap in statements/second")
    backend.add_argument("--rows", type=int, default=10_000,
                         help="seeded table size")
    backend.add_argument("--statement-timeout", type=float, default=5.0,
                         help="per-statement wall-clock timeout in seconds")
    backend.add_argument("--max-statements", type=int, default=None,
                         help="truncate the plan after this many statements")
    backend.add_argument("--cost-limit", type=float, default=None,
                         help="admission: reject above this estimated cost")
    backend.add_argument("--max-outstanding", type=int, default=None,
                         help="admission: reject when this many outstanding")
    backend.add_argument(
        "--throttle-workloads", default="bi",
        help="workloads the sleep throttle applies to (comma-separated)",
    )
    backend.add_argument(
        "--sleep-fraction", type=float, default=0.0,
        help="constant-throttle sleep fraction in [0,1); 0 disables",
    )
    backend.add_argument("--trace-out", default=None, metavar="FILE",
                         help="write the captured QueryLog as JSON Lines")
    backend.add_argument("--trace-in", default=None, metavar="FILE",
                         help="trace to calibrate from (calibrate verb)")
    backend.set_defaults(func=_cmd_backend)

    scenario = subparsers.add_parser(
        "scenario",
        help="multi-tenant chaos scenarios and the survival report",
    )
    scenario.add_argument(
        "verb",
        choices=["run", "sweep", "report", "list"],
        help="run one scenario, sweep the matrix, render the survival "
        "report, or list scenarios and policies",
    )
    scenario.add_argument(
        "--name", default="noisy_neighbor",
        help="scenario name from the matrix (run verb)",
    )
    scenario.add_argument(
        "--policy", default="baseline",
        help="isolation policy name (run verb)",
    )
    scenario.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load the scenario from a .json/.yaml spec file instead "
        "of the matrix (run verb)",
    )
    scenario.add_argument(
        "--exclude-noisy", action="store_true",
        help="drop the noisy tenants (the leakage companion run)",
    )
    scenario.add_argument("--seed", type=int, default=42)
    scenario.add_argument(
        "--seeds", type=int, nargs="+", default=[42],
        help="seed replications (sweep verb)",
    )
    scenario.add_argument(
        "--scenarios", default=None,
        help="comma-separated scenario subset (sweep verb)",
    )
    scenario.add_argument(
        "--policies", default=None,
        help="comma-separated policy subset (sweep verb)",
    )
    scenario.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for sweep/report",
    )
    scenario.add_argument(
        "--json", default=None, metavar="FILE",
        help="sweep: write results JSON here; report: read results "
        "JSON from here instead of re-running",
    )
    scenario.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the survival report here instead of stdout",
    )
    scenario.set_defaults(func=_cmd_scenario)

    features = subparsers.add_parser("features", help="list feature names")
    features.set_defaults(func=_cmd_features)

    classify = subparsers.add_parser(
        "classify", help="classify a feature set against the taxonomy"
    )
    classify.add_argument("feature", nargs="+", help="Feature enum names")
    classify.set_defaults(func=_cmd_classify)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
