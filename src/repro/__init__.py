"""dbwm — Workload Management in DBMSs: an executable taxonomy.

Reproduction of M. Zhang, P. Martin, W. Powley, J. Chen, *"Workload
Management in Database Management Systems: A Taxonomy"* (TKDE
manuscript; extended abstract at ICDE 2018).

The library has two faces:

1. **The taxonomy, executable** — :mod:`repro.core.taxonomy` encodes
   Figure 1; :mod:`repro.core.registry` + :mod:`repro.core.classify`
   regenerate Tables 1–5 by classifying machine-readable descriptions
   of the surveyed systems and techniques.
2. **Every surveyed technique, running** — a discrete-event DBMS
   simulator (:mod:`repro.engine`), workload generators
   (:mod:`repro.workloads`), and implementations of every
   characterization / admission / scheduling / execution-control
   technique the survey catalogues, orchestrated by the
   :class:`~repro.core.manager.WorkloadManager`.

Quick start::

    from repro import Simulator, WorkloadManager, mixed_scenario

    sim = Simulator(seed=42)
    manager = WorkloadManager(sim)
    scenario = mixed_scenario(horizon=120.0)
    generator = scenario.build(sim, manager.submit, sessions=manager.sessions)
    manager.add_completion_listener(generator.notify_done)
    manager.run(scenario.horizon, drain=60.0)
    print(manager.metrics.summary_line("oltp", sim.now))
"""

from repro.engine import (
    Simulator,
    Query,
    QueryState,
    CostVector,
    QueryPlan,
    PlanOperator,
    Optimizer,
    OptimizerProfile,
    MachineSpec,
    ExecutionEngine,
    EngineConfig,
)
from repro.core import (
    TAXONOMY,
    TechniqueClass,
    WorkloadManager,
    MetricsCollector,
    ServiceLevelAgreement,
    SLASet,
    PerformanceObjective,
    ObjectiveKind,
    WorkloadManagementPolicy,
    AdmissionPolicy,
    classify_descriptor,
    classify_component,
)
from repro.core.sla import response_time_sla
from repro.workloads import (
    Scenario,
    WorkloadSpec,
    oltp_workload,
    bi_workload,
    report_batch_workload,
    utility_workload,
    mixed_scenario,
    QueryLog,
)
from repro.reporting import (
    render_figure1,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    all_tables,
)

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Query",
    "QueryState",
    "CostVector",
    "QueryPlan",
    "PlanOperator",
    "Optimizer",
    "OptimizerProfile",
    "MachineSpec",
    "ExecutionEngine",
    "EngineConfig",
    "TAXONOMY",
    "TechniqueClass",
    "WorkloadManager",
    "MetricsCollector",
    "ServiceLevelAgreement",
    "SLASet",
    "PerformanceObjective",
    "ObjectiveKind",
    "WorkloadManagementPolicy",
    "AdmissionPolicy",
    "classify_descriptor",
    "classify_component",
    "response_time_sla",
    "Scenario",
    "WorkloadSpec",
    "oltp_workload",
    "bi_workload",
    "report_batch_workload",
    "utility_workload",
    "mixed_scenario",
    "QueryLog",
    "render_figure1",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "all_tables",
    "__version__",
]
