"""Deterministic statement planning: workload specs → executable SQL.

The planner is the determinism boundary of the backend subsystem.  It
consumes the *same* :class:`~repro.workloads.models.WorkloadSpec`
objects the simulator consumes — same arrival processes, same request
classes, same cost distributions — and pre-draws the entire statement
stream with a seeded generator: arrival instants, request classes, cost
vectors, optimizer estimates and the concrete backend-neutral
:class:`~repro.backends.base.Operation` each statement executes.

Everything *after* the plan (wall-clock timings, thread interleavings,
lock conflicts) is real and therefore non-deterministic; everything
*in* the plan is bit-reproducible and digest-gated, which is what lets
a simulator run and a real run answer the question "same requests,
different engine — how do the metrics move?".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from hashlib import sha256
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Operation, OpKind
from repro.engine.query import CostVector, Query, QueryState, StatementType
from repro.errors import ConfigurationError
from repro.workloads.models import ClosedArrivals, WorkloadSpec


@dataclass(frozen=True)
class PlannedStatement:
    """One pre-drawn request: when it arrives, what it runs, what the
    optimizer believed about it."""

    index: int
    submit_at: float
    workload: str
    request_class: str
    statement_type: StatementType
    priority: int
    estimated_cost: CostVector
    true_cost: CostVector
    op: Operation
    sql_label: str

    def make_query(self) -> Query:
        """A fresh :class:`Query` for this statement (sim or real run)."""
        return Query(
            true_cost=self.true_cost,
            estimated_cost=self.estimated_cost,
            statement_type=self.statement_type,
            priority=self.priority,
            workload_name=self.workload,
            sql=self.sql_label,
        )


@dataclass(frozen=True)
class StatementPlan:
    """An ordered, fully pre-drawn statement stream."""

    statements: Tuple[PlannedStatement, ...]
    horizon: float
    seed: int
    key_space: int

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self):
        return iter(self.statements)

    def digest(self) -> str:
        """SHA-256 over every planned field — the determinism gate."""
        h = sha256()
        h.update(struct.pack("<dqq", self.horizon, self.seed, self.key_space))
        for s in self.statements:
            h.update(struct.pack("<qd", s.index, s.submit_at))
            h.update(s.sql_label.encode("utf-8"))
            h.update(s.statement_type.value.encode("ascii"))
            h.update(struct.pack("<q", s.priority))
            for cost in (s.estimated_cost, s.true_cost):
                h.update(
                    struct.pack(
                        "<dddqq",
                        cost.cpu_seconds,
                        cost.io_seconds,
                        cost.memory_mb,
                        cost.lock_count,
                        cost.rows,
                    )
                )
            h.update(s.op.kind.value.encode("ascii"))
            h.update(struct.pack("<qq", s.op.key, s.op.span))
        return h.hexdigest()

    def workloads(self) -> Tuple[str, ...]:
        seen = []
        for s in self.statements:
            if s.workload not in seen:
                seen.append(s.workload)
        return tuple(seen)


def _operation_for(
    statement_type: StatementType,
    true_cost: CostVector,
    rng: np.random.Generator,
    key_space: int,
    work_scale: float,
    heavy_read_threshold: float,
) -> Operation:
    """Map a drawn request onto a backend operation.

    The touched-row ``span`` grows linearly with the spec's sampled
    demand (``work_scale`` rows per cost-second), so heavy BI draws
    become genuinely heavier SQL — the property calibration later
    exploits to fit cost models with non-trivial slopes.
    """
    key = int(rng.integers(0, key_space))
    work = true_cost.total_work
    span = max(1, min(key_space, int(work * work_scale)))
    if statement_type in (StatementType.WRITE, StatementType.DML):
        return Operation(OpKind.POINT_WRITE, key=key, span=min(span, 64))
    if statement_type in (StatementType.UTILITY, StatementType.DDL, StatementType.LOAD):
        return Operation(OpKind.MAINTENANCE, key=key, span=1)
    if work >= heavy_read_threshold:
        return Operation(OpKind.RANGE_AGG, key=key, span=span)
    return Operation(OpKind.POINT_READ, key=key, span=1)


def plan_statements(
    specs: Sequence[WorkloadSpec],
    horizon: float,
    seed: int = 0,
    key_space: int = 10_000,
    work_scale: float = 200.0,
    heavy_read_threshold: float = 1.0,
    optimizer_sigma: float = 0.0,
    max_statements: Optional[int] = None,
) -> StatementPlan:
    """Pre-draw the full statement stream for ``specs`` over ``horizon``.

    Per-spec draws use independent child seeds (``[seed, spec_index]``)
    so adding a workload never perturbs another workload's stream.  The
    merged stream is ordered by arrival time with (spec, arrival) order
    breaking ties — the same order a simulator event heap would realize.

    ``optimizer_sigma`` > 0 perturbs estimates with multiplicative
    log-normal error, reproducing the §2.3 estimate gap on the real
    backend; the default is a perfect optimizer so admission decisions
    match bit-for-bit between sim and real runs.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    if key_space < 1:
        raise ConfigurationError("key_space must be >= 1")
    drawn = []
    for spec_index, spec in enumerate(specs):
        if isinstance(spec.arrivals, ClosedArrivals):
            raise ConfigurationError(
                f"workload {spec.name!r} uses closed arrivals, which need "
                "completion feedback; backend plans support open/batch "
                "arrival processes"
            )
        rng = np.random.default_rng([seed, spec_index])
        arrivals = spec.arrivals.arrival_times(rng, horizon)
        for arrival_index, submit_at in enumerate(arrivals):
            request_class = spec.pick_class(rng)
            true_cost = request_class.sample_cost(rng)
            if optimizer_sigma > 0:
                factor = float(np.exp(rng.normal(0.0, optimizer_sigma)))
                estimated = true_cost.scaled(factor)
            else:
                estimated = true_cost
            op = _operation_for(
                request_class.statement_type,
                true_cost,
                rng,
                key_space,
                work_scale,
                heavy_read_threshold,
            )
            drawn.append(
                (
                    float(submit_at),
                    spec_index,
                    arrival_index,
                    spec,
                    request_class,
                    true_cost,
                    estimated,
                    op,
                )
            )
    drawn.sort(key=lambda item: (item[0], item[1], item[2]))
    if max_statements is not None:
        drawn = drawn[:max_statements]
    statements = tuple(
        PlannedStatement(
            index=index,
            submit_at=submit_at,
            workload=spec.name,
            request_class=request_class.name,
            statement_type=request_class.statement_type,
            priority=spec.priority,
            estimated_cost=estimated,
            true_cost=true_cost,
            op=op,
            sql_label=f"{spec.name}:{request_class.name}",
        )
        for index, (
            submit_at,
            _spec_index,
            _arrival_index,
            spec,
            request_class,
            true_cost,
            estimated,
            op,
        ) in enumerate(drawn)
    )
    return StatementPlan(
        statements=statements, horizon=horizon, seed=seed, key_space=key_space
    )


def rejected_copy(statement: PlannedStatement, now: float) -> Query:
    """A query object recording an admission rejection at ``now``."""
    query = statement.make_query()
    query.transition(QueryState.SUBMITTED)
    query.submit_time = now
    query.transition(QueryState.REJECTED)
    query.end_time = now
    return query
