"""Sim-vs-real comparison: one plan, two engines, per-metric deltas.

The harness answers the validation question behind the whole simulator:
*given the identical request stream, how far are the simulator's
workload-management outcomes from a real engine's?*  It runs one
admission policy and one throttling policy through both executions:

* **real** — :class:`~repro.backends.runner.BackendRunner` against a
  :class:`~repro.backends.base.BackendDriver`, with the
  :class:`~repro.backends.runner.AdmissionGate` /
  :class:`~repro.backends.runner.SleepThrottle` realizations;
* **simulated** — the standard :class:`~repro.core.manager.WorkloadManager`
  with :class:`~repro.admission.threshold.ThresholdAdmission` and an
  engine-level constant throttle (``set_throttle(qid, 1 - sleep)``),
  which §4.2.2 equates with the sleep-loop realization.

The sim models the real runner's thread pool as a machine of ``mpl``
CPU units behind an FCFS dispatcher with ``max_concurrency=mpl``: at
most ``mpl`` statements run, each at full speed — exactly one worker
thread each.  Cost-threshold admission decisions match bit-for-bit
across the two executions because both consult the same pre-drawn
optimizer estimates; MPL and timing-dependent effects are where the
engines may genuinely diverge, which is what the deltas measure.

Both sides consume the same digest-gated
:class:`~repro.backends.plan.StatementPlan`; the simulated side's costs
come either from the plan's spec-native costs (*uncalibrated*) or from
a :class:`~repro.backends.calibrate.CostModel` fitted on a real
baseline trace (*calibrated*).  The report carries both sim baselines
so the calibration acceptance check — calibrated mean response time
closer to the real mean than uncalibrated — is computed, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.admission.threshold import ThresholdAdmission
from repro.backends.base import BackendDriver
from repro.backends.calibrate import CostModel, fit_cost_model, service_error
from repro.backends.plan import StatementPlan
from repro.backends.runner import (
    AdmissionGate,
    BackendRunner,
    RunConfig,
    RunReport,
    SleepThrottle,
)
from repro.core.manager import FCFSDispatcher, WorkloadManager
from repro.core.policy import AdmissionPolicy
from repro.engine.query import QueryState
from repro.engine.resources import MachineSpec
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.workloads.traces import QueryLog


@dataclass(frozen=True)
class MetricSummary:
    """The comparison metrics of one run, in schedule-time units."""

    count: int
    completed: int
    rejected: int
    killed: int
    aborted: int
    throughput: float          # completions per schedule second
    mean_rt: float             # mean response time of completions
    p50_rt: float
    p95_rt: float
    rejection_rate: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "completed": self.completed,
            "rejected": self.rejected,
            "killed": self.killed,
            "aborted": self.aborted,
            "throughput": self.throughput,
            "mean_rt": self.mean_rt,
            "p50_rt": self.p50_rt,
            "p95_rt": self.p95_rt,
            "rejection_rate": self.rejection_rate,
        }


def summarize_log(
    log: QueryLog, horizon: float, time_scale: float = 1.0
) -> MetricSummary:
    """Aggregate a query log into comparison metrics.

    ``time_scale`` converts the log's clock into schedule units: pass
    the real run's configured scale for captured traces and ``1.0`` for
    simulator logs (which are already on the schedule axis).
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    if time_scale <= 0:
        raise ConfigurationError(f"time_scale must be positive, got {time_scale}")
    states = {state: 0 for state in QueryState}
    response_times = []
    for record in log:
        states[record.final_state] += 1
        if record.completed and record.response_time is not None:
            response_times.append(record.response_time / time_scale)
    completed = states[QueryState.COMPLETED]
    count = len(log)
    if response_times:
        rts = np.asarray(response_times, dtype=np.float64)
        mean_rt = float(rts.mean())
        p50_rt = float(np.percentile(rts, 50))
        p95_rt = float(np.percentile(rts, 95))
    else:
        mean_rt = p50_rt = p95_rt = 0.0
    return MetricSummary(
        count=count,
        completed=completed,
        rejected=states[QueryState.REJECTED],
        killed=states[QueryState.KILLED],
        aborted=states[QueryState.ABORTED],
        throughput=completed / horizon,
        mean_rt=mean_rt,
        p50_rt=p50_rt,
        p95_rt=p95_rt,
        rejection_rate=states[QueryState.REJECTED] / count if count else 0.0,
    )


@dataclass(frozen=True)
class MetricDelta:
    """One metric's sim-vs-real discrepancy."""

    metric: str
    real: float
    sim: float

    @property
    def delta(self) -> float:
        return self.sim - self.real

    @property
    def relative(self) -> Optional[float]:
        if self.real == 0.0:
            return None
        return self.delta / self.real

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "metric": self.metric,
            "real": self.real,
            "sim": self.sim,
            "delta": self.delta,
            "relative": self.relative,
        }


#: The per-metric deltas the harness reports (ISSUE acceptance set).
DELTA_METRICS = ("throughput", "mean_rt", "p50_rt", "p95_rt", "rejection_rate")


def metric_deltas(real: MetricSummary, sim: MetricSummary) -> List[MetricDelta]:
    real_d, sim_d = real.as_dict(), sim.as_dict()
    return [MetricDelta(name, real_d[name], sim_d[name]) for name in DELTA_METRICS]


class _SimThrottle:
    """Engine-level constant throttle applied the instant a query starts.

    Starts only happen inside ``pump()``, which runs during ``submit``
    and during engine-exit callbacks — both of which re-apply the cap
    here at the same simulated instant, so a throttled query never makes
    unthrottled progress (matching the real sleep-loop, which stretches
    the *whole* service time).
    """

    def __init__(self, workloads: FrozenSet[str], sleep_fraction: float) -> None:
        self.factor = 1.0 - sleep_fraction
        self.workloads = workloads

    def apply(self, manager: WorkloadManager) -> None:
        engine = manager.engine
        for query in engine.running_queries():
            if self.workloads and query.workload_name not in self.workloads:
                continue
            if engine.throttle_of(query.query_id) != self.factor:
                engine.set_throttle(query.query_id, self.factor)


def run_sim_on_plan(
    plan: StatementPlan,
    mpl: int = 4,
    cost_model: Optional[CostModel] = None,
    admission: Optional[AdmissionGate] = None,
    throttle: Optional[SleepThrottle] = None,
    horizon: Optional[float] = None,
    control_period: float = 1.0,
    max_drain_rounds: int = 10_000,
) -> QueryLog:
    """Run a statement plan through the simulator and return its log.

    With ``cost_model`` the simulated demand of each statement is the
    model's predicted real service time (estimates stay untouched, so
    admission sees exactly what the real runner saw); without it the
    plan's spec-native costs run as-is — the uncalibrated baseline.
    After the horizon the sim drains until no work is outstanding, like
    the real runner waiting on its futures.
    """
    if mpl < 1:
        raise ConfigurationError(f"mpl must be >= 1, got {mpl}")
    horizon = horizon if horizon is not None else plan.horizon
    sim = Simulator(seed=plan.seed)
    admission_controller = None
    if admission is not None:
        admission_controller = ThresholdAdmission(
            default_policy=AdmissionPolicy(
                reject_over_cost=admission.cost_limit,
                max_concurrency=admission.max_outstanding,
                queue_when_full=False,
            )
        )
    manager = WorkloadManager(
        sim,
        machine=MachineSpec(cpu_capacity=float(mpl), disk_capacity=float(mpl)),
        admission=admission_controller,
        scheduler=FCFSDispatcher(max_concurrency=mpl),
        control_period=control_period,
    )
    sim_throttle = None
    if throttle is not None and throttle.sleep_fraction > 0:
        sim_throttle = _SimThrottle(throttle.workloads, throttle.sleep_fraction)
        manager.engine.on_exit(lambda _q, _o: sim_throttle.apply(manager))

    def _submit(statement) -> None:
        query = statement.make_query()
        if cost_model is not None:
            query.true_cost = cost_model.calibrated_cost(
                statement.sql_label, statement.estimated_cost
            )
        manager.submit(query)
        if sim_throttle is not None:
            sim_throttle.apply(manager)

    for statement in plan:
        sim.schedule_at(
            statement.submit_at,
            lambda s=statement: _submit(s),
            label=f"backend-plan:{statement.index}",
        )
    sim.run_until(horizon)
    rounds = 0
    while manager.outstanding_work() > 0 and rounds < max_drain_rounds:
        sim.run_until(sim.now + max(1.0, control_period))
        rounds += 1
    manager.shutdown()
    if manager.outstanding_work() > 0:
        raise ConfigurationError(
            f"simulated run failed to drain: {manager.outstanding_work()} "
            "queries still outstanding"
        )
    return manager.query_log


@dataclass
class PolicyComparison:
    """Real vs simulated outcomes of one policy on one plan."""

    label: str
    real: MetricSummary
    sim: MetricSummary
    deltas: List[MetricDelta] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "real": self.real.as_dict(),
            "sim": self.sim.as_dict(),
            "deltas": [delta.as_dict() for delta in self.deltas],
        }


@dataclass
class ComparisonReport:
    """Everything one comparison run produced."""

    plan_digest: str
    statements: int
    mpl: int
    time_scale: float
    baseline_real: MetricSummary
    policies: List[PolicyComparison]
    mean_rt_error_uncalibrated: float
    mean_rt_error_calibrated: float
    service_error_uncalibrated: float
    service_error_calibrated: float
    model: CostModel
    real_reports: Dict[str, RunReport] = field(default_factory=dict)

    @property
    def calibration_improved(self) -> bool:
        """The acceptance check: calibrated sim tracks real mean RT better."""
        return self.mean_rt_error_calibrated < self.mean_rt_error_uncalibrated

    def as_dict(self) -> Dict[str, object]:
        return {
            "plan_digest": self.plan_digest,
            "statements": self.statements,
            "mpl": self.mpl,
            "time_scale": self.time_scale,
            "baseline_real": self.baseline_real.as_dict(),
            "policies": [policy.as_dict() for policy in self.policies],
            "mean_rt_error_uncalibrated": self.mean_rt_error_uncalibrated,
            "mean_rt_error_calibrated": self.mean_rt_error_calibrated,
            "service_error_uncalibrated": self.service_error_uncalibrated,
            "service_error_calibrated": self.service_error_calibrated,
            "calibration_improved": self.calibration_improved,
            "cost_model": self.model.as_dict(),
        }

    def render(self) -> str:
        """Human-readable per-metric delta tables."""
        lines = [
            f"plan: {self.statements} statements, digest {self.plan_digest[:16]}…",
            f"mpl={self.mpl} time_scale={self.time_scale}",
            "",
            "calibration (sim mean-RT error vs real baseline):",
            f"  uncalibrated: {self.mean_rt_error_uncalibrated:.6f}s",
            f"  calibrated:   {self.mean_rt_error_calibrated:.6f}s"
            f"  ({'improved' if self.calibration_improved else 'NOT improved'})",
        ]
        for policy in self.policies:
            lines.append("")
            lines.append(f"policy: {policy.label}")
            lines.append(
                f"  {'metric':<15} {'real':>12} {'sim':>12} {'delta':>12}"
            )
            for delta in policy.deltas:
                lines.append(
                    f"  {delta.metric:<15} {delta.real:>12.6f} "
                    f"{delta.sim:>12.6f} {delta.delta:>+12.6f}"
                )
        return "\n".join(lines)


def run_comparison(
    plan: StatementPlan,
    driver_factory: Callable[[], BackendDriver],
    config: Optional[RunConfig] = None,
    admission: Optional[AdmissionGate] = None,
    throttle: Optional[SleepThrottle] = None,
    keep_real_reports: bool = False,
) -> ComparisonReport:
    """The full harness: baseline, calibrate, then each policy both ways.

    Three real runs (baseline, admission, throttling) and three matching
    simulator runs.  The baseline real trace fits the cost model; every
    simulated policy run uses it.  ``driver_factory`` builds a fresh
    driver per real run so runs never share backend state.
    """
    config = config or RunConfig()
    admission = admission or AdmissionGate(cost_limit=1.0)
    throttle = throttle or SleepThrottle(sleep_fraction=0.5)
    horizon = plan.horizon
    scale = config.time_scale

    baseline = BackendRunner(driver_factory(), plan, config).run()
    model = fit_cost_model(baseline.log, time_scale=scale)
    baseline_real = summarize_log(baseline.log, horizon, scale)

    sim_uncal = summarize_log(run_sim_on_plan(plan, config.mpl), horizon)
    sim_cal = summarize_log(
        run_sim_on_plan(plan, config.mpl, cost_model=model), horizon
    )

    policies: List[PolicyComparison] = []
    real_reports: Dict[str, RunReport] = {}
    if keep_real_reports:
        real_reports["baseline"] = baseline
    for label, gate, thr in (
        ("admission", admission, None),
        ("throttling", None, throttle),
    ):
        real = BackendRunner(
            driver_factory(), plan, config, admission=gate, throttle=thr
        ).run()
        real_summary = summarize_log(real.log, horizon, scale)
        sim_log = run_sim_on_plan(
            plan, config.mpl, cost_model=model, admission=gate, throttle=thr
        )
        sim_summary = summarize_log(sim_log, horizon)
        policies.append(
            PolicyComparison(
                label=label,
                real=real_summary,
                sim=sim_summary,
                deltas=metric_deltas(real_summary, sim_summary),
            )
        )
        if keep_real_reports:
            real_reports[label] = real

    return ComparisonReport(
        plan_digest=plan.digest(),
        statements=len(plan),
        mpl=config.mpl,
        time_scale=scale,
        baseline_real=baseline_real,
        policies=policies,
        mean_rt_error_uncalibrated=abs(sim_uncal.mean_rt - baseline_real.mean_rt),
        mean_rt_error_calibrated=abs(sim_cal.mean_rt - baseline_real.mean_rt),
        service_error_uncalibrated=service_error(
            baseline.log, None, time_scale=scale
        ),
        service_error_calibrated=service_error(
            baseline.log, model, time_scale=scale
        ),
        model=model,
        real_reports=real_reports,
    )
