"""Optional PostgreSQL backend, gated on a configured DSN.

Postgres is the out-of-process backend: same :class:`Operation` shapes,
same error taxonomy, but with network round-trips, a real lock manager
and ``statement_timeout`` enforcement server-side.  It is strictly
opt-in — construction raises :class:`BackendUnavailable` unless both a
DSN (``dsn=`` argument or the ``REPRO_PG_DSN`` environment variable)
and a psycopg driver (v3 ``psycopg`` or v2 ``psycopg2``) are present —
so CI and laptops without a server skip it cleanly.

The schema mirrors the SQLite backend's ``kv``/``facts`` pair and is
seeded from the same deterministic generator, so a trace captured on
one backend replays meaningfully against the other (the
database-agnostic portability argument of Jain et al., arXiv
1808.08355).
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional

import numpy as np

from repro.backends.base import BackendDriver, BackendUnavailable, ErrorKind, Operation, OpKind
from repro.errors import ConfigurationError

#: environment variable naming the opt-in server
DSN_ENV = "REPRO_PG_DSN"


def _import_driver():
    """Return (module, flavor) for psycopg v3 or v2, else None."""
    try:
        import psycopg  # type: ignore

        return psycopg, 3
    except ImportError:
        pass
    try:
        import psycopg2  # type: ignore

        return psycopg2, 2
    except ImportError:
        return None, 0


class PostgresBackend(BackendDriver):
    """PostgreSQL driver; see the module docstring for gating rules."""

    name = "postgres"

    def __init__(self, dsn: Optional[str] = None, schema: str = "repro_backend") -> None:
        self.dsn = dsn or os.environ.get(DSN_ENV)
        if not self.dsn:
            raise BackendUnavailable(
                f"postgres backend needs a DSN: pass dsn= or set ${DSN_ENV}"
            )
        self._driver, self._flavor = _import_driver()
        if self._driver is None:
            raise BackendUnavailable(
                "postgres backend needs psycopg (v3) or psycopg2 installed"
            )
        self.schema = schema
        self.rows = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> Any:
        conn = self._driver.connect(self.dsn)
        conn.autocommit = True
        with conn.cursor() as cur:
            cur.execute(f"SET search_path TO {self.schema}, public")
        return conn

    def close_connection(self, conn: Any) -> None:
        conn.close()

    def healthcheck(self, conn: Any) -> bool:
        try:
            with conn.cursor() as cur:
                cur.execute("SELECT 1")
                return cur.fetchone()[0] == 1
        except Exception:
            return False

    def setup(self, seed: int = 0, rows: int = 10_000) -> None:
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        self.rows = rows
        conn = self._driver.connect(self.dsn)
        conn.autocommit = True
        try:
            with conn.cursor() as cur:
                cur.execute(f"DROP SCHEMA IF EXISTS {self.schema} CASCADE")
                cur.execute(f"CREATE SCHEMA {self.schema}")
                cur.execute(
                    f"CREATE TABLE {self.schema}.kv "
                    "(k BIGINT PRIMARY KEY, v TEXT NOT NULL)"
                )
                cur.execute(
                    f"CREATE TABLE {self.schema}.facts "
                    "(id BIGINT PRIMARY KEY, grp INT NOT NULL, val DOUBLE PRECISION NOT NULL)"
                )
                rng = np.random.default_rng([seed, rows])
                values = rng.integers(0, 2**63 - 1, size=rows, dtype=np.int64)
                cur.executemany(
                    f"INSERT INTO {self.schema}.kv (k, v) VALUES (%s, %s)",
                    [(int(k), f"{int(v):016x}") for k, v in enumerate(values)],
                )
                groups = rng.integers(0, 97, size=rows, dtype=np.int64)
                vals = rng.random(size=rows)
                cur.executemany(
                    f"INSERT INTO {self.schema}.facts (id, grp, val) "
                    "VALUES (%s, %s, %s)",
                    [
                        (int(i), int(g), float(x))
                        for i, (g, x) in enumerate(zip(groups, vals))
                    ],
                )
                cur.execute(
                    f"CREATE INDEX facts_grp ON {self.schema}.facts (grp)"
                )
        finally:
            conn.close()

    def teardown(self) -> None:  # schema is left for inspection
        pass

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, conn: Any, op: Operation, deadline: Optional[float] = None
    ) -> int:
        if self.rows < 1:
            raise ConfigurationError("backend not set up; call setup() first")
        rows = self.rows
        key = op.key % rows
        with conn.cursor() as cur:
            if deadline is not None:
                budget_ms = max(1, int((deadline - time.monotonic()) * 1000))
                cur.execute(f"SET statement_timeout = {budget_ms}")
            try:
                if op.kind is OpKind.POINT_READ:
                    cur.execute("SELECT v FROM kv WHERE k = %s", (key,))
                    return 0 if cur.fetchone() is None else 1
                if op.kind is OpKind.POINT_WRITE:
                    hi = min(rows - 1, key + max(1, op.span) - 1)
                    cur.execute(
                        "UPDATE kv SET v = %s WHERE k BETWEEN %s AND %s",
                        (op.payload or "w", key, hi),
                    )
                    return cur.rowcount
                if op.kind is OpKind.RANGE_AGG:
                    hi = min(rows - 1, key + max(1, op.span) - 1)
                    cur.execute(
                        "SELECT grp, COUNT(*), SUM(val), AVG(val) FROM facts "
                        "WHERE id BETWEEN %s AND %s GROUP BY grp ORDER BY grp",
                        (key, hi),
                    )
                    return hi - key + 1 if cur.fetchall() else 0
                if op.kind is OpKind.MAINTENANCE:
                    cur.execute("ANALYZE kv")
                    return 1
            finally:
                if deadline is not None:
                    cur.execute("SET statement_timeout = 0")
        raise ConfigurationError(f"unsupported operation kind {op.kind!r}")

    # ------------------------------------------------------------------
    # error taxonomy
    # ------------------------------------------------------------------
    def classify_error(self, error: Exception) -> ErrorKind:
        code = getattr(error, "sqlstate", None) or getattr(error, "pgcode", None)
        if code == "57014":  # query_canceled (statement_timeout)
            return ErrorKind.TIMEOUT
        if code in ("40001", "40P01", "55P03"):  # serialization/deadlock/lock
            return ErrorKind.TRANSIENT
        if code is not None and code.startswith("23"):  # integrity class
            return ErrorKind.CONSTRAINT
        message = str(error).lower()
        if "timeout" in message or "canceling statement" in message:
            return ErrorKind.TIMEOUT
        if "deadlock" in message or "could not serialize" in message:
            return ErrorKind.TRANSIENT
        if "connection" in message:
            return ErrorKind.TRANSIENT
        return ErrorKind.FATAL
