"""Real-DBMS execution backends with rate control and calibration.

Everything else in the library runs on simulated time; this package
runs the *same* workload specifications against a real engine — an
in-process SQLite database by default, PostgreSQL when a DSN is
configured — and closes the loop back to the simulator:

* :mod:`repro.backends.base` — the :class:`BackendDriver` protocol,
  backend-neutral :class:`Operation` shapes and the
  :class:`ErrorKind` taxonomy mapping real failures onto the query
  lifecycle's terminal states;
* :mod:`repro.backends.plan` — the determinism boundary: a digest-gated
  pre-drawn :class:`StatementPlan` both engines consume;
* :mod:`repro.backends.pool` / :mod:`repro.backends.rate` — bounded
  connection pooling with health checks, token-bucket max-rate control
  and scheduled arrival pacing;
* :mod:`repro.backends.runner` — paced, rate-limited execution with
  per-statement timeout, bounded retry and
  :class:`~repro.workloads.traces.QueryLog` trace capture;
* :mod:`repro.backends.calibrate` — fitting simulator cost models from
  captured traces;
* :mod:`repro.backends.compare` — the sim-vs-real harness reporting
  per-metric deltas for admission and throttling policies.
"""

from repro.backends.base import (
    BackendDriver,
    BackendUnavailable,
    ERROR_FINAL_STATE,
    ErrorKind,
    Operation,
    OpKind,
    make_backend,
)
from repro.backends.calibrate import (
    ClassFit,
    CostModel,
    fit_cost_model,
    service_error,
)
from repro.backends.compare import (
    ComparisonReport,
    MetricDelta,
    MetricSummary,
    PolicyComparison,
    metric_deltas,
    run_comparison,
    run_sim_on_plan,
    summarize_log,
)
from repro.backends.plan import (
    PlannedStatement,
    StatementPlan,
    plan_statements,
)
from repro.backends.pool import ConnectionPool, PoolStats
from repro.backends.postgres import DSN_ENV, PostgresBackend
from repro.backends.rate import ArrivalPacer, TokenBucket
from repro.backends.runner import (
    AdmissionGate,
    BackendRunner,
    RunConfig,
    RunReport,
    SleepThrottle,
    run_plan,
)
from repro.backends.sqlite import SQLiteBackend

__all__ = [
    "AdmissionGate",
    "ArrivalPacer",
    "BackendDriver",
    "BackendRunner",
    "BackendUnavailable",
    "ClassFit",
    "ComparisonReport",
    "ConnectionPool",
    "CostModel",
    "DSN_ENV",
    "ERROR_FINAL_STATE",
    "ErrorKind",
    "MetricDelta",
    "MetricSummary",
    "OpKind",
    "Operation",
    "PlannedStatement",
    "PolicyComparison",
    "PoolStats",
    "PostgresBackend",
    "RunConfig",
    "RunReport",
    "SQLiteBackend",
    "SleepThrottle",
    "StatementPlan",
    "TokenBucket",
    "fit_cost_model",
    "make_backend",
    "metric_deltas",
    "plan_statements",
    "run_comparison",
    "run_plan",
    "run_sim_on_plan",
    "service_error",
    "summarize_log",
]
