"""Bounded connection pool with periodic health checks.

The backend runner's worker threads borrow connections from a shared
pool instead of opening one per statement: connection setup is the
dominant cost for short OLTP statements, and real drivers (dbworkload's
run loop, DIRAC's pilot pools) all amortize it the same way.  The pool
is strictly bounded — at most ``size`` connections ever exist — and
lazily grown, so a run that never reaches its MPL never pays for idle
connections.

Health checking is amortized: every ``health_check_every``-th acquire of
a given connection runs the driver's ``healthcheck``; a failing (or
explicitly poisoned) connection is closed and replaced, which keeps a
long run alive across server-side disconnects without a per-statement
ping tax.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.backends.base import BackendDriver
from repro.errors import ConfigurationError


@dataclass
class PoolStats:
    """Counters exposed for reports and tests."""

    created: int = 0
    acquired: int = 0
    released: int = 0
    recycled: int = 0
    health_checks: int = 0
    health_failures: int = 0
    wait_timeouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class _Slot:
    """Book-keeping for one pooled connection."""

    conn: Any
    uses: int = 0


class ConnectionPool:
    """A bounded, lazily-grown pool of driver connections.

    Parameters
    ----------
    driver:
        The backend whose connections are pooled.
    size:
        Hard upper bound on live connections.
    health_check_every:
        Run ``driver.healthcheck`` on every Nth acquire of a connection
        (1 = every acquire, 0 = never).
    """

    def __init__(
        self,
        driver: BackendDriver,
        size: int,
        health_check_every: int = 25,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        if health_check_every < 0:
            raise ConfigurationError("health_check_every must be >= 0")
        self.driver = driver
        self.size = size
        self.health_check_every = health_check_every
        self.stats = PoolStats()
        self._idle: "queue.Queue[_Slot]" = queue.Queue()
        self._lock = threading.Lock()
        self._created = 0
        self._closed = False
        # conn id -> slot, for releases (conns are opaque, slots are ours)
        self._borrowed: Dict[int, _Slot] = {}

    # ------------------------------------------------------------------
    def _new_slot(self) -> _Slot:
        conn = self.driver.connect()
        self.stats.created += 1
        return _Slot(conn=conn)

    def acquire(self, timeout: Optional[float] = None) -> Any:
        """Borrow a connection, blocking when the pool is exhausted.

        Raises ``TimeoutError`` if no connection frees up in ``timeout``
        seconds (None = wait forever).
        """
        if self._closed:
            raise ConfigurationError("pool is closed")
        slot: Optional[_Slot] = None
        try:
            slot = self._idle.get_nowait()
        except queue.Empty:
            with self._lock:
                if self._created < self.size:
                    self._created += 1
                    grow = True
                else:
                    grow = False
            if grow:
                try:
                    slot = self._new_slot()
                except Exception:
                    with self._lock:
                        self._created -= 1
                    raise
            else:
                try:
                    slot = self._idle.get(timeout=timeout)
                except queue.Empty:
                    self.stats.wait_timeouts += 1
                    raise TimeoutError(
                        f"no pooled connection free within {timeout}s"
                    ) from None
        slot.uses += 1
        every = self.health_check_every
        if every and slot.uses % every == 0:
            self.stats.health_checks += 1
            healthy = False
            try:
                healthy = self.driver.healthcheck(slot.conn)
            except Exception:
                healthy = False
            if not healthy:
                self.stats.health_failures += 1
                slot = self._recycle(slot)
        self.stats.acquired += 1
        self._borrowed[id(slot.conn)] = slot
        return slot.conn

    def _recycle(self, slot: _Slot) -> _Slot:
        """Replace a bad connection, preserving the pool bound."""
        try:
            self.driver.close_connection(slot.conn)
        except Exception:
            pass
        self.stats.recycled += 1
        fresh = self._new_slot()
        fresh.uses = 0
        return fresh

    def release(self, conn: Any, healthy: bool = True) -> None:
        """Return a borrowed connection; ``healthy=False`` recycles it."""
        slot = self._borrowed.pop(id(conn), None)
        if slot is None:
            slot = _Slot(conn=conn)
        if not healthy:
            slot = self._recycle(slot)
        self.stats.released += 1
        if self._closed:
            try:
                self.driver.close_connection(slot.conn)
            except Exception:
                pass
            return
        self._idle.put(slot)

    def close(self) -> None:
        """Close every idle connection; borrowed ones close on release."""
        self._closed = True
        while True:
            try:
                slot = self._idle.get_nowait()
            except queue.Empty:
                break
            try:
                self.driver.close_connection(slot.conn)
            except Exception:
                pass

    @property
    def live_connections(self) -> int:
        return self._created
