"""In-process SQLite backend: the CI-safe real execution engine.

SQLite is the backend every environment has: in-process, zero network,
deterministic to seed, and — in shared-cache memory mode — genuinely
concurrent enough to exercise the runner's lock/busy retry taxonomy
with real ``SQLITE_LOCKED``/``SQLITE_BUSY`` errors.

Schema (the dbworkload ``kv`` idiom, plus an aggregate fact table):

* ``kv(k INTEGER PRIMARY KEY, v TEXT)`` — point reads/writes land here;
* ``facts(id INTEGER PRIMARY KEY, grp INTEGER, val REAL)`` — BI-style
  range aggregations scan a ``span`` of this table, so a statement's
  touched-row count scales with the workload spec's sampled cost.

Statement timeouts use SQLite's progress handler: every ``N`` virtual
machine opcodes the handler compares ``time.monotonic()`` against the
statement's deadline and aborts the query with ``interrupted`` — a real
in-engine cancellation, not a client-side thread kill.
"""

from __future__ import annotations

import itertools
import sqlite3
import time
from typing import Any, Optional

import numpy as np

from repro.backends.base import BackendDriver, ErrorKind, Operation, OpKind
from repro.errors import ConfigurationError

#: progress-handler granularity: opcodes between deadline checks.  Small
#: enough that even a point statement hits the handler when interrupted,
#: large enough to keep the check off the hot path.
_PROGRESS_OPCODES = 500

_memory_ids = itertools.count(1)


class SQLiteBackend(BackendDriver):
    """SQLite driver over a file or a shared in-memory database.

    Parameters
    ----------
    path:
        Database file path; ``None`` (default) uses a process-private
        shared-cache in-memory database, which multiple pool
        connections can open concurrently.
    busy_timeout_s:
        How long SQLite itself retries a busy lock before surfacing
        ``SQLITE_BUSY`` (which the runner's retry loop then handles).
    """

    name = "sqlite"

    def __init__(self, path: Optional[str] = None, busy_timeout_s: float = 0.5) -> None:
        if busy_timeout_s < 0:
            raise ConfigurationError("busy_timeout_s must be >= 0")
        self._is_memory = path is None
        if self._is_memory:
            self._uri = (
                f"file:repro-backend-{next(_memory_ids)}"
                "?mode=memory&cache=shared"
            )
        else:
            self._uri = path
        self.busy_timeout_s = busy_timeout_s
        self.rows = 0
        self._keeper: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self._uri,
            uri=self._is_memory,
            timeout=self.busy_timeout_s,
            check_same_thread=False,
            isolation_level=None,  # autocommit; explicit BEGIN where needed
        )
        conn.execute("PRAGMA synchronous=OFF")
        return conn

    def close_connection(self, conn: Any) -> None:
        conn.close()

    def healthcheck(self, conn: Any) -> bool:
        try:
            return conn.execute("SELECT 1").fetchone() == (1,)
        except sqlite3.Error:
            return False

    def setup(self, seed: int = 0, rows: int = 10_000) -> None:
        """Create and deterministically seed the schema.

        The keeper connection holds the shared in-memory database alive
        for the whole run (an in-memory DB vanishes with its last
        connection).  Data is a pure function of ``(seed, rows)``.
        """
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        self.rows = rows
        self._keeper = self.connect()
        cur = self._keeper
        cur.executescript(
            """
            DROP TABLE IF EXISTS kv;
            DROP TABLE IF EXISTS facts;
            CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT NOT NULL);
            CREATE TABLE facts (
                id INTEGER PRIMARY KEY,
                grp INTEGER NOT NULL,
                val REAL NOT NULL
            );
            """
        )
        rng = np.random.default_rng([seed, rows])
        values = rng.integers(0, 2**63 - 1, size=rows, dtype=np.int64)
        cur.executemany(
            "INSERT INTO kv (k, v) VALUES (?, ?)",
            ((int(k), f"{int(v):016x}") for k, v in enumerate(values)),
        )
        groups = rng.integers(0, 97, size=rows, dtype=np.int64)
        vals = rng.random(size=rows)
        cur.executemany(
            "INSERT INTO facts (id, grp, val) VALUES (?, ?, ?)",
            (
                (int(i), int(g), float(x))
                for i, (g, x) in enumerate(zip(groups, vals))
            ),
        )
        cur.execute("CREATE INDEX facts_grp ON facts (grp)")

    def teardown(self) -> None:
        if self._keeper is not None:
            self._keeper.close()
            self._keeper = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, conn: Any, op: Operation, deadline: Optional[float] = None
    ) -> int:
        if self.rows < 1:
            raise ConfigurationError("backend not set up; call setup() first")
        if deadline is not None:
            def _check_deadline() -> int:
                # non-zero return makes SQLite abort with 'interrupted'
                return 1 if time.monotonic() > deadline else 0

            conn.set_progress_handler(_check_deadline, _PROGRESS_OPCODES)
        try:
            return self._run(conn, op)
        finally:
            if deadline is not None:
                conn.set_progress_handler(None, 0)

    def _run(self, conn: sqlite3.Connection, op: Operation) -> int:
        rows = self.rows
        key = op.key % rows
        if op.kind is OpKind.POINT_READ:
            got = conn.execute("SELECT v FROM kv WHERE k = ?", (key,)).fetchone()
            return 0 if got is None else 1
        if op.kind is OpKind.POINT_WRITE:
            hi = min(rows - 1, key + max(1, op.span) - 1)
            cur = conn.execute(
                "UPDATE kv SET v = ? WHERE k BETWEEN ? AND ?",
                (op.payload or "w", key, hi),
            )
            return cur.rowcount
        if op.kind is OpKind.RANGE_AGG:
            hi = min(rows - 1, key + max(1, op.span) - 1)
            got = conn.execute(
                "SELECT grp, COUNT(*), SUM(val), AVG(val) FROM facts "
                "WHERE id BETWEEN ? AND ? GROUP BY grp ORDER BY grp",
                (key, hi),
            ).fetchall()
            return hi - key + 1 if got else 0
        if op.kind is OpKind.MAINTENANCE:
            got = conn.execute("PRAGMA quick_check").fetchall()
            return len(got)
        raise ConfigurationError(f"unsupported operation kind {op.kind!r}")

    # ------------------------------------------------------------------
    # error taxonomy
    # ------------------------------------------------------------------
    def classify_error(self, error: Exception) -> ErrorKind:
        if isinstance(error, sqlite3.OperationalError):
            message = str(error).lower()
            if "interrupt" in message:
                return ErrorKind.TIMEOUT
            if "locked" in message or "busy" in message:
                return ErrorKind.TRANSIENT
            return ErrorKind.FATAL
        if isinstance(error, sqlite3.IntegrityError):
            return ErrorKind.CONSTRAINT
        if isinstance(error, TimeoutError):
            return ErrorKind.TIMEOUT
        return ErrorKind.FATAL
