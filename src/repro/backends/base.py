"""Backend driver protocol: run the workload against a real DBMS.

Everything else in the library exercises workload-management techniques
on the *simulated* engine.  This package closes the loop the paper's
taxonomy describes for real systems: the same workload specs, executed
as actual SQL statements against an actual database, with the results
recorded through the same :class:`~repro.workloads.traces.QueryLog` the
DBQL pipeline consumes (Jain et al., arXiv 1808.08355, make the case
that captured query logs are the portable substrate for workload
management across engines).

A :class:`BackendDriver` abstracts one engine: it owns schema/data
seeding, connection management, statement execution and — crucially for
per-statement robustness — the mapping from the engine's zoo of
exceptions onto the small :class:`ErrorKind` taxonomy the runner's
retry/kill logic acts on.  Statements themselves are backend-neutral
:class:`Operation` values rendered to SQL by each driver, so one planned
workload runs identically against SQLite, Postgres, or the simulator.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.engine.query import QueryState


class BackendUnavailable(RuntimeError):
    """The requested backend cannot run here (missing driver or DSN).

    Raised at construction/setup time so callers (CLI, benchmarks,
    tests) can skip cleanly instead of failing mid-run.
    """


class ErrorKind(enum.Enum):
    """Coarse taxonomy of statement failures, mapped from engine errors.

    The runner only needs to know three things about a failure: is it
    worth retrying (``TRANSIENT`` — lock/busy conflicts, dropped
    connections), did the statement exhaust its time budget
    (``TIMEOUT`` — the real-system analogue of an execution-control
    kill), or is retrying pointless (``CONSTRAINT`` violations abort
    the statement; ``FATAL`` covers everything unrecognized).
    """

    TIMEOUT = "timeout"
    TRANSIENT = "transient"
    CONSTRAINT = "constraint"
    FATAL = "fatal"

    @property
    def retryable(self) -> bool:
        return self is ErrorKind.TRANSIENT


#: How an exhausted/terminal failure is recorded in the query log.
#: ``TIMEOUT`` and ``FATAL`` mirror an execution-control kill;
#: ``TRANSIENT`` (retries exhausted) and ``CONSTRAINT`` mirror a
#: statement abort, the same disposition the simulator's lock protocol
#: records for its wait-die victims.
ERROR_FINAL_STATE = {
    ErrorKind.TIMEOUT: QueryState.KILLED,
    ErrorKind.FATAL: QueryState.KILLED,
    ErrorKind.TRANSIENT: QueryState.ABORTED,
    ErrorKind.CONSTRAINT: QueryState.ABORTED,
}


class OpKind(enum.Enum):
    """Backend-neutral statement shapes the planner emits.

    The four shapes cover the canonical workload mix: OLTP point
    reads/writes, BI range aggregations whose touched-row span scales
    with the spec's sampled cost, and maintenance utilities.
    """

    POINT_READ = "point_read"
    POINT_WRITE = "point_write"
    RANGE_AGG = "range_agg"
    MAINTENANCE = "maintenance"


@dataclass(frozen=True)
class Operation:
    """One backend-neutral statement: a shape plus its parameters.

    ``key`` anchors point operations and range scans in the seeded key
    space; ``span`` is how many rows the statement touches — the knob
    the planner uses to make expensive spec draws expensive SQL.
    """

    kind: OpKind
    key: int = 0
    span: int = 1
    payload: str = ""


class BackendDriver(abc.ABC):
    """One real execution engine behind the backend runner.

    Connections are opaque to the runner — it only moves them between
    the pool and :meth:`execute`.  Drivers must be safe for concurrent
    use of *distinct* connections from multiple threads; a single
    connection is only ever used by one worker at a time (the pool
    guarantees exclusivity).
    """

    name: str = "abstract"

    @abc.abstractmethod
    def setup(self, seed: int = 0, rows: int = 10_000) -> None:
        """Create the schema and deterministically seed ``rows`` rows.

        Seeding must be a pure function of ``seed`` and ``rows`` so two
        runs against fresh databases see identical data.
        """

    @abc.abstractmethod
    def connect(self) -> Any:
        """Open and return a new connection."""

    @abc.abstractmethod
    def close_connection(self, conn: Any) -> None:
        """Close a connection (errors are the caller's to ignore)."""

    @abc.abstractmethod
    def healthcheck(self, conn: Any) -> bool:
        """True when the connection can still serve statements."""

    @abc.abstractmethod
    def execute(
        self, conn: Any, op: Operation, deadline: Optional[float] = None
    ) -> int:
        """Run one operation; return the rows touched.

        ``deadline`` is an absolute ``time.monotonic()`` instant after
        which the driver should abort the statement with an error that
        classifies as :attr:`ErrorKind.TIMEOUT`.
        """

    @abc.abstractmethod
    def classify_error(self, error: Exception) -> ErrorKind:
        """Map an exception raised by :meth:`execute` onto the taxonomy."""

    def teardown(self) -> None:
        """Release everything :meth:`setup` created (optional override)."""


def make_backend(name: str, **kwargs: Any) -> BackendDriver:
    """Construct a driver by name (``sqlite`` or ``postgres``).

    Raises :class:`BackendUnavailable` when the named backend cannot run
    in this environment, and ``ValueError`` for unknown names.
    """
    if name == "sqlite":
        from repro.backends.sqlite import SQLiteBackend

        return SQLiteBackend(**kwargs)
    if name == "postgres":
        from repro.backends.postgres import PostgresBackend

        return PostgresBackend(**kwargs)
    raise ValueError(f"unknown backend {name!r} (expected sqlite or postgres)")
