"""Calibration: fit simulator cost models from real execution traces.

The simulator's :class:`~repro.engine.query.CostVector` speaks abstract
"seconds of demand"; a real backend speaks microseconds of SQLite or
Postgres wall time.  Calibration closes that unit gap: from a captured
:class:`~repro.workloads.traces.QueryLog` it fits, per statement class
(the ``workload:class`` sql label), a linear model

    ``service_seconds ≈ intercept + slope · estimated_total_work``

by least squares over the completed records.  The fitted
:class:`CostModel` then maps any planned statement's *estimated* cost to
a predicted real service time, which the comparison harness installs as
the simulated query's demand.  Classes with too few samples (or no
spread in estimated work) fall back to their mean service time, and
unseen labels fall back to a global fit — a trace never fails to
calibrate, it just calibrates more coarsely.

Times are fitted in *schedule* units: measured wall-clock service is
divided by the run's ``time_scale`` so a model fitted from a compressed
CI run predicts durations on the schedule's own axis, directly
comparable with simulator time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.engine.query import CostVector
from repro.errors import ConfigurationError
from repro.workloads.traces import QueryLogRecord

#: Predictions never go below this — the engine treats sub-nanosecond
#: demands as instantaneous, which would erase queueing effects.
_MIN_SERVICE_S = 1e-6


@dataclass(frozen=True)
class ClassFit:
    """Linear service-time model for one statement class."""

    label: str
    slope: float
    intercept: float
    samples: int

    def predict(self, total_work: float) -> float:
        return max(_MIN_SERVICE_S, self.intercept + self.slope * total_work)

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "slope": self.slope,
            "intercept": self.intercept,
            "samples": self.samples,
        }


@dataclass(frozen=True)
class CostModel:
    """Per-class service-time predictors plus a global fallback."""

    fits: Mapping[str, ClassFit]
    fallback: ClassFit
    time_scale: float = 1.0

    def fit_for(self, label: Optional[str]) -> ClassFit:
        if label is not None and label in self.fits:
            return self.fits[label]
        return self.fallback

    def predict_seconds(self, label: Optional[str], total_work: float) -> float:
        """Predicted real service time (schedule units) for a statement."""
        return self.fit_for(label).predict(total_work)

    def calibrated_cost(
        self, label: Optional[str], estimated: CostVector
    ) -> CostVector:
        """A simulator cost whose nominal duration is the predicted
        service time.

        Pure CPU demand with no locks: the real backend's contention is
        already folded into the measured service times the fit consumed,
        so re-simulating it would double-count.
        """
        predicted = self.predict_seconds(label, estimated.total_work)
        return CostVector(cpu_seconds=predicted, rows=estimated.rows)

    def as_dict(self) -> Dict[str, object]:
        return {
            "time_scale": self.time_scale,
            "fallback": self.fallback.as_dict(),
            "fits": {label: fit.as_dict() for label, fit in self.fits.items()},
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "CostModel":
        def _fit(raw: Mapping[str, object]) -> ClassFit:
            return ClassFit(
                label=str(raw["label"]),
                slope=float(raw["slope"]),
                intercept=float(raw["intercept"]),
                samples=int(raw["samples"]),
            )

        return CostModel(
            fits={
                str(label): _fit(raw)
                for label, raw in dict(data["fits"]).items()
            },
            fallback=_fit(data["fallback"]),
            time_scale=float(data.get("time_scale", 1.0)),
        )


def _fit_class(label: str, work: np.ndarray, service: np.ndarray) -> ClassFit:
    """Least-squares line, degraded to the mean when ill-conditioned."""
    samples = int(work.size)
    mean_service = float(service.mean())
    if samples >= 2 and float(work.std()) > 1e-12:
        slope, intercept = np.polyfit(work, service, 1)
        slope = float(max(0.0, slope))
        intercept = float(intercept)
        if intercept < 0.0:
            # a negative floor would predict negative service for light
            # statements; re-anchor at the observed minimum instead
            intercept = max(0.0, float(service.min()) - slope * float(work.min()))
    else:
        slope, intercept = 0.0, mean_service
    return ClassFit(label=label, slope=slope, intercept=intercept, samples=samples)


def fit_cost_model(
    records: Iterable[QueryLogRecord],
    time_scale: float = 1.0,
    min_samples: int = 5,
) -> CostModel:
    """Fit a :class:`CostModel` from a captured trace.

    Only completed records with both timestamps contribute; a class gets
    its own line once it has ``min_samples`` of them, otherwise its
    samples still inform the global fallback fit.
    """
    if time_scale <= 0:
        raise ConfigurationError(f"time_scale must be positive, got {time_scale}")
    by_label: Dict[str, list] = {}
    all_points = []
    for record in records:
        if not record.completed:
            continue
        if record.start_time is None or record.end_time is None:
            continue
        service = (record.end_time - record.start_time) / time_scale
        if service < 0:
            continue
        point = (record.estimated_cost.total_work, service)
        by_label.setdefault(record.sql or "", []).append(point)
        all_points.append(point)
    if not all_points:
        raise ConfigurationError(
            "no completed records with timings; cannot fit a cost model"
        )
    everything = np.asarray(all_points, dtype=np.float64)
    fallback = _fit_class("*", everything[:, 0], everything[:, 1])
    fits: Dict[str, ClassFit] = {}
    for label, points in sorted(by_label.items()):
        if len(points) < min_samples:
            continue
        data = np.asarray(points, dtype=np.float64)
        fits[label] = _fit_class(label, data[:, 0], data[:, 1])
    return CostModel(fits=fits, fallback=fallback, time_scale=time_scale)


def service_error(
    records: Iterable[QueryLogRecord],
    model: Optional[CostModel] = None,
    time_scale: float = 1.0,
) -> float:
    """Mean absolute service-time prediction error over a trace.

    With ``model=None`` the predictor is the *uncalibrated* convention —
    a statement's service time equals its estimated total work, which is
    exactly what the simulator assumes before calibration.  Comparing
    the two errors on the same trace is the acceptance check that
    calibration actually helped.
    """
    if time_scale <= 0:
        raise ConfigurationError(f"time_scale must be positive, got {time_scale}")
    errors = []
    for record in records:
        if not record.completed:
            continue
        if record.start_time is None or record.end_time is None:
            continue
        actual = (record.end_time - record.start_time) / time_scale
        work = record.estimated_cost.total_work
        if model is None:
            predicted = work
        else:
            predicted = model.predict_seconds(record.sql or "", work)
        errors.append(abs(predicted - actual))
    if not errors:
        raise ConfigurationError("no completed records with timings to score")
    return float(np.mean(errors))
