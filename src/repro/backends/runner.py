"""The backend runner: paced, rate-limited, robust statement execution.

:class:`BackendRunner` plays a :class:`~repro.backends.plan.StatementPlan`
against a real :class:`~repro.backends.base.BackendDriver`:

* the main thread paces arrivals at their scheduled instants
  (:class:`~repro.backends.rate.ArrivalPacer`) and applies the optional
  max-rate token bucket;
* an admission gate — the real-system twin of
  :class:`~repro.admission.threshold.ThresholdAdmission` — may reject a
  statement on its *estimated* cost or on the outstanding count before
  it ever reaches the engine;
* a bounded worker pool (``mpl`` threads — the MPL of the real system)
  executes admitted statements over pooled connections, with a
  per-statement timeout, bounded exponential-backoff retry of transient
  errors, and the :class:`~repro.backends.base.ErrorKind` taxonomy
  deciding each failure's final :class:`~repro.engine.query.QueryState`;
* an optional sleep throttle stretches matching statements' service
  time by ``sleep/(1-sleep)`` — precisely the paper's §4.2.2 "constant
  throttle" (many short self-imposed sleeps ≡ a speed cap of
  ``1-sleep``), which is what the simulator's ``set_throttle`` applies.

Every statement — completed, rejected, killed or aborted — is recorded
through the standard :class:`~repro.workloads.traces.QueryLog`, so
windowed characterization, replay and the DBQL pipeline work unchanged
on real traces.  Times in the log are wall-clock seconds relative to
the run's start.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional

from repro.backends.base import (
    BackendDriver,
    ERROR_FINAL_STATE,
    ErrorKind,
)
from repro.backends.plan import PlannedStatement, StatementPlan
from repro.backends.pool import ConnectionPool, PoolStats
from repro.backends.rate import ArrivalPacer, TokenBucket
from repro.engine.query import Query, QueryState
from repro.errors import ConfigurationError
from repro.workloads.traces import QueryLog


@dataclass(frozen=True)
class RunConfig:
    """Knobs of a real-backend run."""

    mpl: int = 4                               # concurrent statements
    pool_size: Optional[int] = None            # default: mpl
    max_rate: Optional[float] = None           # token bucket, stmts/sec
    burst: Optional[float] = None              # bucket capacity
    time_scale: float = 1.0                    # real secs per schedule sec
    statement_timeout_s: Optional[float] = 5.0
    max_retries: int = 2
    retry_backoff_s: float = 0.005             # base of exponential backoff
    rows: int = 10_000                         # seeded table size
    setup_seed: int = 0
    health_check_every: int = 25

    def __post_init__(self) -> None:
        if self.mpl < 1:
            raise ConfigurationError(f"mpl must be >= 1, got {self.mpl}")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")


@dataclass(frozen=True)
class AdmissionGate:
    """Arrival-time thresholds applied before dispatch (paper §3.2).

    ``cost_limit`` rejects on the optimizer's estimate, exactly like
    ``ThresholdAdmission`` with ``reject_over_cost``; ``max_outstanding``
    rejects when admitted-but-unfinished statements reach the bound
    (an MPL gate with ``queue_when_full=False`` — queueing at the MPL
    is what the bounded worker pool itself provides).
    """

    cost_limit: Optional[float] = None
    max_outstanding: Optional[int] = None

    def decide(self, query: Query, outstanding: int) -> Optional[str]:
        """Rejection reason, or None to admit."""
        if self.cost_limit is not None:
            estimated = query.estimated_cost.total_work
            if estimated > self.cost_limit:
                return (
                    f"estimated cost {estimated:.1f}s exceeds limit "
                    f"{self.cost_limit:.1f}s"
                )
        if self.max_outstanding is not None and outstanding >= self.max_outstanding:
            return f"outstanding limit {self.max_outstanding} reached"
        return None


@dataclass(frozen=True)
class SleepThrottle:
    """Constant throttle: stretch matching statements by a sleep.

    A sleep fraction ``s`` after a statement that ran for ``t`` seconds
    sleeps ``t * s/(1-s)``, making the statement's total service time
    ``t/(1-s)`` — the same stretch a fluid-engine speed cap of ``1-s``
    produces (§4.2.2).
    """

    workloads: FrozenSet[str] = frozenset()
    sleep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.sleep_fraction < 1.0:
            raise ConfigurationError(
                f"sleep_fraction must be in [0,1), got {self.sleep_fraction}"
            )

    def applies_to(self, workload: Optional[str]) -> bool:
        return not self.workloads or workload in self.workloads

    def stretch_for(self, elapsed: float) -> float:
        s = self.sleep_fraction
        return elapsed * s / (1.0 - s) if s > 0 else 0.0


@dataclass
class RunReport:
    """Everything a real run produced, log included."""

    log: QueryLog
    planned: int = 0
    completed: int = 0
    rejected: int = 0
    killed: int = 0
    aborted: int = 0
    retries: int = 0
    timeouts: int = 0
    rows_touched: int = 0
    wall_s: float = 0.0
    rate_wait_s: float = 0.0
    max_lateness_s: float = 0.0
    error_counts: Dict[str, int] = field(default_factory=dict)
    pool: PoolStats = field(default_factory=PoolStats)

    @property
    def recorded(self) -> int:
        return len(self.log)

    @property
    def conserved(self) -> bool:
        """Every planned statement has exactly one log record."""
        return self.recorded == self.planned

    @property
    def effective_rate(self) -> float:
        return self.recorded / self.wall_s if self.wall_s > 0 else 0.0

    def summary_line(self) -> str:
        return (
            f"{self.planned} planned: {self.completed} completed, "
            f"{self.rejected} rejected, {self.killed} killed, "
            f"{self.aborted} aborted ({self.retries} retries, "
            f"{self.timeouts} timeouts) in {self.wall_s:.3f}s wall "
            f"({self.effective_rate:.0f} stmts/s)"
        )


class BackendRunner:
    """Execute a statement plan against a backend driver.

    ``clock``/``sleep`` are injectable for tests; production runs use
    ``time.monotonic``/``time.sleep``.
    """

    def __init__(
        self,
        driver: BackendDriver,
        plan: StatementPlan,
        config: Optional[RunConfig] = None,
        admission: Optional[AdmissionGate] = None,
        throttle: Optional[SleepThrottle] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.driver = driver
        self.plan = plan
        self.config = config or RunConfig()
        self.admission = admission
        self.throttle = throttle
        self._clock = clock
        self._sleep = sleep
        self._t0 = 0.0
        self._lock = threading.Lock()
        self._outstanding = 0
        self._report: Optional[RunReport] = None

    # ------------------------------------------------------------------
    def _now(self) -> float:
        """Seconds since the run started (what the log records)."""
        return self._clock() - self._t0

    def _record(self, query: Query) -> None:
        with self._lock:
            self._report.log.record_query(query)

    # ------------------------------------------------------------------
    def run(self) -> RunReport:
        """Set up, pace every statement through, and report."""
        config = self.config
        report = RunReport(log=QueryLog(), planned=len(self.plan))
        self._report = report
        self.driver.setup(seed=config.setup_seed, rows=config.rows)
        pool = ConnectionPool(
            self.driver,
            size=config.pool_size or config.mpl,
            health_check_every=config.health_check_every,
        )
        report.pool = pool.stats
        pacer = ArrivalPacer(
            time_scale=config.time_scale, clock=self._clock, sleep=self._sleep
        )
        bucket = (
            TokenBucket(
                config.max_rate,
                burst=config.burst,
                clock=self._clock,
                sleep=self._sleep,
            )
            if config.max_rate is not None
            else None
        )
        executor = ThreadPoolExecutor(
            max_workers=config.mpl, thread_name_prefix="repro-backend"
        )
        futures = []
        self._t0 = pacer.start()
        try:
            for statement in self.plan:
                pacer.wait_until(statement.submit_at)
                if bucket is not None:
                    bucket.acquire()
                query = statement.make_query()
                query.transition(QueryState.SUBMITTED)
                query.submit_time = self._now()
                if self.admission is not None:
                    with self._lock:
                        outstanding = self._outstanding
                    reason = self.admission.decide(query, outstanding)
                    if reason is not None:
                        query.transition(QueryState.REJECTED)
                        query.end_time = self._now()
                        report.rejected += 1
                        self._record(query)
                        continue
                query.transition(QueryState.QUEUED)
                with self._lock:
                    self._outstanding += 1
                futures.append(
                    executor.submit(self._execute_one, pool, query, statement)
                )
            wait(futures)
        finally:
            executor.shutdown(wait=True)
            pool.close()
            self.driver.teardown()
        report.wall_s = self._now()
        report.max_lateness_s = pacer.max_lateness_s
        if bucket is not None:
            report.rate_wait_s = bucket.total_wait_s
        return report

    # ------------------------------------------------------------------
    def _execute_one(
        self, pool: ConnectionPool, query: Query, statement: PlannedStatement
    ) -> None:
        """Worker body: timeout, bounded retry, taxonomy, recording."""
        config = self.config
        report = self._report
        attempts = 0
        started = False
        try:
            while True:
                conn = pool.acquire()
                if not started:
                    query.transition(QueryState.RUNNING)
                    query.start_time = self._now()
                    started = True
                deadline = (
                    self._clock() + config.statement_timeout_s
                    if config.statement_timeout_s is not None
                    else None
                )
                began = self._clock()
                try:
                    rows = self.driver.execute(conn, statement.op, deadline)
                except Exception as error:  # noqa: BLE001 - taxonomy below
                    kind = self.driver.classify_error(error)
                    pool.release(conn, healthy=kind is not ErrorKind.FATAL)
                    if kind.retryable and attempts < config.max_retries:
                        attempts += 1
                        with self._lock:
                            report.retries += 1
                        backoff = config.retry_backoff_s * (2 ** (attempts - 1))
                        self._sleep(backoff)
                        continue
                    final = ERROR_FINAL_STATE[kind]
                    query.transition(final)
                    query.end_time = self._now()
                    with self._lock:
                        if final is QueryState.KILLED:
                            report.killed += 1
                        else:
                            report.aborted += 1
                        if kind is ErrorKind.TIMEOUT:
                            report.timeouts += 1
                        name = kind.value
                        report.error_counts[name] = (
                            report.error_counts.get(name, 0) + 1
                        )
                    self._record(query)
                    return
                else:
                    elapsed = self._clock() - began
                    pool.release(conn)
                    if self.throttle is not None and self.throttle.applies_to(
                        query.workload_name
                    ):
                        stretch = self.throttle.stretch_for(elapsed)
                        if stretch > 0:
                            self._sleep(stretch)
                    query.progress = 1.0
                    query.transition(QueryState.COMPLETED)
                    query.end_time = self._now()
                    with self._lock:
                        report.completed += 1
                        report.rows_touched += rows
                    self._record(query)
                    return
        finally:
            with self._lock:
                self._outstanding -= 1


def run_plan(
    driver: BackendDriver,
    plan: StatementPlan,
    config: Optional[RunConfig] = None,
    admission: Optional[AdmissionGate] = None,
    throttle: Optional[SleepThrottle] = None,
) -> RunReport:
    """One-call convenience wrapper around :class:`BackendRunner`."""
    return BackendRunner(
        driver, plan, config=config, admission=admission, throttle=throttle
    ).run()
