"""Rate control for real-backend runs: token bucket + arrival pacing.

Two complementary controls, mirroring dbworkload's ``--max-rate`` and
scheduled-run options:

* :class:`ArrivalPacer` maps the *scheduled* arrival times a workload
  spec's arrival process drew (Poisson, batch — the same
  :mod:`repro.workloads.models` processes the simulator consumes) onto
  the wall clock, optionally compressed/stretched by ``time_scale``.
  This is what makes a real run follow the same open-arrival shape as
  its simulated twin.
* :class:`TokenBucket` caps the *instantaneous* statement rate
  regardless of what the schedule asks for — the classic max-rate
  throttle protecting a shared backend from a flash crowd in the
  schedule.

Both take injectable ``clock``/``sleep`` callables so tests can drive
them on a virtual clock deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import ConfigurationError

Clock = Callable[[], float]
Sleep = Callable[[float], None]


class TokenBucket:
    """A max-rate gate: ``acquire`` blocks until a token is available.

    Tokens refill continuously at ``rate`` per second up to ``burst``;
    each statement consumes one.  With ``burst=1`` the bucket enforces a
    hard minimum spacing of ``1/rate`` seconds; larger bursts tolerate
    short clumps while holding the long-run average at ``rate``.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Clock = time.monotonic,
        sleep: Sleep = time.sleep,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate / 10.0)
        if self.burst < 1.0:
            raise ConfigurationError("burst must allow at least one token")
        self._clock = clock
        self._sleep = sleep
        self._tokens = self.burst
        self._last = clock()
        self.total_wait_s = 0.0
        self.acquired = 0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    def acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens``, sleeping as needed; returns seconds waited."""
        self._refill()
        waited = 0.0
        if self._tokens < tokens:
            shortfall = tokens - self._tokens
            waited = shortfall / self.rate
            self._sleep(waited)
            self._refill()
        self._tokens = max(0.0, self._tokens - tokens)
        self.total_wait_s += waited
        self.acquired += 1
        return waited


class ArrivalPacer:
    """Plays a schedule of arrival offsets onto the wall clock.

    ``time_scale`` converts schedule seconds to real seconds: 1.0 paces
    in real time, 0.05 compresses a 60 s schedule into 3 s of wall clock
    (the CI setting), values above 1.0 slow it down.  The pacer never
    *delays* late arrivals — if execution fell behind schedule the next
    statement dispatches immediately and the lateness is reported.
    """

    def __init__(
        self,
        time_scale: float = 1.0,
        clock: Clock = time.monotonic,
        sleep: Sleep = time.sleep,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError(
                f"time_scale must be positive, got {time_scale}"
            )
        self.time_scale = float(time_scale)
        self._clock = clock
        self._sleep = sleep
        self._t0: Optional[float] = None
        self.max_lateness_s = 0.0

    def start(self) -> float:
        """Anchor schedule time zero at the current clock; returns it."""
        self._t0 = self._clock()
        return self._t0

    @property
    def started(self) -> bool:
        return self._t0 is not None

    def elapsed(self) -> float:
        """Real seconds since :meth:`start`."""
        if self._t0 is None:
            raise ConfigurationError("pacer not started")
        return self._clock() - self._t0

    def wait_until(self, scheduled: float) -> float:
        """Block until schedule instant ``scheduled``; returns lateness.

        A zero return means the arrival dispatched on time; positive is
        how far behind schedule the runner already was.
        """
        if self._t0 is None:
            raise ConfigurationError("pacer not started")
        target = self._t0 + scheduled * self.time_scale
        delta = target - self._clock()
        if delta > 0:
            self._sleep(delta)
            return 0.0
        lateness = -delta
        if lateness > self.max_lateness_s:
            self.max_lateness_s = lateness
        return lateness
