"""Static workload characterization (paper §3.1, §2.2).

"Static workload characterization defines the workloads before requests
arrive...  The main features of the techniques are the differentiation
of arriving requests based on their operational properties, the mapping
of the requests to a workload, and the resource allocation to the
workloads."

Two commercial styles are implemented:

* :class:`StaticCharacterizer` — ordered :class:`WorkloadDefinition`
  rules combining *origin* predicates ("who": application, user, client
  IP — DB2 connection attributes, Teradata classification criteria) and
  *type* criteria ("what": statement type, estimated cost, estimated
  rows — DB2 work classes, Teradata "what" criteria);
* :class:`ClassifierFunctionCharacterizer` — a user-written scalar
  function evaluated per session/request, SQL Server Resource
  Governor's classification component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.core.classify import Feature
from repro.core.interfaces import Characterizer, ManagerContext
from repro.engine.query import Query, StatementType
from repro.engine.sessions import Session


@dataclass(frozen=True)
class AttributePredicate:
    """Match on one connection attribute ("who" criteria).

    ``pattern`` supports a trailing ``*`` wildcard, which is how the
    commercial facilities' matching rules are usually written
    ("APP_NAME LIKE 'report%'").
    """

    attribute: str
    pattern: str

    def matches(self, session: Optional[Session]) -> bool:
        """Whether the session's attribute satisfies the predicate."""
        if session is None:
            return False
        value = session.attributes.get(self.attribute)
        if self.pattern.endswith("*"):
            return value.startswith(self.pattern[:-1])
        return value == self.pattern


@dataclass(frozen=True)
class WorkClassCriteria:
    """Match on request type ("what" criteria, DB2 work classes).

    Any criterion left None is a wildcard.  Cost/row bounds compare the
    *estimated* cost, as the predictive work-class elements do ("create
    a work class for all large queries with an estimated cost over
    1,000,000 timerons").
    """

    statement_types: Optional[Tuple[StatementType, ...]] = None
    min_estimated_cost: Optional[float] = None
    max_estimated_cost: Optional[float] = None
    min_estimated_rows: Optional[int] = None
    max_estimated_rows: Optional[int] = None

    def matches(self, query: Query) -> bool:
        """Whether the request's type/estimates satisfy the criteria."""
        if (
            self.statement_types is not None
            and query.statement_type not in self.statement_types
        ):
            return False
        cost = query.estimated_cost.total_work
        if self.min_estimated_cost is not None and cost < self.min_estimated_cost:
            return False
        if self.max_estimated_cost is not None and cost > self.max_estimated_cost:
            return False
        rows = query.estimated_cost.rows
        if self.min_estimated_rows is not None and rows < self.min_estimated_rows:
            return False
        if self.max_estimated_rows is not None and rows > self.max_estimated_rows:
            return False
        return True


@dataclass(frozen=True)
class WorkloadDefinition:
    """One workload-definition rule: who + what → workload."""

    workload: str
    priority: int = 1
    who: Tuple[AttributePredicate, ...] = ()
    what: Optional[WorkClassCriteria] = None
    service_class: Optional[str] = None

    def matches(self, query: Query, session: Optional[Session]) -> bool:
        """Whether both the who and what criteria accept the request."""
        if self.who and not all(p.matches(session) for p in self.who):
            return False
        if self.what is not None and not self.what.matches(query):
            return False
        return True


class StaticCharacterizer(Characterizer):
    """Ordered workload definitions with a default workload.

    First matching definition wins (evaluation order is part of the
    configuration in every commercial facility); unmatched requests fall
    into ``default_workload`` — SQL Server's *default workload group* /
    DB2's default user workload.
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.MAPS_REQUESTS_TO_WORKLOADS,
            Feature.PREDEFINED_WORKLOAD_RULES,
        }
    )

    def __init__(
        self,
        definitions: Sequence[WorkloadDefinition],
        default_workload: str = "default",
        default_priority: int = 1,
    ) -> None:
        self.definitions = list(definitions)
        self.default_workload = default_workload
        self.default_priority = default_priority
        self.matched_counts = {d.workload: 0 for d in self.definitions}
        self.default_count = 0

    def identify(self, query: Query, context: ManagerContext) -> Optional[str]:
        session = context.sessions.get(query.session_id)
        for definition in self.definitions:
            if definition.matches(query, session):
                query.priority = definition.priority
                if definition.service_class is not None:
                    query.service_class = definition.service_class
                self.matched_counts[definition.workload] += 1
                return definition.workload
        self.default_count += 1
        query.priority = self.default_priority
        return self.default_workload


class ClassifierFunctionCharacterizer(Characterizer):
    """SQL Server-style classification function.

    ``function(query, session)`` returns a workload-group name or None.
    Mirrors Resource Governor semantics: None, an unknown group, or an
    exception classifies the request into the *default* group.
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.MAPS_REQUESTS_TO_WORKLOADS,
            Feature.PREDEFINED_WORKLOAD_RULES,
        }
    )

    def __init__(
        self,
        function: Callable[[Query, Optional[Session]], Optional[str]],
        known_groups: Sequence[str],
        default_group: str = "default",
        priorities: Optional[dict] = None,
    ) -> None:
        self.function = function
        self.known_groups = set(known_groups) | {default_group}
        self.default_group = default_group
        self.priorities = dict(priorities or {})
        self.classification_failures = 0

    def identify(self, query: Query, context: ManagerContext) -> Optional[str]:
        session = context.sessions.get(query.session_id)
        try:
            group = self.function(query, session)
        except Exception:
            # "a failure with the classification" -> default group
            self.classification_failures += 1
            group = None
        if group is None or group not in self.known_groups:
            if group is not None:
                self.classification_failures += 1
            group = self.default_group
        if group in self.priorities:
            query.priority = self.priorities[group]
        return group
