"""Dynamic workload characterization (paper §3.1, [19][73]).

"Dynamic workload characterization identifies the type of a workload
when it is present on a database server...  the system learns the
characteristics of sample workloads running on a database server,
builds a workload classifier and uses the workload classifier to
dynamically identify unknown arriving workloads."

Three pieces:

* :class:`QueryTypeClassifier` — supervised classifier (naive Bayes or
  decision tree) over per-query features;
* :class:`WorkloadPhaseDetector` — classifies query-log *windows* into
  workload types (the [19] formulation: is the server currently seeing
  an OLTP, DSS/BI or mixed phase?);
* :class:`DynamicCharacterizer` — a manager plug-in that identifies
  each arriving request with a trained :class:`QueryTypeClassifier`
  (falling back to a default workload until trained).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.characterization.features import WindowFeatures, query_features
from repro.core.classify import Feature
from repro.core.interfaces import Characterizer, ManagerContext
from repro.engine.query import Query
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTreeClassifier
from repro.workloads.traces import QueryLogRecord


def _record_features(record: QueryLogRecord) -> List[float]:
    """Per-record analogue of :func:`query_features` (plan length fixed)."""
    import math

    from repro.engine.query import StatementType

    return [
        math.log1p(max(0.0, record.estimated_cost.total_work)),
        math.log1p(max(0.0, record.estimated_cost.memory_mb)),
        math.log1p(max(0.0, float(record.estimated_cost.rows))),
        1.0
        if record.statement_type
        in (StatementType.WRITE, StatementType.DML, StatementType.LOAD)
        else 0.0,
        float(record.plan_operators),
    ]


class QueryTypeClassifier:
    """Per-query workload-type classifier ('nb' or 'tree')."""

    def __init__(self, method: str = "nb") -> None:
        if method not in ("nb", "tree"):
            raise ValueError("method must be 'nb' or 'tree'")
        self.method = method
        self._nb = GaussianNaiveBayes()
        self._tree = DecisionTreeClassifier(max_depth=6)
        self.trained = False

    def fit_queries(self, queries: Sequence[Query], labels: Sequence[str]) -> None:
        """Train on live query objects with ground-truth labels."""
        X = [query_features(q) for q in queries]
        self._fit(X, list(labels))

    def fit_records(
        self, records: Sequence[QueryLogRecord], labels: Sequence[str]
    ) -> None:
        """Train on query-log records with ground-truth labels."""
        X = [_record_features(r) for r in records]
        self._fit(X, list(labels))

    def _fit(self, X: List[List[float]], y: List[str]) -> None:
        if self.method == "nb":
            self._nb.fit(X, y)
        else:
            self._tree.fit(X, y)
        self.trained = True

    def predict_query(self, query: Query) -> str:
        """Predicted workload type for an arriving query."""
        if not self.trained:
            raise RuntimeError("classifier is not trained")
        return self._predict_row(query_features(query))

    def predict_record(self, record: QueryLogRecord) -> str:
        """Classify a logged request (offline evaluation)."""
        if not self.trained:
            raise RuntimeError("classifier is not trained")
        return self._predict_row(_record_features(record))

    def _predict_row(self, row: List[float]) -> str:
        if self.method == "nb":
            return str(self._nb.predict_one(row))
        return str(self._tree.predict([row])[0])

    def accuracy_queries(
        self, queries: Sequence[Query], labels: Sequence[str]
    ) -> float:
        """Fraction of queries classified to their true label."""
        hits = sum(
            1
            for query, label in zip(queries, labels)
            if self.predict_query(query) == label
        )
        return hits / len(queries)


class WorkloadPhaseDetector:
    """Window-level workload-type detection (the [19] formulation)."""

    def __init__(self, method: str = "nb") -> None:
        if method not in ("nb", "tree"):
            raise ValueError("method must be 'nb' or 'tree'")
        self.method = method
        self._nb = GaussianNaiveBayes()
        self._tree = DecisionTreeClassifier(max_depth=5)
        self.trained = False

    def fit(
        self, windows: Sequence[WindowFeatures], labels: Sequence[str]
    ) -> None:
        """Train on labelled feature windows."""
        X = [w.vector() for w in windows]
        if self.method == "nb":
            self._nb.fit(X, list(labels))
        else:
            self._tree.fit(X, list(labels))
        self.trained = True

    def predict(self, window: WindowFeatures) -> str:
        """Predicted workload type for one window."""
        if not self.trained:
            raise RuntimeError("detector is not trained")
        if self.method == "nb":
            return str(self._nb.predict_one(window.vector()))
        return str(self._tree.predict([window.vector()])[0])

    def accuracy(
        self, windows: Sequence[WindowFeatures], labels: Sequence[str]
    ) -> float:
        """Fraction of windows classified to their true label."""
        hits = sum(
            1
            for window, label in zip(windows, labels)
            if self.predict(window) == label
        )
        return hits / len(windows)


class DynamicCharacterizer(Characterizer):
    """Identify arriving requests with a learned classifier.

    Until the classifier is trained, requests map to
    ``untrained_workload``.  Train it offline (fit on a labelled sample)
    or online by calling :meth:`train_from_log` with labels derived
    from, e.g., a period of oracle identification.
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.MAPS_REQUESTS_TO_WORKLOADS,
            Feature.LEARNS_FROM_SAMPLES,
        }
    )

    def __init__(
        self,
        classifier: Optional[QueryTypeClassifier] = None,
        priorities: Optional[dict] = None,
        untrained_workload: str = "default",
    ) -> None:
        self.classifier = classifier or QueryTypeClassifier()
        self.priorities = dict(priorities or {})
        self.untrained_workload = untrained_workload
        self.identified_counts: dict = {}

    def train_from_log(
        self,
        records: Sequence[QueryLogRecord],
        labels: Optional[Sequence[str]] = None,
    ) -> None:
        """Fit on log records; labels default to the recorded workloads."""
        if labels is None:
            labels = [r.workload or self.untrained_workload for r in records]
        self.classifier.fit_records(records, labels)

    def identify(self, query: Query, context: ManagerContext) -> Optional[str]:
        if not self.classifier.trained:
            return self.untrained_workload
        label = self.classifier.predict_query(query)
        self.identified_counts[label] = self.identified_counts.get(label, 0) + 1
        if label in self.priorities:
            query.priority = self.priorities[label]
        return label
