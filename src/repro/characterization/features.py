"""Feature extraction for dynamic workload characterization (§3.1).

Two granularities, matching the two surveyed uses:

* per-query features (:func:`query_features`) — for classifying an
  individual arriving request into a type (OLTP-ish vs. BI-ish);
* per-window features (:class:`WindowFeatures`) — aggregates over a
  query-log window, the "workload snapshot" representation Elnaffar et
  al. [19] classify to detect which kind of workload is present.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.engine.query import Query, StatementType
from repro.workloads.traces import QueryLogRecord

#: Order of the values returned by :func:`query_features`.
QUERY_FEATURE_NAMES = (
    "log_estimated_work",
    "log_estimated_memory",
    "log_estimated_rows",
    "is_write",
    "plan_length",
)


def query_features(query: Query) -> List[float]:
    """Pre-execution features of one request (no true costs)."""
    return [
        math.log1p(max(0.0, query.estimated_cost.total_work)),
        math.log1p(max(0.0, query.estimated_cost.memory_mb)),
        math.log1p(max(0.0, float(query.estimated_cost.rows))),
        1.0
        if query.statement_type
        in (StatementType.WRITE, StatementType.DML, StatementType.LOAD)
        else 0.0,
        float(len(query.plan)),
    ]


@dataclass(frozen=True)
class WindowFeatures:
    """Aggregate features of a query-log window."""

    arrival_rate: float
    mean_log_work: float
    std_log_work: float
    write_fraction: float
    mean_log_rows: float
    mean_log_memory: float

    FEATURE_NAMES = (
        "arrival_rate",
        "mean_log_work",
        "std_log_work",
        "write_fraction",
        "mean_log_rows",
        "mean_log_memory",
    )

    def vector(self) -> List[float]:
        """Feature values in FEATURE_NAMES order."""
        return [
            self.arrival_rate,
            self.mean_log_work,
            self.std_log_work,
            self.write_fraction,
            self.mean_log_rows,
            self.mean_log_memory,
        ]

    @staticmethod
    def from_records(
        records: Sequence[QueryLogRecord], window_seconds: float
    ) -> "WindowFeatures":
        """Aggregate one window of log records."""
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if not records:
            return WindowFeatures(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        log_work = [
            math.log1p(max(0.0, r.estimated_cost.total_work)) for r in records
        ]
        writes = sum(
            1
            for r in records
            if r.statement_type
            in (StatementType.WRITE, StatementType.DML, StatementType.LOAD)
        )
        return WindowFeatures(
            arrival_rate=len(records) / window_seconds,
            mean_log_work=float(np.mean(log_work)),
            std_log_work=float(np.std(log_work)),
            write_fraction=writes / len(records),
            mean_log_rows=float(
                np.mean(
                    [math.log1p(max(0.0, float(r.estimated_cost.rows))) for r in records]
                )
            ),
            mean_log_memory=float(
                np.mean(
                    [
                        math.log1p(max(0.0, r.estimated_cost.memory_mb))
                        for r in records
                    ]
                )
            ),
        )
