"""Workload characterization techniques (paper §3.1, Figure 1).

* :mod:`repro.characterization.static` — static characterization:
  workload definitions over connection attributes and work classes
  (DB2/Teradata style) and classifier functions (SQL Server style);
* :mod:`repro.characterization.features` — feature extraction from
  queries and query-log windows;
* :mod:`repro.characterization.dynamic` — dynamic characterization:
  machine-learned classifiers identifying request/workload types from
  observed behaviour [19][73].
"""

from repro.characterization.static import (
    AttributePredicate,
    WorkClassCriteria,
    WorkloadDefinition,
    StaticCharacterizer,
    ClassifierFunctionCharacterizer,
)
from repro.characterization.features import (
    query_features,
    QUERY_FEATURE_NAMES,
    WindowFeatures,
)
from repro.characterization.dynamic import (
    QueryTypeClassifier,
    WorkloadPhaseDetector,
    DynamicCharacterizer,
)

__all__ = [
    "AttributePredicate",
    "WorkClassCriteria",
    "WorkloadDefinition",
    "StaticCharacterizer",
    "ClassifierFunctionCharacterizer",
    "query_features",
    "QUERY_FEATURE_NAMES",
    "WindowFeatures",
    "QueryTypeClassifier",
    "WorkloadPhaseDetector",
    "DynamicCharacterizer",
]
