"""IBM DB2 Workload Manager model (paper §4.1.1, [30]).

The configuration vocabulary follows the three DB2 stages:

* **identification** — :class:`DB2Workload` (connection-attribute
  matching) and :class:`DB2WorkClass` (type + predictive elements:
  estimated cost, estimated rows);
* **management** — :class:`DB2ServiceClass` with service subclasses
  carrying agent priorities (our fair-share weights), and
  :class:`DB2Threshold` objects whose violation triggers actions:
  ``stop execution``, ``continue``, ``queue activities``, or a remap to
  a lower subclass (priority aging);
* **monitoring** — the manager's metrics/query log stand in for table
  functions and event monitors.

``DB2WorkloadManagerConfig.build()`` compiles all of it onto the
framework: static characterization, threshold-based admission
(estimated cost, concurrent activities), MPL queueing, priority aging
and query cancellation — exactly the technique set Table 4 lists for
DB2 WLM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.admission.threshold import ThresholdAdmission
from repro.characterization.static import (
    AttributePredicate,
    StaticCharacterizer,
    WorkClassCriteria,
    WorkloadDefinition,
)
from repro.core.policy import (
    AdmissionPolicy,
    Threshold,
    ThresholdAction,
    ThresholdKind,
)
from repro.engine.query import Query, StatementType
from repro.errors import ConfigurationError
from repro.execution.cancellation import KillRule, QueryKillController
from repro.execution.reprioritization import (
    PriorityAgingController,
    ServiceClassLadder,
)
from repro.scheduling.mpl import StaticMpl
from repro.scheduling.queues import MultiQueueScheduler
from repro.systems.base import SystemBundle


@dataclass(frozen=True)
class DB2Workload:
    """A DB2 workload object: identification by connection attributes."""

    name: str
    application: Optional[str] = None
    user: Optional[str] = None
    client_ip: Optional[str] = None
    service_class: str = "main"
    priority: int = 1

    def who_predicates(self) -> Tuple[AttributePredicate, ...]:
        predicates = []
        if self.application is not None:
            predicates.append(AttributePredicate("application", self.application))
        if self.user is not None:
            predicates.append(AttributePredicate("user", self.user))
        if self.client_ip is not None:
            predicates.append(AttributePredicate("client_ip", self.client_ip))
        return tuple(predicates)


@dataclass(frozen=True)
class DB2WorkClass:
    """A work class: identification by the type of incoming work."""

    name: str
    statement_types: Optional[Tuple[StatementType, ...]] = None
    min_estimated_cost: Optional[float] = None     # "timerons"
    min_estimated_rows: Optional[int] = None
    workload: str = "default"
    priority: int = 1
    service_class: str = "main"

    def criteria(self) -> WorkClassCriteria:
        return WorkClassCriteria(
            statement_types=self.statement_types,
            min_estimated_cost=self.min_estimated_cost,
            min_estimated_rows=self.min_estimated_rows,
        )


@dataclass(frozen=True)
class DB2ServiceClass:
    """A service class with its subclasses' agent priorities (weights)."""

    name: str
    subclass_weights: Tuple[Tuple[str, float], ...] = (
        ("high", 4.0),
        ("medium", 2.0),
        ("low", 1.0),
    )

    def ladder(self) -> ServiceClassLadder:
        return ServiceClassLadder(levels=self.subclass_weights)


@dataclass(frozen=True)
class DB2Threshold:
    """A DB2 threshold object: limit + action on violation.

    Supported kinds map onto DB2's ELAPSEDTIME, ESTIMATEDSQLCOST,
    SQLROWSRETURNED and CONCURRENTDBACTIVITIES thresholds; supported
    actions are STOP_EXECUTION, REJECT (for predictive thresholds),
    QUEUE (concurrency) and DEMOTE (remap action / priority aging).
    """

    kind: ThresholdKind
    limit: float
    action: ThresholdAction
    workload: Optional[str] = None       # None = database-wide

    def as_policy_threshold(self) -> Threshold:
        return Threshold(self.kind, self.limit, self.action)


@dataclass
class DB2WorkloadManagerConfig:
    """A complete DB2 WLM setup, compiled by :meth:`build`."""

    workloads: Sequence[DB2Workload] = ()
    work_classes: Sequence[DB2WorkClass] = ()
    service_classes: Sequence[DB2ServiceClass] = (DB2ServiceClass("main"),)
    thresholds: Sequence[DB2Threshold] = ()
    default_workload: str = "default"
    global_mpl: Optional[int] = None

    def build(self) -> SystemBundle:
        """Compile to framework components."""
        definitions: List[WorkloadDefinition] = []
        # Work classes evaluate first (type beats origin for predictive
        # gating), then connection-attribute workloads.
        for work_class in self.work_classes:
            definitions.append(
                WorkloadDefinition(
                    workload=work_class.workload,
                    priority=work_class.priority,
                    what=work_class.criteria(),
                    service_class=work_class.service_class,
                )
            )
        for workload in self.workloads:
            definitions.append(
                WorkloadDefinition(
                    workload=workload.name,
                    priority=workload.priority,
                    who=workload.who_predicates(),
                    service_class=workload.service_class,
                )
            )
        characterizer = StaticCharacterizer(
            definitions, default_workload=self.default_workload
        )

        reject_cost: Dict[Optional[str], float] = {}
        mpl_limits: Dict[Optional[str], int] = {}
        kill_rules: List[KillRule] = []
        aging_thresholds: List[Threshold] = []
        for threshold in self.thresholds:
            if threshold.action is ThresholdAction.REJECT:
                if threshold.kind is not ThresholdKind.ESTIMATED_COST:
                    raise ConfigurationError(
                        "REJECT thresholds must be on estimated cost"
                    )
                reject_cost[threshold.workload] = threshold.limit
            elif threshold.action is ThresholdAction.QUEUE:
                if threshold.kind is not ThresholdKind.CONCURRENCY:
                    raise ConfigurationError(
                        "QUEUE thresholds must be on concurrency"
                    )
                mpl_limits[threshold.workload] = int(threshold.limit)
            elif threshold.action is ThresholdAction.STOP_EXECUTION:
                kill_rules.append(
                    KillRule(threshold=threshold.as_policy_threshold())
                )
            elif threshold.action is ThresholdAction.DEMOTE:
                aging_thresholds.append(threshold.as_policy_threshold())
            elif threshold.action is ThresholdAction.CONTINUE:
                continue  # collect-data-only thresholds have no control effect
            else:
                raise ConfigurationError(
                    f"unsupported DB2 threshold action {threshold.action}"
                )

        per_workload_admission = {
            name: AdmissionPolicy(reject_over_cost=limit)
            for name, limit in reject_cost.items()
            if name is not None
        }
        default_admission = AdmissionPolicy(
            reject_over_cost=reject_cost.get(None)
        )
        admission = ThresholdAdmission(
            default_policy=default_admission, per_workload=per_workload_admission
        )

        scheduler = MultiQueueScheduler(
            global_mpl=self.global_mpl,
            per_workload_mpl={
                name: limit for name, limit in mpl_limits.items() if name is not None
            },
        )
        if None in mpl_limits:
            scheduler.global_mpl = StaticMpl(mpl_limits[None])

        controllers: List = []
        ladder = self.service_classes[0].ladder() if self.service_classes else None
        if aging_thresholds:
            controllers.append(
                PriorityAgingController(
                    ladder=ladder, thresholds=aging_thresholds
                )
            )
        if kill_rules:
            controllers.append(QueryKillController(rules=kill_rules))

        ladder_weights = (
            dict(self.service_classes[0].subclass_weights)
            if self.service_classes
            else {}
        )

        def weight_fn(query: Query) -> float:
            level = query.service_class
            if level in ladder_weights:
                return ladder_weights[level]
            return float(max(query.priority, 1))

        return SystemBundle(
            characterizer=characterizer,
            admission=admission,
            scheduler=scheduler,
            execution_controllers=controllers,
            weight_fn=weight_fn,
            name="IBM DB2 Workload Manager",
        )
