"""Shared plumbing for the commercial system models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.interfaces import (
    AdmissionController,
    Characterizer,
    ExecutionController,
    Scheduler,
)
from repro.core.manager import WorkloadManager
from repro.engine.executor import EngineConfig
from repro.engine.query import Query
from repro.engine.resources import MachineSpec
from repro.engine.simulator import Simulator


@dataclass
class SystemBundle:
    """A compiled system configuration, ready to plug into a manager.

    Produced by each system model's ``build()``; consumed by
    :meth:`SystemBundle.create_manager` (or passed piecewise to
    :class:`~repro.core.manager.WorkloadManager`).
    """

    characterizer: Characterizer
    admission: AdmissionController
    scheduler: Scheduler
    execution_controllers: List[ExecutionController] = field(default_factory=list)
    weight_fn: Optional[Callable[[Query], float]] = None
    name: str = "system"

    def create_manager(
        self,
        sim: Simulator,
        machine: Optional[MachineSpec] = None,
        engine_config: Optional[EngineConfig] = None,
        control_period: float = 1.0,
        **kwargs,
    ) -> WorkloadManager:
        """Instantiate a WorkloadManager running this system model."""
        return WorkloadManager(
            sim,
            machine=machine,
            engine_config=engine_config,
            characterizer=self.characterizer,
            admission=self.admission,
            scheduler=self.scheduler,
            execution_controllers=list(self.execution_controllers),
            weight_fn=self.weight_fn,
            control_period=control_period,
            **kwargs,
        )
