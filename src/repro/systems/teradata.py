"""Teradata Active System Management model (paper §4.1.3, [71][72]).

Components mirrored:

* **Teradata Workload Analyzer** (:class:`TeradataWorkloadAnalyzer`) —
  analyzes the query log (DBQL) and recommends candidate workload
  definitions, with merge/split refinement;
* **filters** — :class:`ObjectAccessFilter` (reject by source,
  statement type or accessed database object) and
  :class:`QueryResourceFilter` (reject queries estimated to access too
  many rows or take too long);
* **throttles** — :class:`WorkloadThrottle` and :class:`ObjectThrottle`
  concurrency rules putting excess queries on a delay queue;
* **workload definitions** (:class:`TeradataWorkloadDefinition`) —
  classification criteria (who/where/what), priority / allocation
  group, SLGs, and exception criteria+actions handled by the
  **regulator** (abort, or change-workload = demotion).

``TeradataASMConfig.build()`` compiles to static characterization,
composite admission (filters then throttles), multi-queue scheduling
and regulator execution controllers — the Table 4 technique set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.admission.base import CompositeAdmission
from repro.admission.threshold import ThresholdAdmission
from repro.characterization.static import (
    AttributePredicate,
    StaticCharacterizer,
    WorkClassCriteria,
    WorkloadDefinition,
)
from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    ManagerContext,
)
from repro.core.policy import Threshold, ThresholdAction, ThresholdKind
from repro.engine.query import Query, StatementType
from repro.errors import ConfigurationError
from repro.execution.cancellation import KillRule, QueryKillController
from repro.execution.reprioritization import (
    PriorityAgingController,
    ServiceClassLadder,
)
from repro.scheduling.queues import MultiQueueScheduler
from repro.systems.base import SystemBundle
from repro.workloads.traces import QueryLog, QueryLogRecord


# ----------------------------------------------------------------------
# filters (reject before execution)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectAccessFilter:
    """Reject requests by origin, statement type or accessed object.

    "The object access filters limit access to specific database
    objects for certain or all types of SQL requests" (§4.1.3).
    """

    name: str
    reject_applications: Tuple[str, ...] = ()
    reject_statement_types: Tuple[StatementType, ...] = ()
    reject_objects: Tuple[str, ...] = ()


@dataclass(frozen=True)
class QueryResourceFilter:
    """Reject queries estimated to be too expensive."""

    name: str
    max_estimated_rows: Optional[int] = None
    max_estimated_work: Optional[float] = None


class _FilterAdmission(AdmissionController):
    """Admission gate applying Teradata filters."""

    def __init__(
        self,
        object_filters: Sequence[ObjectAccessFilter],
        resource_filters: Sequence[QueryResourceFilter],
    ) -> None:
        self.object_filters = list(object_filters)
        self.resource_filters = list(resource_filters)
        self.filtered_count = 0

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        session = context.sessions.get(query.session_id)
        application = (
            session.attributes.application if session is not None else ""
        )
        for object_filter in self.object_filters:
            if application in object_filter.reject_applications:
                self.filtered_count += 1
                return AdmissionDecision.reject(
                    f"filter {object_filter.name}: application blocked"
                )
            if query.statement_type in object_filter.reject_statement_types:
                self.filtered_count += 1
                return AdmissionDecision.reject(
                    f"filter {object_filter.name}: statement type blocked"
                )
            if object_filter.reject_objects and any(
                obj in object_filter.reject_objects for obj in query.objects
            ):
                self.filtered_count += 1
                return AdmissionDecision.reject(
                    f"filter {object_filter.name}: object access blocked"
                )
        for resource_filter in self.resource_filters:
            if (
                resource_filter.max_estimated_rows is not None
                and query.estimated_cost.rows > resource_filter.max_estimated_rows
            ):
                self.filtered_count += 1
                return AdmissionDecision.reject(
                    f"filter {resource_filter.name}: too many estimated rows"
                )
            if (
                resource_filter.max_estimated_work is not None
                and query.estimated_cost.total_work
                > resource_filter.max_estimated_work
            ):
                self.filtered_count += 1
                return AdmissionDecision.reject(
                    f"filter {resource_filter.name}: estimated to take too long"
                )
        return AdmissionDecision.accept("passed filters")


# ----------------------------------------------------------------------
# throttles and workload definitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectThrottle:
    """Concurrency rule per database object.

    "The object throttles limit the number of queries executed
    simultaneously against a database object" (§4.1.3).  Excess queries
    go on the delay queue, like workload throttles.
    """

    object_name: str
    limit: int

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ConfigurationError("object throttle limit must be >= 1")


class _ObjectThrottleAdmission(AdmissionController):
    """Delay queries whose objects are at their concurrency limit."""

    def __init__(self, throttles: Sequence[ObjectThrottle]) -> None:
        self.limits = {t.object_name: t.limit for t in throttles}
        self.delays = 0

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        constrained = [obj for obj in query.objects if obj in self.limits]
        if not constrained:
            return AdmissionDecision.accept("no throttled objects")
        running = context.engine.running_queries()
        for obj in constrained:
            in_flight = sum(1 for q in running if obj in q.objects)
            if in_flight >= self.limits[obj]:
                self.delays += 1
                return AdmissionDecision.delay(
                    f"object throttle on {obj!r}: {in_flight} running"
                )
        return AdmissionDecision.accept("object throttles clear")


@dataclass(frozen=True)
class WorkloadThrottle:
    """Concurrency rule: excess queries go on the delay queue."""

    workload: str
    limit: int

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ConfigurationError("throttle limit must be >= 1")


@dataclass(frozen=True)
class UtilityThrottle:
    """Concurrency limit on database utilities.

    "The utility throttles enforce concurrency limits on the database
    utilities, such as load, export and restore, that run
    simultaneously" (§4.1.3).  Applies to UTILITY and LOAD statements.
    """

    limit: int

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ConfigurationError("utility throttle limit must be >= 1")


class _UtilityThrottleAdmission(AdmissionController):
    """Delay utilities while the utility concurrency limit is reached."""

    _UTILITY_TYPES = (StatementType.UTILITY, StatementType.LOAD)

    def __init__(self, throttle: UtilityThrottle) -> None:
        self.limit = throttle.limit
        self.delays = 0

    def decide(self, query: Query, context: ManagerContext) -> AdmissionDecision:
        if query.statement_type not in self._UTILITY_TYPES:
            return AdmissionDecision.accept("not a utility")
        running = sum(
            1
            for q in context.engine.iter_running()
            if q.statement_type in self._UTILITY_TYPES
        )
        if running >= self.limit:
            self.delays += 1
            return AdmissionDecision.delay(
                f"utility throttle: {running} utilities running"
            )
        return AdmissionDecision.accept("utility slot available")


@dataclass(frozen=True)
class _TeradataDefinition(WorkloadDefinition):
    """Workload definition extended with Teradata's "where" criteria."""

    where_objects: Optional[Tuple[str, ...]] = None

    def matches(self, query, session) -> bool:
        """Who + what + where: all configured criteria must accept."""
        if not super().matches(query, session):
            return False
        if self.where_objects is not None and not any(
            obj in self.where_objects for obj in query.objects
        ):
            return False
        return True


@dataclass(frozen=True)
class TeradataException:
    """Exception criteria + action, handled by the regulator.

    ``criterion`` supports CPU_TIME / ELAPSED_TIME / ROWS_RETURNED;
    ``action`` is "abort" or "demote" (change workload to a lower
    allocation group).
    """

    criterion: ThresholdKind
    limit: float
    action: str = "abort"

    def __post_init__(self) -> None:
        if self.action not in ("abort", "demote"):
            raise ConfigurationError("action must be 'abort' or 'demote'")


@dataclass(frozen=True)
class TeradataWorkloadDefinition:
    """Classification criteria, behaviour and SLG for one workload."""

    name: str
    # "who" criteria
    application: Optional[str] = None
    user: Optional[str] = None
    account: Optional[str] = None
    # "where" criteria: objects being accessed
    objects: Optional[Tuple[str, ...]] = None
    # "what" criteria
    statement_types: Optional[Tuple[StatementType, ...]] = None
    min_estimated_work: Optional[float] = None
    max_estimated_work: Optional[float] = None
    # execution behaviour
    priority: int = 1
    allocation_weight: float = 1.0
    throttle: Optional[int] = None
    exceptions: Tuple[TeradataException, ...] = ()
    # SLG
    response_time_goal: Optional[float] = None

    def to_definition(self) -> WorkloadDefinition:
        who: List[AttributePredicate] = []
        if self.application is not None:
            who.append(AttributePredicate("application", self.application))
        if self.user is not None:
            who.append(AttributePredicate("user", self.user))
        if self.account is not None:
            who.append(AttributePredicate("account", self.account))
        what = None
        if (
            self.statement_types is not None
            or self.min_estimated_work is not None
            or self.max_estimated_work is not None
        ):
            what = WorkClassCriteria(
                statement_types=self.statement_types,
                min_estimated_cost=self.min_estimated_work,
                max_estimated_cost=self.max_estimated_work,
            )
        return _TeradataDefinition(
            workload=self.name,
            priority=self.priority,
            who=tuple(who),
            what=what,
            where_objects=self.objects,
        )


@dataclass
class TeradataASMConfig:
    """A complete Teradata ASM setup, compiled by :meth:`build`."""

    definitions: Sequence[TeradataWorkloadDefinition] = ()
    object_filters: Sequence[ObjectAccessFilter] = ()
    resource_filters: Sequence[QueryResourceFilter] = ()
    extra_throttles: Sequence[WorkloadThrottle] = ()
    object_throttles: Sequence[ObjectThrottle] = ()
    utility_throttle: Optional[UtilityThrottle] = None
    default_workload: str = "default"
    global_mpl: Optional[int] = None

    def build(self) -> SystemBundle:
        characterizer = StaticCharacterizer(
            [definition.to_definition() for definition in self.definitions],
            default_workload=self.default_workload,
        )
        filters = _FilterAdmission(self.object_filters, self.resource_filters)
        gates = [filters]
        if self.object_throttles:
            gates.append(_ObjectThrottleAdmission(self.object_throttles))
        if self.utility_throttle is not None:
            gates.append(_UtilityThrottleAdmission(self.utility_throttle))
        gates.append(ThresholdAdmission())
        admission = CompositeAdmission(gates)

        per_workload_mpl: Dict[str, int] = {}
        for definition in self.definitions:
            if definition.throttle is not None:
                per_workload_mpl[definition.name] = definition.throttle
        for throttle in self.extra_throttles:
            per_workload_mpl[throttle.workload] = throttle.limit
        scheduler = MultiQueueScheduler(
            global_mpl=self.global_mpl, per_workload_mpl=per_workload_mpl
        )

        kill_rules: List[KillRule] = []
        demote_thresholds: List[Threshold] = []
        for definition in self.definitions:
            for exception in definition.exceptions:
                if exception.action == "abort":
                    kill_rules.append(
                        KillRule(
                            threshold=Threshold(
                                exception.criterion,
                                exception.limit,
                                ThresholdAction.STOP_EXECUTION,
                            ),
                            max_priority=definition.priority,
                        )
                    )
                else:
                    demote_thresholds.append(
                        Threshold(
                            exception.criterion,
                            exception.limit,
                            ThresholdAction.DEMOTE,
                        )
                    )
        controllers: List = []
        if demote_thresholds:
            controllers.append(
                PriorityAgingController(
                    ladder=ServiceClassLadder(),
                    thresholds=demote_thresholds,
                )
            )
        if kill_rules:
            controllers.append(QueryKillController(rules=kill_rules))

        weights = {
            definition.name: definition.allocation_weight
            for definition in self.definitions
        }

        def weight_fn(query: Query) -> float:
            if query.workload_name in weights:
                return weights[query.workload_name]
            return float(max(query.priority, 1))

        return SystemBundle(
            characterizer=characterizer,
            admission=admission,
            scheduler=scheduler,
            execution_controllers=controllers,
            weight_fn=weight_fn,
            name="Teradata Active System Management",
        )


# ----------------------------------------------------------------------
# workload analyzer
# ----------------------------------------------------------------------
@dataclass
class WorkloadRecommendation:
    """A candidate workload definition recommended from DBQL analysis."""

    name: str
    application: str
    work_band: str                     # "short" | "medium" | "long"
    record_count: int
    mean_work: float
    suggested_priority: int
    response_time_goal: float

    def to_definition(self) -> TeradataWorkloadDefinition:
        bounds = {
            "short": (None, 1.0),
            "medium": (1.0, 30.0),
            "long": (30.0, None),
        }[self.work_band]
        return TeradataWorkloadDefinition(
            name=self.name,
            application=self.application,
            min_estimated_work=bounds[0],
            max_estimated_work=bounds[1],
            priority=self.suggested_priority,
            response_time_goal=self.response_time_goal,
        )


class TeradataWorkloadAnalyzer:
    """Recommend workload definitions from query-log analysis.

    Groups DBQL records by (application attribute proxy, work band),
    then recommends one candidate per non-trivial group: short work
    gets high suggested priority and tight goals, long work low
    priority and loose goals — matching Teradata WA's dimensioned
    analysis flow.  ``merge``/``split`` provide the documented manual
    refinement steps.
    """

    def __init__(self, min_group_size: int = 10) -> None:
        self.min_group_size = min_group_size

    @staticmethod
    def _band(work: float) -> str:
        if work < 1.0:
            return "short"
        if work < 30.0:
            return "medium"
        return "long"

    @staticmethod
    def _application_of(record: QueryLogRecord) -> str:
        # DBQL rows carry the application; our log keeps it in the tag.
        if record.sql and ":" in record.sql:
            return record.sql.split(":", 1)[0]
        return record.workload or "unknown"

    def analyze(self, log: QueryLog) -> List[WorkloadRecommendation]:
        groups: Dict[Tuple[str, str], List[QueryLogRecord]] = {}
        for record in log:
            key = (
                self._application_of(record),
                self._band(record.estimated_cost.total_work),
            )
            groups.setdefault(key, []).append(record)
        recommendations = []
        for (application, band), records in sorted(groups.items()):
            if len(records) < self.min_group_size:
                continue
            mean_work = sum(
                r.estimated_cost.total_work for r in records
            ) / len(records)
            priority = {"short": 3, "medium": 2, "long": 1}[band]
            goal = {"short": 1.0, "medium": 30.0, "long": 600.0}[band]
            recommendations.append(
                WorkloadRecommendation(
                    name=f"{application}-{band}",
                    application=application,
                    work_band=band,
                    record_count=len(records),
                    mean_work=mean_work,
                    suggested_priority=priority,
                    response_time_goal=goal,
                )
            )
        return recommendations

    @staticmethod
    def merge(
        first: WorkloadRecommendation,
        second: WorkloadRecommendation,
        name: Optional[str] = None,
    ) -> WorkloadRecommendation:
        """Merge two candidates (the WA refinement step)."""
        total = first.record_count + second.record_count
        return WorkloadRecommendation(
            name=name or f"{first.name}+{second.name}",
            application=first.application,
            work_band=first.work_band
            if first.record_count >= second.record_count
            else second.work_band,
            record_count=total,
            mean_work=(
                first.mean_work * first.record_count
                + second.mean_work * second.record_count
            )
            / total,
            suggested_priority=max(
                first.suggested_priority, second.suggested_priority
            ),
            response_time_goal=max(
                first.response_time_goal, second.response_time_goal
            ),
        )

    @staticmethod
    def split(
        candidate: WorkloadRecommendation, work_threshold: float
    ) -> Tuple[WorkloadRecommendation, WorkloadRecommendation]:
        """Split a candidate into below/above a work threshold."""
        below = WorkloadRecommendation(
            name=f"{candidate.name}-small",
            application=candidate.application,
            work_band="short" if work_threshold <= 1.0 else candidate.work_band,
            record_count=candidate.record_count // 2,
            mean_work=min(candidate.mean_work, work_threshold),
            suggested_priority=min(candidate.suggested_priority + 1, 3),
            response_time_goal=candidate.response_time_goal / 2,
        )
        above = WorkloadRecommendation(
            name=f"{candidate.name}-large",
            application=candidate.application,
            work_band="long" if work_threshold >= 30.0 else candidate.work_band,
            record_count=candidate.record_count - below.record_count,
            mean_work=max(candidate.mean_work, work_threshold),
            suggested_priority=max(candidate.suggested_priority - 1, 1),
            response_time_goal=candidate.response_time_goal * 2,
        )
        return below, above
