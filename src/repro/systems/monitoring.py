"""Monitoring facades in each commercial system's vocabulary (§4.1).

The paper describes a monitoring surface for every system — DB2's
*table functions* and event monitors, SQL Server's *performance
counters* and *dynamic management views*, Teradata Manager's *dashboard
workload monitor*.  Monitoring is deliberately outside the taxonomy
("typically a separate component in a DBMS"), but a faithful system
model still needs it: these facades project the manager's metrics and
engine state into the row shapes each product documents.

All functions are read-only and return plain lists of dicts so callers
can print, assert, or frame them however they like — the simulated
analogue of ``SELECT * FROM TABLE(WLM_...)`` / ``sys.dm_resource_...``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.manager import WorkloadManager
from repro.engine.resources import ResourceKind


def _workload_rows(manager: WorkloadManager) -> List[str]:
    """Workloads visible to monitoring: with recorded outcomes, running
    in the engine, or waiting in queues."""
    names = set(manager.metrics.workloads())
    names.update(
        q.workload_name
        for q in manager.engine.iter_running()
        if q.workload_name
    )
    if hasattr(manager.scheduler, "queued_queries"):
        names.update(
            q.workload_name
            for q in manager.scheduler.queued_queries()
            if q.workload_name
        )
    return sorted(name for name in names if name != "<unassigned>")


# ----------------------------------------------------------------------
# IBM DB2: table functions (§4.1.1 C)
# ----------------------------------------------------------------------
def db2_workload_occurrences(manager: WorkloadManager) -> List[Dict[str, Any]]:
    """Rows like ``WLM_GET_WORKLOAD_OCCURRENCE_ACTIVITIES``: one row per
    query currently executing, with its workload and progress."""
    now = manager.sim.now
    rows = []
    for query in manager.engine.iter_running():
        rows.append(
            {
                "workload_name": query.workload_name or "SYSDEFAULTUSERWORKLOAD",
                "activity_id": query.query_id,
                "service_class": query.service_class or "SYSDEFAULTUSERCLASS",
                "elapsed_time": now - (query.start_time or now),
                "progress": manager.engine.progress_of(query.query_id),
                "priority": query.priority,
            }
        )
    return rows


def db2_service_class_stats(manager: WorkloadManager) -> List[Dict[str, Any]]:
    """Rows like ``WLM_GET_SERVICE_CLASS_STATS``: aggregate statistics
    per workload (completions, averages, rejections)."""
    now = manager.sim.now
    rows = []
    for workload in _workload_rows(manager):
        stats = manager.metrics.stats_for(workload)
        rows.append(
            {
                "service_superclass": workload,
                "coord_act_completed_total": stats.completions,
                "coord_act_rejected_total": stats.rejections,
                "coord_act_aborted_total": stats.kills + stats.aborts,
                "coord_act_lifetime_avg": stats.mean_response_time(),
                "concurrent_act_top": None,  # not tracked per workload
                "throughput_per_s": stats.overall_throughput(now),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Microsoft SQL Server: performance counters + DMVs (§4.1.2 D)
# ----------------------------------------------------------------------
def sqlserver_workload_group_stats(
    manager: WorkloadManager,
) -> List[Dict[str, Any]]:
    """Rows like ``sys.dm_resource_governor_workload_groups`` /
    the *Workload Group Stats* performance counter."""
    rows = []
    running = manager.engine.running_queries()
    for group in _workload_rows(manager):
        stats = manager.metrics.stats_for(group)
        active = sum(1 for q in running if q.workload_name == group)
        rows.append(
            {
                "group_name": group,
                "active_request_count": active,
                "total_request_count": stats.completions + stats.kills,
                "blocked_request_count": 0,  # locks are engine-internal
                "total_query_optimizations": stats.completions,
                "requests_completed_per_s": stats.overall_throughput(
                    manager.sim.now
                ),
            }
        )
    return rows


def sqlserver_resource_pool_stats(
    manager: WorkloadManager,
    group_to_pool: Optional[Dict[str, str]] = None,
) -> List[Dict[str, Any]]:
    """Rows like ``sys.dm_resource_governor_resource_pools``.

    ``group_to_pool`` maps workload groups to pools (from the governor
    config); without it every group is its own pool.
    """
    pools: Dict[str, Dict[str, Any]] = {}
    for query in manager.engine.iter_running():
        group = query.workload_name or "default"
        pool = (group_to_pool or {}).get(group, group)
        row = pools.setdefault(
            pool,
            {
                "pool_name": pool,
                "active_request_count": 0,
                "used_memory_mb": 0.0,
                "cpu_usage_share": 0.0,
            },
        )
        row["active_request_count"] += 1
        row["used_memory_mb"] += query.true_cost.memory_mb
        speed = manager.engine.speed_of(query.query_id)
        row["cpu_usage_share"] += speed * query.true_cost.cpu_seconds
    cpu_capacity = manager.engine.machine.cpu_capacity
    for row in pools.values():
        row["cpu_usage_share"] = min(1.0, row["cpu_usage_share"] / cpu_capacity)
    return sorted(pools.values(), key=lambda r: r["pool_name"])


# ----------------------------------------------------------------------
# Teradata Manager: dashboard workload monitor (§4.1.3 C)
# ----------------------------------------------------------------------
def teradata_dashboard(
    manager: WorkloadManager, collection_period: float = 60.0
) -> List[Dict[str, Any]]:
    """Rows mirroring the dashboard's documented columns: CPU usage per
    workload, active sessions, arrival rate in the last collection
    period, completions, response time, and delay-queue depth."""
    now = manager.sim.now
    running = manager.engine.running_queries()
    queued = (
        manager.scheduler.queued_queries()
        if hasattr(manager.scheduler, "queued_queries")
        else []
    )
    rows = []
    for workload in _workload_rows(manager):
        stats = manager.metrics.stats_for(workload)
        active = [q for q in running if q.workload_name == workload]
        cpu_usage = sum(
            manager.engine.speed_of(q.query_id) * q.true_cost.cpu_seconds
            for q in active
        )
        window = min(collection_period, max(now, 1e-9))
        # arrivals = terminal records plus still-in-flight requests
        recent_arrivals = sum(
            1
            for record in manager.query_log
            if record.workload == workload
            and record.submit_time >= now - collection_period
        ) + sum(
            1
            for q in running + list(queued)
            if q.workload_name == workload
            and q.submit_time is not None
            and q.submit_time >= now - collection_period
        )
        rows.append(
            {
                "workload_name": workload,
                "cpu_usage": min(1.0, cpu_usage / manager.engine.machine.cpu_capacity),
                "active_sessions": len(active),
                "arrival_rate": recent_arrivals / window,
                "completed_requests": stats.completions,
                "avg_response_time": stats.mean_response_time(),
                "delay_queue_depth": sum(
                    1 for q in queued if q.workload_name == workload
                ),
            }
        )
    return rows
