"""Models of the commercial workload-management systems of Table 4.

Each module mirrors one facility's configuration vocabulary and
*compiles* it onto the framework's plug-in sockets, so that running the
model exercises exactly the technique classes the paper attributes to
the system (validated by EXP16 and the Table 4 bench):

* :mod:`repro.systems.db2` — IBM DB2 Workload Manager: workloads, work
  classes, service (sub)classes, thresholds with actions [30];
* :mod:`repro.systems.sqlserver` — Microsoft SQL Server Resource
  Governor (resource pools, workload groups, classification) and Query
  Governor Cost Limit [50][51];
* :mod:`repro.systems.teradata` — Teradata Active System Management:
  workload analyzer, filters, throttles, workload definitions with
  exceptions, the regulator [71][72];
* :mod:`repro.systems.monitoring` — each system's documented monitoring
  surface (DB2 table functions, SQL Server DMVs/counters, Teradata
  Manager's dashboard) projected from the simulated server's state.
"""

from repro.systems.base import SystemBundle
from repro.systems.db2 import (
    DB2Workload,
    DB2WorkClass,
    DB2ServiceClass,
    DB2Threshold,
    DB2WorkloadManagerConfig,
)
from repro.systems.sqlserver import (
    ResourcePool,
    WorkloadGroup,
    ResourceGovernorConfig,
    ResourcePoolController,
)
from repro.systems.monitoring import (
    db2_service_class_stats,
    db2_workload_occurrences,
    sqlserver_resource_pool_stats,
    sqlserver_workload_group_stats,
    teradata_dashboard,
)
from repro.systems.teradata import (
    ObjectAccessFilter,
    ObjectThrottle,
    QueryResourceFilter,
    WorkloadThrottle,
    TeradataException,
    TeradataWorkloadDefinition,
    TeradataASMConfig,
    TeradataWorkloadAnalyzer,
    WorkloadRecommendation,
)

__all__ = [
    "SystemBundle",
    "DB2Workload",
    "DB2WorkClass",
    "DB2ServiceClass",
    "DB2Threshold",
    "DB2WorkloadManagerConfig",
    "ResourcePool",
    "WorkloadGroup",
    "ResourceGovernorConfig",
    "ResourcePoolController",
    "ObjectAccessFilter",
    "ObjectThrottle",
    "QueryResourceFilter",
    "WorkloadThrottle",
    "TeradataException",
    "TeradataWorkloadDefinition",
    "TeradataASMConfig",
    "TeradataWorkloadAnalyzer",
    "WorkloadRecommendation",
    "db2_service_class_stats",
    "db2_workload_occurrences",
    "sqlserver_resource_pool_stats",
    "sqlserver_workload_group_stats",
    "teradata_dashboard",
]
