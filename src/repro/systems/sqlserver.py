"""Microsoft SQL Server Resource/Query Governor model (§4.1.2, [50][51]).

Components mirrored:

* **resource pools** (:class:`ResourcePool`) — MIN/MAX percentages of
  the server's CPU and memory.  "One portion does not overlap with
  other pools, which enables a minimum resource reservation...  The
  other portion is shared with other pools, which supports maximum
  resource consumption."  The sum of MINs cannot exceed 100%.
* **workload groups** (:class:`WorkloadGroup`) — containers for similar
  session requests, each associated with a pool; ``internal`` and
  ``default`` are predefined.
* **classification** — a user-written function evaluated per session,
  returning a workload-group name (errors/unknown → default group).
* **Query Governor Cost Limit** — "the query governor will disallow
  execution of any arriving query that has an estimated execution time
  exceeding the value"; zero disables the limit.

``ResourceGovernorConfig.build()`` compiles to: classifier-function
characterization, threshold-based admission (the governor), and a
:class:`ResourcePoolController` that continuously re-weights running
queries so each pool's realized share respects MIN (reservation) and
MAX (cap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.admission.threshold import ThresholdAdmission
from repro.characterization.static import ClassifierFunctionCharacterizer
from repro.core.policy import Threshold, ThresholdAction, ThresholdKind
from repro.execution.cancellation import KillRule, QueryKillController
from repro.core.classify import Feature
from repro.core.interfaces import ExecutionController, ManagerContext
from repro.core.policy import AdmissionPolicy
from repro.engine.query import Query
from repro.engine.sessions import Session
from repro.errors import ConfigurationError
from repro.scheduling.queues import MultiQueueScheduler
from repro.systems.base import SystemBundle


@dataclass(frozen=True)
class ResourcePool:
    """A resource pool with MIN/MAX percentages (CPU; memory alike)."""

    name: str
    min_percent: float = 0.0
    max_percent: float = 100.0

    def __post_init__(self) -> None:
        if not 0 <= self.min_percent <= 100:
            raise ConfigurationError("min_percent must be in [0, 100]")
        if not self.min_percent <= self.max_percent <= 100:
            raise ConfigurationError(
                "max_percent must be in [min_percent, 100]"
            )


@dataclass(frozen=True)
class WorkloadGroup:
    """A workload group bound to a resource pool.

    ``request_max_cpu_time_sec`` mirrors the group option of the same
    name: a request exceeding it raises the *CPU Threshold Exceeded*
    event and is cancelled.
    """

    name: str
    pool: str
    importance: int = 1
    group_max_requests: Optional[int] = None   # per-group MPL
    request_max_cpu_time_sec: Optional[float] = None


ClassifierFn = Callable[[Query, Optional[Session]], Optional[str]]


class ResourcePoolController(ExecutionController):
    """Enforce pool MIN/MAX shares by re-weighting running queries.

    Every control tick the controller computes each pool's target share
    of the machine: start from demand-proportional sharing, then raise
    shares below MIN to MIN and clip shares above MAX to MAX
    (re-normalizing the unconstrained pools) — the semantics of
    reservation plus cap over a shared remainder.  Weights are then set
    so each pool's queries jointly receive the target share.
    """

    TECHNIQUE_FEATURES = frozenset(
        {Feature.ACTS_AT_RUNTIME, Feature.REALLOCATES_RESOURCES}
    )

    def __init__(
        self,
        pools: Sequence[ResourcePool],
        group_to_pool: Dict[str, str],
    ) -> None:
        if sum(p.min_percent for p in pools) > 100.0 + 1e-9:
            raise ConfigurationError("sum of pool MINs exceeds 100%")
        self.pools = {pool.name: pool for pool in pools}
        self.group_to_pool = dict(group_to_pool)
        self.share_history: List[Tuple[float, Dict[str, float]]] = []

    def _pool_of(self, query: Query) -> str:
        group = query.workload_name or "default"
        return self.group_to_pool.get(group, "default")

    def target_shares(self, demand: Dict[str, int]) -> Dict[str, float]:
        """Pool → share of the machine, honoring MIN/MAX (unit sum)."""
        active = {name: n for name, n in demand.items() if n > 0}
        if not active:
            return {}
        total = sum(active.values())
        shares = {name: n / total for name, n in active.items()}
        # apply MIN floors and MAX caps iteratively
        for _ in range(len(active) + 1):
            fixed: Dict[str, float] = {}
            for name in active:
                pool = self.pools.get(name)
                if pool is None:
                    continue
                if shares[name] * 100.0 < pool.min_percent - 1e-9:
                    fixed[name] = pool.min_percent / 100.0
                elif shares[name] * 100.0 > pool.max_percent + 1e-9:
                    fixed[name] = pool.max_percent / 100.0
            if not fixed:
                break
            free = [name for name in active if name not in fixed]
            remaining = 1.0 - sum(fixed.values())
            free_total = sum(demand[name] for name in free)
            for name, share in fixed.items():
                shares[name] = share
            for name in free:
                if free_total > 0 and remaining > 0:
                    shares[name] = remaining * demand[name] / free_total
                else:
                    shares[name] = 0.0
        return shares

    def control(self, context: ManagerContext) -> None:
        running = context.engine.running_queries()
        if not running:
            return
        by_pool: Dict[str, List[Query]] = {}
        for query in running:
            by_pool.setdefault(self._pool_of(query), []).append(query)
        demand = {name: len(queries) for name, queries in by_pool.items()}
        shares = self.target_shares(demand)
        if not shares:
            return
        for name, queries in by_pool.items():
            share = shares.get(name, 0.0)
            per_query = max(0.02, share * len(running) / len(queries))
            for query in queries:
                if abs(context.engine.weight_of(query.query_id) - per_query) > 1e-9:
                    context.engine.set_weight(query.query_id, per_query)
        self.share_history.append((context.now, shares))


@dataclass
class ResourceGovernorConfig:
    """A full Resource Governor + Query Governor setup."""

    pools: Sequence[ResourcePool] = (ResourcePool("default"),)
    groups: Sequence[WorkloadGroup] = (WorkloadGroup("default", "default"),)
    classifier: Optional[ClassifierFn] = None
    #: Query Governor Cost Limit in estimated-work seconds; 0 disables,
    #: matching the server option's semantics.
    query_governor_cost_limit: float = 0.0

    def build(self) -> SystemBundle:
        pool_names = {pool.name for pool in self.pools}
        for group in self.groups:
            if group.pool not in pool_names:
                raise ConfigurationError(
                    f"group {group.name!r} references unknown pool {group.pool!r}"
                )
        group_names = [group.name for group in self.groups]
        priorities = {group.name: group.importance for group in self.groups}

        classifier_fn = self.classifier or (lambda query, session: "default")
        characterizer = ClassifierFunctionCharacterizer(
            classifier_fn,
            known_groups=group_names,
            default_group="default",
            priorities=priorities,
        )

        cost_limit = (
            self.query_governor_cost_limit
            if self.query_governor_cost_limit > 0
            else None
        )
        admission = ThresholdAdmission(
            default_policy=AdmissionPolicy(reject_over_cost=cost_limit)
        )

        scheduler = MultiQueueScheduler(
            per_workload_mpl={
                group.name: group.group_max_requests
                for group in self.groups
                if group.group_max_requests is not None
            }
        )

        controller = ResourcePoolController(
            self.pools,
            group_to_pool={group.name: group.pool for group in self.groups},
        )
        controllers = [controller]
        cpu_limited = [
            group
            for group in self.groups
            if group.request_max_cpu_time_sec is not None
        ]
        if cpu_limited:
            # REQUEST_MAX_CPU_TIME_SEC: the "CPU Threshold Exceeded"
            # event, enforced as cancellation of offending requests
            rules = [
                KillRule(
                    threshold=Threshold(
                        ThresholdKind.CPU_TIME,
                        group.request_max_cpu_time_sec,
                        ThresholdAction.STOP_EXECUTION,
                    ),
                    applies_to_workloads=(group.name,),
                )
                for group in cpu_limited
            ]
            controllers.append(QueryKillController(rules))

        def weight_fn(query: Query) -> float:
            return float(max(query.priority, 1))

        return SystemBundle(
            characterizer=characterizer,
            admission=admission,
            scheduler=scheduler,
            execution_controllers=controllers,
            weight_fn=weight_fn,
            name="Microsoft SQL Server Resource/Query Governor",
        )
