"""Economic-model resource allocation by business importance.

Paper §3.4 / Table 3 ("Policy Driven Resource Allocation", [4][46][78]):
"certain amounts of shared system resources are dynamically allocated
to competing workloads according to the workload's business importance
levels... utility functions are used to guide the dynamic resource
allocation processes, and economic concepts and models are employed to
potentially reduce the complexity of the resource allocation problem."

The market model from [78]: each workload receives *wealth*
proportional to its business importance; resources are auctioned each
period and a workload's purchasing power buys it a matching share.  In
our engine, fair-share weights *are* resource shares, so the effector
simply re-weights every running query such that the workload-level
totals match the wealth ratios — including when the importance policy
changes mid-run (the dynamic response experiment EXP13).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.classify import Feature
from repro.core.interfaces import ExecutionController, ManagerContext
from repro.engine.query import Query


class EconomicResourceAllocator(ExecutionController):
    """Re-weight running queries so workload shares track importance.

    Parameters
    ----------
    importance:
        Workload → business importance.  Workloads not listed fall back
        to their SLA importance (or 1).  Mutate via
        :meth:`set_importance` to model policy changes at run time.
    min_weight:
        Floor so no query is starved outright (economies with
        zero-wealth agents deadlock; see [78]'s discussion of
        starvation).
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_RUNTIME,
            Feature.CHANGES_RUNNING_PRIORITY,
            Feature.REALLOCATES_RESOURCES,
            Feature.USES_UTILITY_FUNCTIONS,
            Feature.USES_ECONOMIC_MODELS,
        }
    )

    def __init__(
        self,
        importance: Optional[Dict[str, int]] = None,
        min_weight: float = 0.05,
    ) -> None:
        self.importance = dict(importance or {})
        self.min_weight = min_weight
        #: (time, workload -> per-query weight) trace for experiments
        self.allocation_history: List[Tuple[float, Dict[str, float]]] = []

    def set_importance(self, workload: str, importance: int) -> None:
        """Change the importance policy (takes effect next tick)."""
        if importance < 1:
            raise ValueError("importance must be >= 1")
        self.importance[workload] = importance

    def _importance_of(self, workload: Optional[str], context: ManagerContext) -> int:
        if workload in self.importance:
            return self.importance[workload]
        return context.importance_of(workload)

    def control(self, context: ManagerContext) -> None:
        running = context.engine.running_queries()
        if not running:
            return
        by_workload: Dict[str, List[Query]] = {}
        for query in running:
            by_workload.setdefault(query.workload_name or "<unassigned>", []).append(
                query
            )
        # Wealth proportional to importance; each workload spreads its
        # wealth evenly over its running queries.  Total weight is
        # normalized to the number of running queries so absolute
        # weights stay in a sane range.
        wealth = {
            name: float(self._importance_of(name, context))
            for name in by_workload
        }
        total_wealth = sum(wealth.values())
        if total_wealth <= 0:
            return
        snapshot: Dict[str, float] = {}
        for name, queries in by_workload.items():
            share = wealth[name] / total_wealth
            per_query = max(
                self.min_weight, share * len(running) / len(queries)
            )
            snapshot[name] = per_query
            for query in queries:
                if abs(context.engine.weight_of(query.query_id) - per_query) > 1e-9:
                    context.engine.set_weight(query.query_id, per_query)
        self.allocation_history.append((context.now, snapshot))

    def workload_share(self, workload: str) -> Optional[float]:
        """Latest per-query weight assigned to ``workload``."""
        if not self.allocation_history:
            return None
        return self.allocation_history[-1][1].get(workload)
