"""Query cancellation: kill and kill-and-resubmit (Table 3).

"Query cancellation is widely used in workload management facilities of
commercial databases to kill the process of a running query.  When a
running query is terminated, the shared system resources used by the
query are immediately released...  The terminated query may be
re-submitted to the system for later execution based on a query
execution control policy" (§3.4).

A :class:`KillRule` pairs a trigger threshold with a disposition (kill
outright or kill-and-resubmit after a delay) and an optional progress
guard: per §5.2, killing a query that is nearly done frees few
resources and wastes its work, so rules can consult a progress
indicator and spare queries beyond ``spare_over_progress``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.classify import Feature
from repro.core.interfaces import ExecutionController, ManagerContext
from repro.core.policy import Threshold, ThresholdAction, ThresholdKind
from repro.engine.query import Query
from repro.errors import ConfigurationError
from repro.execution.progress import ProgressIndicator, SpeedAwareProgressIndicator


@dataclass(frozen=True)
class KillRule:
    """One cancellation rule."""

    threshold: Threshold
    resubmit: bool = False
    resubmit_delay: float = 30.0
    max_priority: Optional[int] = None     # only kill at or below this
    spare_over_progress: Optional[float] = None  # progress guard
    applies_to_workloads: Optional[Tuple[str, ...]] = None  # None = all

    def __post_init__(self) -> None:
        if self.threshold.action not in (
            ThresholdAction.STOP_EXECUTION,
            ThresholdAction.KILL_AND_RESUBMIT,
        ):
            raise ConfigurationError(
                "KillRule thresholds must use STOP_EXECUTION or "
                "KILL_AND_RESUBMIT"
            )


def elapsed_time_kill(
    limit: float,
    resubmit: bool = False,
    resubmit_delay: float = 30.0,
    max_priority: Optional[int] = None,
    spare_over_progress: Optional[float] = None,
) -> KillRule:
    """The ubiquitous rule: kill after running ``limit`` seconds."""
    action = (
        ThresholdAction.KILL_AND_RESUBMIT
        if resubmit
        else ThresholdAction.STOP_EXECUTION
    )
    return KillRule(
        threshold=Threshold(ThresholdKind.ELAPSED_TIME, limit, action),
        resubmit=resubmit,
        resubmit_delay=resubmit_delay,
        max_priority=max_priority,
        spare_over_progress=spare_over_progress,
    )


class QueryKillController(ExecutionController):
    """Automatic cancellation on threshold violation."""

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_RUNTIME,
            Feature.TERMINATES_RUNNING_REQUEST,
            Feature.USES_THRESHOLDS,
        }
    )

    def __init__(
        self,
        rules: Sequence[KillRule],
        progress_indicator: Optional[ProgressIndicator] = None,
    ) -> None:
        if not rules:
            raise ConfigurationError("QueryKillController needs rules")
        self.rules = list(rules)
        self.progress_indicator = progress_indicator or SpeedAwareProgressIndicator()
        self.kill_events: List[Tuple[float, int, bool]] = []  # (t, qid, resubmitted)

    def _observed_value(
        self, kind: ThresholdKind, query: Query, context: ManagerContext
    ) -> Optional[float]:
        if kind is ThresholdKind.ELAPSED_TIME:
            if query.start_time is None:
                return None
            return context.now - query.start_time
        progress = context.engine.progress_of(query.query_id)
        if kind is ThresholdKind.ROWS_RETURNED:
            return progress * query.true_cost.rows
        if kind is ThresholdKind.CPU_TIME:
            return progress * query.true_cost.cpu_seconds
        if kind is ThresholdKind.MEMORY_MB:
            return query.true_cost.memory_mb
        return None

    def control(self, context: ManagerContext) -> None:
        for query in list(context.engine.running_queries()):
            rule = self._matching_rule(query, context)
            if rule is None:
                continue
            if not context.engine.is_running(query.query_id):
                continue  # removed by an earlier kill's side effects
            context.engine.kill(query.query_id)
            resubmitted = False
            if rule.resubmit and context.manager is not None:
                clone = query.clone_for_resubmit()
                context.manager.resubmit(clone, delay=rule.resubmit_delay)
                resubmitted = True
            self.kill_events.append((context.now, query.query_id, resubmitted))

    def _matching_rule(
        self, query: Query, context: ManagerContext
    ) -> Optional[KillRule]:
        for rule in self.rules:
            if rule.max_priority is not None and query.priority > rule.max_priority:
                continue
            if (
                rule.applies_to_workloads is not None
                and query.workload_name not in rule.applies_to_workloads
            ):
                continue
            value = self._observed_value(rule.threshold.kind, query, context)
            if not rule.threshold.violated_by(value):
                continue
            if rule.spare_over_progress is not None:
                done = self.progress_indicator.work_done(query, context)
                if done >= rule.spare_over_progress:
                    continue
            return rule
        return None
