"""Request throttling (Parekh et al. [64]; Powley et al. [65][66]).

Two surveyed throttling systems, both "a self-imposed sleep used to
slow down" running work (§4.2.2):

* :class:`UtilityThrottlingController` — Parekh et al.: work is divided
  into *production* and *utilities*; the production classes' performance
  degradation (vs. a baseline) feeds a Proportional-Integral controller
  whose output is the utilities' throttling level; "a workload control
  function translates the throttling level into a sleep fraction".
* :class:`QueryThrottlingController` — Powley et al.: large queries are
  throttled so high-priority workloads meet their goals; the amount of
  throttling comes from either a diminishing *step* controller or a
  *black-box model* controller, applied by one of two methods:

  - **constant throttle** — many short, evenly distributed pauses; in
    the fluid engine this is exactly a speed cap of ``1 - sleep``;
  - **interrupt throttle** — a single long pause: the query is paused
    outright for a duration proportional to the throttle level, then
    resumed.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.control.controllers import (
    BlackBoxModelController,
    PIController,
    StepController,
)
from repro.core.classify import Feature
from repro.core.interfaces import ExecutionController, ManagerContext
from repro.engine.query import Query, StatementType
from repro.errors import ConfigurationError


def _normalized_speed(query: Query, context: ManagerContext) -> Optional[float]:
    """Instantaneous fraction of full speed a running query receives.

    A query's unloaded speed is ``1 / nominal_duration``; multiplying
    the current fluid speed by the nominal duration therefore yields a
    velocity-like signal in [0, 1] that reacts immediately to
    interference — the controllers' feedback input.
    """
    nominal = query.true_cost.nominal_duration
    if nominal <= 0 or not context.engine.is_running(query.query_id):
        return None
    return min(1.0, context.engine.speed_of(query.query_id) * nominal)


class ThrottleMethod(enum.Enum):
    """How a computed throttling level is imposed on a query."""

    CONSTANT = "constant"     # continuous speed cap (many short sleeps)
    INTERRUPT = "interrupt"   # one long pause per control period


class UtilityThrottlingController(ExecutionController):
    """PI-controlled throttling of on-line utilities [64].

    Parameters
    ----------
    degradation_target:
        Acceptable relative degradation of production performance (e.g.
        0.3 = production velocity may drop 30% below baseline before
        the utilities are slowed).
    baseline_velocity:
        Expected production velocity when unimpacted (the "baseline
        performance acquired by the production applications").
    utility_workloads:
        Workload names treated as utilities; statements of type UTILITY
        are always included.
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_RUNTIME,
            Feature.PAUSES_RUNNING_REQUEST,
            Feature.USES_FEEDBACK_CONTROLLER,
        }
    )

    def __init__(
        self,
        degradation_target: float = 0.2,
        baseline_velocity: float = 0.9,
        utility_workloads: Sequence[str] = ("utilities",),
        kp: float = 1.2,
        ki: float = 0.4,
        window: float = 10.0,
    ) -> None:
        if not 0 < baseline_velocity <= 1:
            raise ConfigurationError("baseline_velocity must be in (0, 1]")
        self.degradation_target = degradation_target
        self.baseline_velocity = baseline_velocity
        self.utility_workloads = set(utility_workloads)
        self.window = window
        # PI on degradation: setpoint is the acceptable degradation,
        # output the sleep fraction in [0, 0.95].
        self.controller = PIController(
            kp=kp, ki=ki, setpoint=degradation_target, minimum=0.0, maximum=0.95
        )
        self.throttle_level = 0.0
        self.level_history: List[Tuple[float, float]] = []

    def _is_utility(self, query: Query) -> bool:
        return (
            query.statement_type is StatementType.UTILITY
            or (query.workload_name in self.utility_workloads)
        )

    def _production_velocity(self, context: ManagerContext) -> Optional[float]:
        velocities = []
        for query in context.engine.running_queries():
            if self._is_utility(query):
                continue
            velocity = _normalized_speed(query, context)
            if velocity is not None:
                velocities.append(velocity)
        # include recent completions so short transactions count
        for name in context.metrics.workloads():
            if name in self.utility_workloads:
                continue
            stats = context.metrics.stats_for(name)
            recent = stats.velocities[-20:]
            velocities.extend(recent)
        if not velocities:
            return None
        return sum(velocities) / len(velocities)

    def control(self, context: ManagerContext) -> None:
        velocity = self._production_velocity(context)
        if velocity is None:
            return
        degradation = max(
            0.0, (self.baseline_velocity - velocity) / self.baseline_velocity
        )
        self.throttle_level = self.controller.update(degradation)
        self.level_history.append((context.now, self.throttle_level))
        factor = 1.0 - self.throttle_level  # sleep fraction -> speed cap
        for query in context.engine.running_queries():
            if self._is_utility(query):
                context.engine.set_throttle(query.query_id, factor)


class QueryThrottlingController(ExecutionController):
    """Autonomic large-query throttling [65][66].

    Throttles queries selected by ``victim_selector`` (default: any
    running query with priority <= ``max_victim_priority`` and estimated
    work >= ``large_query_work``) so that the protected workloads'
    velocity reaches ``velocity_goal``.
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_RUNTIME,
            Feature.PAUSES_RUNNING_REQUEST,
            Feature.USES_FEEDBACK_CONTROLLER,
        }
    )

    def __init__(
        self,
        velocity_goal: float = 0.7,
        protected_priority: int = 3,
        max_victim_priority: int = 1,
        large_query_work: float = 10.0,
        controller: str = "step",
        method: ThrottleMethod = ThrottleMethod.CONSTANT,
        pause_scale: float = 0.8,
        victim_selector: Optional[Callable[[Query], bool]] = None,
    ) -> None:
        if controller not in ("step", "blackbox"):
            raise ConfigurationError("controller must be 'step' or 'blackbox'")
        self.velocity_goal = velocity_goal
        self.protected_priority = protected_priority
        self.max_victim_priority = max_victim_priority
        self.large_query_work = large_query_work
        self.method = method
        self.pause_scale = pause_scale
        self.controller_kind = controller
        if controller == "step":
            self._step = StepController(initial_step=0.3, maximum=0.95)
            self._blackbox = None
        else:
            self._step = None
            self._blackbox = BlackBoxModelController(
                setpoint=velocity_goal, maximum=0.95
            )
        self.victim_selector = victim_selector or self._default_victim
        self.throttle_level = 0.0
        self.level_history: List[Tuple[float, float]] = []
        self._paused: Dict[int, object] = {}  # qid -> resume event handle

    def _default_victim(self, query: Query) -> bool:
        return (
            query.priority <= self.max_victim_priority
            and query.estimated_cost.total_work >= self.large_query_work
        )

    def _protected_velocity(self, context: ManagerContext) -> Optional[float]:
        velocities = []
        for query in context.engine.running_queries():
            if query.priority < self.protected_priority:
                continue
            velocity = _normalized_speed(query, context)
            if velocity is not None:
                velocities.append(velocity)
        for name in context.metrics.workloads():
            stats = context.metrics.stats_for(name)
            if not stats.velocities:
                continue
            if context.importance_of(name) >= self.protected_priority:
                velocities.extend(stats.velocities[-20:])
        if not velocities:
            return None
        return sum(velocities) / len(velocities)

    def control(self, context: ManagerContext) -> None:
        velocity = self._protected_velocity(context)
        if velocity is None:
            return
        if self._step is not None:
            violation = self.velocity_goal - velocity
            # deadband so the controller settles once the goal is met
            if abs(violation) < 0.02:
                violation = 0.0
            self.throttle_level = self._step.update(violation)
        else:
            self.throttle_level = self._blackbox.update(velocity)
        self.level_history.append((context.now, self.throttle_level))
        self._apply(context)

    def _apply(self, context: ManagerContext) -> None:
        factor = 1.0 - self.throttle_level
        for query in context.engine.running_queries():
            if not self.victim_selector(query):
                continue
            qid = query.query_id
            if self.method is ThrottleMethod.CONSTANT:
                context.engine.set_throttle(qid, factor)
            else:
                if qid in self._paused or self.throttle_level <= 0:
                    continue
                # one pause whose length realizes the sleep fraction
                manager = context.manager
                period = manager.control_period if manager is not None else 1.0
                pause = self.throttle_level * period * self.pause_scale
                context.engine.pause(qid)
                handle = context.sim.schedule(
                    pause,
                    lambda q=qid: self._resume(q, context),
                    label=f"interrupt-throttle:q{qid}",
                )
                self._paused[qid] = handle

    def _resume(self, qid: int, context: ManagerContext) -> None:
        self._paused.pop(qid, None)
        if context.engine.is_running(qid):
            context.engine.resume(qid)

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        handle = self._paused.pop(query.query_id, None)
        if handle is not None:
            handle.cancel()
