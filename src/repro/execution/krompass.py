"""Krompass et al.'s fuzzy-logic execution controller [39] (§4.2.4).

"The execution control component is implemented with a rule-based fuzzy
logic controller, and the query execution control actions include query
reprioritize, kill and resubmit after kill...  the controller uses
information gathered at runtime to manage the queries concurrently
running in a database system.  The monitored metrics include priority,
number of query cancellations, operator progress, resource contention."

Fuzzy memberships over those monitored metrics are combined by
rule-based inference into a *problem score* per running query; the
defuzzified score band selects the action:

* mild problem    → reprioritize (halve the fair-share weight);
* serious problem → kill and resubmit (queued again for later);
* hopeless        → kill (dispose of intermediate results).

A query that has already been cancelled repeatedly is treated more
leniently toward resubmission-killing (matching the paper's
"number of query cancellations" input: endless kill loops help nobody).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.classify import Feature
from repro.core.interfaces import ExecutionController, ManagerContext
from repro.engine.query import Query
from repro.execution.progress import ProgressIndicator, SpeedAwareProgressIndicator


def _ramp(value: float, low: float, high: float) -> float:
    """Fuzzy membership rising linearly from 0 at ``low`` to 1 at ``high``."""
    if high <= low:
        return 1.0 if value >= high else 0.0
    return min(1.0, max(0.0, (value - low) / (high - low)))


@dataclass
class _Assessment:
    query: Query
    long_running: float
    low_priority: float
    little_progress: float
    contention: float
    score: float


class FuzzyExecutionController(ExecutionController):
    """Rule-based fuzzy controller over runtime metrics.

    Inference (max-product, per [39]'s spirit):

    * problem ⟸ long_running AND little_progress
    * problem ⟸ long_running AND contention
    * mitigation weight: low business priority amplifies the score,
      high priority suppresses it (high-priority queries are the ones
      being protected, not controlled).
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_RUNTIME,
            Feature.TERMINATES_RUNNING_REQUEST,
            Feature.RESUBMITS_AFTER_KILL,
            Feature.CHANGES_RUNNING_PRIORITY,
            Feature.REALLOCATES_RESOURCES,
        }
    )

    def __init__(
        self,
        long_running_onset: float = 20.0,
        long_running_full: float = 120.0,
        reprioritize_band: Tuple[float, float] = (0.35, 0.6),
        resubmit_band: Tuple[float, float] = (0.6, 0.85),
        max_priority: int = 2,
        progress_indicator: Optional[ProgressIndicator] = None,
    ) -> None:
        self.long_running_onset = long_running_onset
        self.long_running_full = long_running_full
        self.reprioritize_band = reprioritize_band
        self.resubmit_band = resubmit_band
        self.max_priority = max_priority
        self.progress_indicator = progress_indicator or SpeedAwareProgressIndicator()
        self.actions: List[Tuple[float, int, str]] = []   # (time, qid, action)
        self._reprioritized: Dict[int, int] = {}          # qid -> times halved

    # ------------------------------------------------------------------
    def assess(self, query: Query, context: ManagerContext) -> _Assessment:
        """Fuzzy assessment of one running query (exposed for tests)."""
        started = query.start_time if query.start_time is not None else context.now
        elapsed = context.now - started
        long_running = _ramp(
            elapsed, self.long_running_onset, self.long_running_full
        )
        # any query at or below the controllable priority has full
        # "low priority" membership; above it the controller never looks
        low_priority = _ramp(
            float(self.max_priority - query.priority + 1), 0.0, 1.0
        )
        done = self.progress_indicator.work_done(query, context)
        little_progress = 1.0 - done
        contention = max(
            _ramp(context.engine.memory_pressure(), 1.0, 2.0),
            _ramp(min(context.engine.conflict_ratio(), 10.0), 1.2, 2.0),
        )
        rule1 = long_running * little_progress
        rule2 = long_running * contention
        score = max(rule1, rule2) * low_priority
        return _Assessment(
            query=query,
            long_running=long_running,
            low_priority=low_priority,
            little_progress=little_progress,
            contention=contention,
            score=score,
        )

    def control(self, context: ManagerContext) -> None:
        for query in list(context.engine.running_queries()):
            if query.priority > self.max_priority:
                continue
            if not context.engine.is_running(query.query_id):
                continue
            assessment = self.assess(query, context)
            score = assessment.score
            # previously-killed queries resist further resubmit-kills
            leniency = 0.1 * min(query.restarts, 3)
            if score >= self.resubmit_band[1] - leniency:
                context.engine.kill(query.query_id)
                self.actions.append((context.now, query.query_id, "kill"))
            elif score >= self.resubmit_band[0] - leniency:
                context.engine.kill(query.query_id)
                if context.manager is not None:
                    clone = query.clone_for_resubmit()
                    context.manager.resubmit(clone, delay=10.0)
                self.actions.append(
                    (context.now, query.query_id, "kill_and_resubmit")
                )
            elif score >= self.reprioritize_band[0]:
                halvings = self._reprioritized.get(query.query_id, 0)
                if halvings < 3:
                    weight = context.engine.weight_of(query.query_id) / 2.0
                    context.engine.set_weight(query.query_id, max(weight, 0.05))
                    self._reprioritized[query.query_id] = halvings + 1
                    self.actions.append(
                        (context.now, query.query_id, "reprioritize")
                    )

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        self._reprioritized.pop(query.query_id, None)
