"""Query suspend-and-resume (Chandramouli et al. [10], §4.2.3, Table 3).

The query lifecycle is augmented with *suspend* and *resume* phases.
On a suspension request a ``SuspendedQuery`` structure is produced; the
suspend strategy determines its cost split:

* **DumpState** — write every stateful operator's in-flight state to
  disk.  Suspend cost = state size / dump bandwidth; resume restores
  the exact progress after reading the state back.
* **GoBack** — write only control state.  Suspend cost ≈ 0, but on
  resume the query re-executes everything since the last completed
  checkpoint boundary — a lower suspend cost traded for a higher resume
  cost, exactly the trade-off of [10].
* **Optimal plan** — per-operator dump/discard choices minimizing total
  overhead subject to a suspend-cost constraint ([10] solves this with
  mixed-integer programming; our plans are small enough for exact
  enumeration, which *is* the optimum).

The :class:`SuspendResumeController` applies the machinery as execution
control: when high-priority pressure appears it suspends the heaviest
low-priority victims; when pressure clears it resumes them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.classify import Feature
from repro.core.interfaces import ExecutionController, ManagerContext
from repro.engine.query import PlanOperator, Query, QueryState


class SuspendStrategy(enum.Enum):
    """The suspend strategies of [10], plus the optimizing planner."""

    DUMP_STATE = "dump_state"
    GO_BACK = "go_back"
    OPTIMAL = "optimal"


@dataclass(frozen=True)
class SuspendPlan:
    """The costed outcome of planning a suspension.

    ``suspend_cost``/``resume_cost`` are seconds; ``resume_progress`` is
    where execution restarts (≤ the progress at suspension; the gap is
    re-executed work, already folded into ``resume_cost``).
    """

    strategy: SuspendStrategy
    dumped_operators: Tuple[int, ...]
    suspend_cost: float
    resume_cost: float
    resume_progress: float

    @property
    def total_overhead(self) -> float:
        return self.suspend_cost + self.resume_cost


@dataclass
class SuspendedQuery:
    """The persisted structure that lets a query resume later [10]."""

    query: Query
    plan: SuspendPlan
    suspended_at: float


def _stateful_operators(query: Query, progress: float) -> List[Tuple[int, PlanOperator]]:
    """Operators with recoverable in-flight state at ``progress``."""
    current = query.plan.operator_at_progress(progress)
    out = []
    for index, op in enumerate(query.plan):
        if index > current:
            break
        if op.state_mb > 0 and (op.blocking or index == current):
            out.append((index, op))
    return out


def plan_suspension(
    query: Query,
    progress: float,
    strategy: SuspendStrategy = SuspendStrategy.OPTIMAL,
    dump_bandwidth_mb_s: float = 100.0,
    suspend_cost_budget: Optional[float] = None,
) -> SuspendPlan:
    """Compute the costed suspension plan for ``query`` at ``progress``.

    For ``OPTIMAL`` the planner enumerates all dump/discard subsets over
    the stateful operators (exact for the plan sizes we generate) and
    returns the plan minimizing suspend+resume overhead subject to the
    optional ``suspend_cost_budget``; ``DUMP_STATE`` and ``GO_BACK`` fix
    the subset to all / none respectively.
    """
    if not 0.0 <= progress <= 1.0:
        raise ValueError(f"progress must be in [0,1], got {progress}")
    stateful = _stateful_operators(query, progress)
    duration = query.true_cost.nominal_duration

    def cost_of(dumped: Sequence[int]) -> SuspendPlan:
        dumped_set = set(dumped)
        dump_mb = sum(op.state_mb for i, op in stateful if i in dumped_set)
        suspend_cost = dump_mb / dump_bandwidth_mb_s
        read_cost = dump_mb / dump_bandwidth_mb_s
        # earliest discarded stateful operator forces re-execution from
        # its start; with nothing discarded we resume exactly here.
        discarded = [i for i, _ in stateful if i not in dumped_set]
        if discarded:
            resume_progress = min(
                query.plan.progress_at_operator_start(i) for i in discarded
            )
            resume_progress = min(resume_progress, progress)
        else:
            resume_progress = progress
        reexecution = (progress - resume_progress) * duration
        return SuspendPlan(
            strategy=strategy,
            dumped_operators=tuple(sorted(dumped_set)),
            suspend_cost=suspend_cost,
            resume_cost=read_cost + reexecution,
            resume_progress=resume_progress,
        )

    indices = [i for i, _ in stateful]
    if strategy is SuspendStrategy.DUMP_STATE:
        return cost_of(indices)
    if strategy is SuspendStrategy.GO_BACK:
        return cost_of([])

    best: Optional[SuspendPlan] = None
    for r in range(len(indices) + 1):
        for subset in itertools.combinations(indices, r):
            plan = cost_of(subset)
            if (
                suspend_cost_budget is not None
                and plan.suspend_cost > suspend_cost_budget + 1e-12
            ):
                continue
            if best is None or plan.total_overhead < best.total_overhead - 1e-12:
                best = plan
    if best is None:
        # budget unsatisfiable: fall back to GoBack (cheapest suspend)
        best = cost_of([])
    return best


class SuspendResumeController(ExecutionController):
    """Suspend low-priority victims under pressure, resume when clear.

    Parameters
    ----------
    pressure:
        Predicate deciding whether the system is under high-priority
        pressure; the default fires when any request with priority >=
        ``protected_priority`` is queued or running slower than
        ``velocity_floor``.
    strategy, dump_bandwidth_mb_s, suspend_cost_budget:
        Forwarded to :func:`plan_suspension`.
    min_victim_work:
        Only queries with at least this much estimated remaining work
        are suspended (suspending a nearly-done query wastes overhead).
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_RUNTIME,
            Feature.TERMINATES_RUNNING_REQUEST,
            Feature.CHECKPOINTS_STATE,
        }
    )

    def __init__(
        self,
        protected_priority: int = 3,
        max_victim_priority: int = 1,
        strategy: SuspendStrategy = SuspendStrategy.OPTIMAL,
        dump_bandwidth_mb_s: float = 100.0,
        suspend_cost_budget: Optional[float] = None,
        min_victim_work: float = 5.0,
        resume_when_idle_below: int = 1,
        velocity_floor: float = 0.8,
        pressure: Optional[Callable[[ManagerContext], bool]] = None,
    ) -> None:
        self.protected_priority = protected_priority
        self.max_victim_priority = max_victim_priority
        self.strategy = strategy
        self.dump_bandwidth_mb_s = dump_bandwidth_mb_s
        self.suspend_cost_budget = suspend_cost_budget
        self.min_victim_work = min_victim_work
        self.resume_when_idle_below = resume_when_idle_below
        self.velocity_floor = velocity_floor
        self._pressure = pressure or self._default_pressure
        self.suspended: List[SuspendedQuery] = []
        self.suspend_events: List[Tuple[float, int, SuspendPlan]] = []
        self.resume_events: List[Tuple[float, int]] = []
        self._dumping: set = set()

    # ------------------------------------------------------------------
    def _default_pressure(self, context: ManagerContext) -> bool:
        manager = context.manager
        if manager is not None and hasattr(manager.scheduler, "queued_queries"):
            queued = manager.scheduler.queued_queries()
            if any(q.priority >= self.protected_priority for q in queued):
                return True
        for query in context.engine.running_queries():
            if query.priority < self.protected_priority:
                continue
            # Instantaneous slowdown: a query's full (unloaded) speed is
            # 1/nominal_duration, so speed * nominal_duration is the
            # fraction of full speed it currently receives.  Unlike the
            # elapsed-time velocity, this detects interference the
            # moment it appears.
            nominal = query.true_cost.nominal_duration
            if nominal <= 0:
                continue
            normalized = context.engine.speed_of(query.query_id) * nominal
            if normalized < self.velocity_floor:
                return True
        return False

    def control(self, context: ManagerContext) -> None:
        if self._pressure(context):
            self._suspend_victims(context)
        else:
            self._maybe_resume(context)

    def _suspend_victims(self, context: ManagerContext) -> None:
        victims = [
            q
            for q in context.engine.running_queries()
            if q.priority <= self.max_victim_priority
            and q.query_id not in self._dumping
        ]
        for victim in victims:
            progress = context.engine.progress_of(victim.query_id)
            remaining = (1.0 - progress) * victim.true_cost.total_work
            if remaining < self.min_victim_work:
                continue
            plan = plan_suspension(
                victim,
                progress,
                strategy=self.strategy,
                dump_bandwidth_mb_s=self.dump_bandwidth_mb_s,
                suspend_cost_budget=self.suspend_cost_budget,
            )
            # The dump itself takes suspend_cost seconds: the victim is
            # paused (rates freed) but holds memory until the dump ends.
            context.engine.pause(victim.query_id)
            context.sim.schedule(
                plan.suspend_cost,
                lambda v=victim, p=plan: self._complete_suspension(v, p, context),
                label=f"suspend:q{victim.query_id}",
            )
            self._dumping.add(victim.query_id)

    def _complete_suspension(
        self, victim: Query, plan: SuspendPlan, context: ManagerContext
    ) -> None:
        self._dumping.discard(victim.query_id)
        if not context.engine.is_running(victim.query_id):
            return  # completed or killed while dumping
        query = context.engine.remove_suspended(victim.query_id)
        query.progress = plan.resume_progress
        record = SuspendedQuery(
            query=query, plan=plan, suspended_at=context.now
        )
        self.suspended.append(record)
        self.suspend_events.append((context.now, query.query_id, plan))

    def _maybe_resume(self, context: ManagerContext) -> None:
        if not self.suspended:
            return
        if context.engine.running_count >= self.resume_when_idle_below:
            return
        record = self.suspended.pop(0)
        query = record.query
        # Re-execution cost is realized by the rolled-back progress the
        # engine will redo; the state *read* cost delays the restart.
        read_cost = sum(
            op.state_mb
            for i, op in enumerate(query.plan)
            if i in record.plan.dumped_operators
        ) / self.dump_bandwidth_mb_s
        self.resume_events.append((context.now, query.query_id))
        context.sim.schedule(
            read_cost,
            lambda q=query: self._restart(q, context),
            label=f"resume:q{query.query_id}",
        )

    def _restart(self, query: Query, context: ManagerContext) -> None:
        if query.state is not QueryState.SUSPENDED:
            return
        context.engine.start(query, weight=float(max(query.priority, 1)))

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        self._dumping.discard(query.query_id)
