"""Execution-control techniques (paper §3.4, Table 3).

One module per surveyed approach:

* :mod:`repro.execution.reprioritization` — priority aging via
  service-class demotion (DB2-style) [9];
* :mod:`repro.execution.economic` — importance-policy-driven resource
  allocation with economic models [4][46][78];
* :mod:`repro.execution.cancellation` — query kill and
  kill-and-resubmit [30][39][50][61][72];
* :mod:`repro.execution.krompass` — the fuzzy-logic execution
  controller of Krompass et al. choosing among reprioritize / kill /
  kill-and-resubmit [39];
* :mod:`repro.execution.suspend_resume` — suspend-and-resume with
  per-operator checkpoints, DumpState/GoBack and optimal suspend plans
  [10][12];
* :mod:`repro.execution.throttling` — utility and query throttling with
  PI / step / black-box controllers, constant and interrupt methods
  [64][65][66];
* :mod:`repro.execution.progress` — query progress indicators
  [11][41][43][45][55].
"""

from repro.execution.progress import (
    ProgressIndicator,
    SpeedAwareProgressIndicator,
    OperatorBoundaryProgressIndicator,
    OptimizerCostProgressIndicator,
)
from repro.execution.reprioritization import (
    PriorityAgingController,
    ServiceClassLadder,
)
from repro.execution.economic import EconomicResourceAllocator
from repro.execution.cancellation import QueryKillController, KillRule
from repro.execution.krompass import FuzzyExecutionController
from repro.execution.suspend_resume import (
    SuspendResumeController,
    SuspendStrategy,
    SuspendPlan,
    plan_suspension,
)
from repro.execution.throttling import (
    UtilityThrottlingController,
    QueryThrottlingController,
    ThrottleMethod,
)

__all__ = [
    "ProgressIndicator",
    "SpeedAwareProgressIndicator",
    "OperatorBoundaryProgressIndicator",
    "OptimizerCostProgressIndicator",
    "PriorityAgingController",
    "ServiceClassLadder",
    "EconomicResourceAllocator",
    "QueryKillController",
    "KillRule",
    "FuzzyExecutionController",
    "SuspendResumeController",
    "SuspendStrategy",
    "SuspendPlan",
    "plan_suspension",
    "UtilityThrottlingController",
    "QueryThrottlingController",
    "ThrottleMethod",
]
