"""Query progress indicators (paper §3.4, [11][41][43][45][55]).

"A query progress indicator attempts to estimate how much work a
running query has completed and how much work the query will require to
finish... progress indicators keep track of a running query and
continuously estimate the query's remaining execution time."

Three estimators of decreasing privilege:

* :class:`SpeedAwareProgressIndicator` — sees the fluid progress and
  current speed (the idealized GSLPI-style indicator [43]);
* :class:`OperatorBoundaryProgressIndicator` — only observes completed
  plan-operator boundaries (driver-level observability, as in [45]):
  progress is floored to the last boundary, making the estimate
  conservative mid-operator;
* :class:`OptimizerCostProgressIndicator` — no runtime observation at
  all: remaining time from the optimizer's estimate minus elapsed time,
  the naive baseline whose failure modes ([11]'s "when can we trust
  progress estimators?") the comparison experiment exhibits.

The indicators are what lets execution control distinguish a
nearly-done long query (not worth killing — §5.2's open problem) from
one that will run for hours more.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.classify import Feature
from repro.core.interfaces import ManagerContext
from repro.engine.query import Query


class ProgressIndicator(abc.ABC):
    """Estimates completed-work fraction and remaining seconds."""

    TECHNIQUE_FEATURES = frozenset(
        {Feature.ACTS_AT_RUNTIME, Feature.TRACKS_QUERY_PROGRESS}
    )

    @abc.abstractmethod
    def work_done(self, query: Query, context: ManagerContext) -> float:
        """Estimated fraction of the query's work completed, in [0, 1]."""

    @abc.abstractmethod
    def remaining_seconds(
        self, query: Query, context: ManagerContext
    ) -> Optional[float]:
        """Estimated seconds to completion (None = cannot estimate)."""


class SpeedAwareProgressIndicator(ProgressIndicator):
    """Fluid progress and current speed from the engine (idealized)."""

    def work_done(self, query: Query, context: ManagerContext) -> float:
        if not context.engine.is_running(query.query_id):
            return query.progress
        return context.engine.progress_of(query.query_id)

    def remaining_seconds(
        self, query: Query, context: ManagerContext
    ) -> Optional[float]:
        if not context.engine.is_running(query.query_id):
            return None
        progress = context.engine.progress_of(query.query_id)
        speed = context.engine.speed_of(query.query_id)
        if speed <= 0:
            return float("inf")
        return (1.0 - progress) / speed


class OperatorBoundaryProgressIndicator(ProgressIndicator):
    """Progress observed only at plan-operator boundaries."""

    def work_done(self, query: Query, context: ManagerContext) -> float:
        fluid = (
            context.engine.progress_of(query.query_id)
            if context.engine.is_running(query.query_id)
            else query.progress
        )
        index = query.plan.operator_at_progress(fluid)
        return query.plan.progress_at_operator_start(index)

    def remaining_seconds(
        self, query: Query, context: ManagerContext
    ) -> Optional[float]:
        if not context.engine.is_running(query.query_id):
            return None
        done = self.work_done(query, context)
        started = query.start_time if query.start_time is not None else context.now
        elapsed = context.now - started
        if done <= 0:
            # nothing observed yet: fall back to the optimizer estimate
            return query.estimated_cost.nominal_duration
        rate = done / max(elapsed, 1e-9)
        return (1.0 - done) / max(rate, 1e-9)


class OptimizerCostProgressIndicator(ProgressIndicator):
    """Remaining time from the optimizer estimate alone (the baseline).

    ``work_done`` = elapsed / estimated duration, clipped — exactly the
    estimator that calls a query "nearly done" forever once the
    optimizer underestimated it.
    """

    def work_done(self, query: Query, context: ManagerContext) -> float:
        estimate = query.estimated_cost.nominal_duration
        if estimate <= 0:
            return 1.0
        started = query.start_time if query.start_time is not None else context.now
        elapsed = context.now - started
        return min(1.0, elapsed / estimate)

    def remaining_seconds(
        self, query: Query, context: ManagerContext
    ) -> Optional[float]:
        estimate = query.estimated_cost.nominal_duration
        started = query.start_time if query.start_time is not None else context.now
        elapsed = context.now - started
        return max(0.0, estimate - elapsed)
