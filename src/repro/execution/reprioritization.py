"""Priority aging by service-class demotion (paper §3.4, Table 3, [9]).

"Priority aging ... dynamically changes the priority of shared system
resource access for a request as it runs.  When the running request
tries to access more rows than its estimated row counts or executes
longer than a certain allowed time period, the request's service level
will be dynamically degraded, such as from a high level to a medium
level."  This is DB2's remap-to-lower-service-subclass action.

:class:`ServiceClassLadder` defines the levels and their fair-share
weights; :class:`PriorityAgingController` checks threshold violations
every control tick and demotes offenders one rung at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.classify import Feature
from repro.core.interfaces import ExecutionController, ManagerContext
from repro.core.policy import Threshold, ThresholdAction, ThresholdKind
from repro.engine.query import Query
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServiceClassLadder:
    """Ordered service levels, highest first: (name, weight) pairs."""

    levels: Tuple[Tuple[str, float], ...] = (
        ("high", 4.0),
        ("medium", 2.0),
        ("low", 1.0),
    )

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ConfigurationError("a ladder needs at least two levels")
        weights = [w for _, w in self.levels]
        if any(w <= 0 for w in weights):
            raise ConfigurationError("level weights must be positive")
        if any(a <= b for a, b in zip(weights, weights[1:])):
            raise ConfigurationError("level weights must strictly decrease")

    def index_of(self, name: str) -> int:
        for index, (level, _) in enumerate(self.levels):
            if level == name:
                return index
        raise KeyError(name)

    def weight_of(self, name: str) -> float:
        return self.levels[self.index_of(name)][1]

    def below(self, name: str) -> Optional[str]:
        """The next lower level, or None at the bottom."""
        index = self.index_of(name)
        if index + 1 >= len(self.levels):
            return None
        return self.levels[index + 1][0]

    @property
    def top(self) -> str:
        return self.levels[0][0]


class PriorityAgingController(ExecutionController):
    """Demote running queries that violate execution thresholds.

    Parameters
    ----------
    ladder:
        The service-class ladder (weights applied via the engine).
    thresholds:
        Violations that trigger a demotion.  Supported kinds:
        ELAPSED_TIME (run time so far), ROWS_RETURNED (rows produced so
        far ≈ progress × actual rows), CPU_TIME (progress × CPU demand).
    demote_cooldown:
        Minimum seconds between demotions of the same query (one rung
        per violation event, as DB2 remaps once per threshold trip).
    """

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_RUNTIME,
            Feature.CHANGES_RUNNING_PRIORITY,
            Feature.USES_THRESHOLDS,
        }
    )

    def __init__(
        self,
        ladder: Optional[ServiceClassLadder] = None,
        thresholds: Sequence[Threshold] = (
            Threshold(ThresholdKind.ELAPSED_TIME, 30.0, ThresholdAction.DEMOTE),
        ),
        demote_cooldown: float = 10.0,
    ) -> None:
        self.ladder = ladder or ServiceClassLadder()
        self.thresholds = list(thresholds)
        for threshold in self.thresholds:
            if threshold.action is not ThresholdAction.DEMOTE:
                raise ConfigurationError(
                    "PriorityAgingController thresholds must use DEMOTE"
                )
        self.demote_cooldown = demote_cooldown
        self._last_demotion: Dict[int, float] = {}
        self.demotion_events: List[Tuple[float, int, str]] = []

    def _observed_value(
        self, kind: ThresholdKind, query: Query, context: ManagerContext
    ) -> Optional[float]:
        if kind is ThresholdKind.ELAPSED_TIME:
            if query.start_time is None:
                return None
            return context.now - query.start_time
        progress = context.engine.progress_of(query.query_id)
        if kind is ThresholdKind.ROWS_RETURNED:
            return progress * query.true_cost.rows
        if kind is ThresholdKind.CPU_TIME:
            return progress * query.true_cost.cpu_seconds
        return None

    def _has_level(self, name: str) -> bool:
        return any(level == name for level, _ in self.ladder.levels)

    def control(self, context: ManagerContext) -> None:
        for query in context.engine.running_queries():
            level = query.service_class or self.ladder.top
            if not self._has_level(level):
                # the query was mapped to a service *class* (e.g. DB2's
                # "main"); aging operates on its subclasses, starting
                # from the top one
                level = self.ladder.top
            if query.service_class != level:
                query.service_class = level
            last = self._last_demotion.get(query.query_id, float("-inf"))
            if context.now - last < self.demote_cooldown:
                continue
            violated = any(
                threshold.violated_by(
                    self._observed_value(threshold.kind, query, context)
                )
                for threshold in self.thresholds
            )
            if not violated:
                continue
            lower = self.ladder.below(level)
            if lower is None:
                continue
            query.service_class = lower
            query.demotions += 1
            self._last_demotion[query.query_id] = context.now
            context.engine.set_weight(
                query.query_id, self.ladder.weight_of(lower)
            )
            self.demotion_events.append((context.now, query.query_id, lower))

    def notify_exit(self, query: Query, context: ManagerContext) -> None:
        self._last_demotion.pop(query.query_id, None)
