"""Exception hierarchy for the dbwm reproduction library.

All library-specific errors derive from :class:`DbwmError` so callers can
catch a single base class.  Control-flow outcomes that are *expected* in a
workload-management process (a rejected admission, a killed query) are
modelled as result values, not exceptions; the exceptions below indicate
misuse of the API or an internally inconsistent state.
"""

from __future__ import annotations


class DbwmError(Exception):
    """Base class for all errors raised by the library."""


class SimulationError(DbwmError):
    """The discrete-event simulator was driven into an invalid state."""


class SimulationBudgetExceeded(SimulationError):
    """An event budget (``max_events``) was exhausted before the run drained.

    Raised instead of silently truncating: a macro-scenario that stops at
    the cap would otherwise report partial counters and digests as if
    they were complete.  Carries the budget and the number of events
    fired so harnesses can report exactly where the run stopped.
    """

    def __init__(self, message: str, *, budget: int, fired: int) -> None:
        super().__init__(message)
        self.budget = budget
        self.fired = fired


class SchedulingError(DbwmError):
    """A scheduler was asked to do something it cannot do."""


class PolicyError(DbwmError):
    """A workload-management policy is malformed or inconsistent."""


class ConfigurationError(DbwmError):
    """A system model or manager was configured inconsistently."""


class QueryStateError(DbwmError):
    """An operation is not valid for the query's current lifecycle state."""


class ClassificationError(DbwmError):
    """A request or technique could not be classified."""


class CapacityError(DbwmError):
    """A resource pool was asked for more capacity than exists."""


class ParallelExecutionError(DbwmError):
    """A sweep task failed (or timed out) beyond its retry budget."""
