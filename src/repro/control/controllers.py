"""Feedback controllers used by the surveyed execution controls.

Three controllers appear in the survey's throttling techniques:

* :class:`PIController` — Parekh et al. [64] "assume a linear
  relationship between the amount of throttling and system performance
  and use a Proportional-Integral controller to control the amount of
  throttling";
* :class:`StepController` — Powley et al.'s "simple controller ...
  based on a diminishing step function" [65];
* :class:`BlackBoxModelController` — Powley et al.'s "black-box model
  controller [that] uses a system feedback control approach": it fits a
  linear input/output model from observed (control, performance) pairs
  by least squares and inverts it to pick the next control value.

All controllers are pure computation — no simulator access — so they
are unit-testable against synthetic plants and reusable by any actuator
(throttle fraction, MPL, resource share).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass
class PIController:
    """Discrete-time proportional-integral controller.

    Computes a control output in ``[minimum, maximum]`` from the error
    between a setpoint and the measured value::

        u(k) = clamp(kp * e(k) + ki * sum_i<=k e(i))

    ``setpoint`` and measurements share units (e.g. performance
    degradation ratio); the output is the actuator value (e.g. throttle
    fraction).  The integral term is anti-windup-clamped to the output
    range so saturation does not accumulate unbounded state.
    """

    kp: float
    ki: float
    setpoint: float
    minimum: float = 0.0
    maximum: float = 1.0
    _integral: float = field(default=0.0, init=False)
    history: List[Tuple[float, float]] = field(default_factory=list, init=False)

    def update(self, measured: float) -> float:
        """Feed a measurement, get the next control output."""
        error = measured - self.setpoint
        self._integral += error
        raw = self.kp * error + self.ki * self._integral
        output = min(self.maximum, max(self.minimum, raw))
        # anti-windup: keep the integral consistent with the clamp
        if self.ki != 0.0 and raw != output:
            self._integral = (output - self.kp * error) / self.ki
        self.history.append((measured, output))
        return output

    def reset(self) -> None:
        self._integral = 0.0
        self.history.clear()


@dataclass
class StepController:
    """Diminishing-step controller (Powley et al.'s simple controller).

    Moves the control value toward satisfying a goal in steps; each
    direction reversal halves the step, converging like bisection.
    ``update`` takes the goal violation sign: positive = goal missed,
    increase control; negative = over-controlled, back off.
    """

    initial_step: float = 0.25
    minimum: float = 0.0
    maximum: float = 1.0
    value: float = 0.0
    min_step: float = 0.01
    _step: float = field(default=0.0, init=False)
    _last_direction: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._step = self.initial_step

    def update(self, violation: float) -> float:
        """``violation`` > 0: tighten control; < 0: relax; 0: hold."""
        direction = 0 if violation == 0 else (1 if violation > 0 else -1)
        if direction != 0:
            if self._last_direction != 0 and direction != self._last_direction:
                self._step = max(self.min_step, self._step / 2.0)
            self.value = min(
                self.maximum, max(self.minimum, self.value + direction * self._step)
            )
            self._last_direction = direction
        return self.value

    def reset(self) -> None:
        self.value = self.minimum
        self._step = self.initial_step
        self._last_direction = 0


@dataclass
class BlackBoxModelController:
    """Least-squares black-box model controller (Powley et al. [65][66]).

    Learns performance = a * control + b from the observed history and
    picks ``control = (setpoint - b) / a`` each period.  Until enough
    observations exist (or while the fitted slope is degenerate) it
    probes with small increments so the model becomes identifiable.
    """

    setpoint: float
    minimum: float = 0.0
    maximum: float = 1.0
    min_observations: int = 3
    probe_step: float = 0.1
    value: float = 0.0
    _observations: List[Tuple[float, float]] = field(default_factory=list, init=False)

    def update(self, measured: float) -> float:
        """Feed the measurement produced by the current control value."""
        self._observations.append((self.value, measured))
        if len(self._observations) < self.min_observations:
            self.value = min(self.maximum, self.value + self.probe_step)
            return self.value
        controls = np.array([c for c, _ in self._observations[-20:]])
        outputs = np.array([m for _, m in self._observations[-20:]])
        if np.var(controls) < 1e-9:
            self.value = min(self.maximum, self.value + self.probe_step)
            return self.value
        slope, intercept = np.polyfit(controls, outputs, 1)
        if abs(slope) < 1e-9:
            self.value = min(self.maximum, self.value + self.probe_step)
            return self.value
        target = (self.setpoint - intercept) / slope
        self.value = float(min(self.maximum, max(self.minimum, target)))
        return self.value

    def reset(self) -> None:
        self.value = self.minimum
        self._observations.clear()
