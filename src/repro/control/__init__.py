"""Autonomic control: feedback controllers and the MAPE loop (§5.3).

* :mod:`repro.control.controllers` — the controller algorithms the
  surveyed techniques rely on: Proportional-Integral control [17][28]
  (Parekh et al.'s utility throttling), the diminishing-step controller
  and the black-box least-squares model controller of Powley et al.
  [65][66];
* :mod:`repro.control.loop` — the paper's §5.3 vision implemented: a
  Monitor → Analyze → Plan → Execute feedback loop that selects and
  applies workload-management techniques by utility.
"""

from repro.control.controllers import (
    PIController,
    StepController,
    BlackBoxModelController,
)
from repro.control.loop import (
    AutonomicLoop,
    MonitorStage,
    AnalyzeStage,
    PlanStage,
    ExecuteStage,
    LoopAction,
)

__all__ = [
    "PIController",
    "StepController",
    "BlackBoxModelController",
    "AutonomicLoop",
    "MonitorStage",
    "AnalyzeStage",
    "PlanStage",
    "ExecuteStage",
    "LoopAction",
]
