"""The autonomic workload-management loop of paper §5.3.

"The feedback loop control consists of four components: a monitor that
continuously monitors a database system performance, an analyzer that
analyzes the database system available capacity and the running query's
execution progress, and compares the running query's performance with
their required performance goals, a planner that decides what technique
is most effective for a running workload under its certain circumstances
by applying the utility function, and an effector that imposes the
control on the workload."

:class:`AutonomicLoop` is an :class:`~repro.core.interfaces.ExecutionController`
so it slots straight into the manager's control tick.  Each stage is a
replaceable object; the defaults implement the paper's sketch:

* **Monitor** — SLA attainment per workload + the system sample;
* **Analyze** — symptoms: which *goal* workloads miss objectives, is
  the system overloaded (memory/conflict), which running queries are
  *problematic* (low priority, heavy, long-running, little progress);
* **Plan** — score each candidate action with a utility function
  (expected attainment gain, importance-weighted, minus action cost:
  kill loses completed work, suspend pays overhead, throttle is cheap
  but weak) and pick the argmax;
* **Execute** — impose the action through the engine/manager.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.classify import Feature
from repro.core.interfaces import ExecutionController, ManagerContext
from repro.engine.query import Query
from repro.execution.progress import ProgressIndicator, SpeedAwareProgressIndicator


class LoopAction(enum.Enum):
    """Techniques the planner can choose among (§5.2's open problem)."""

    NONE = "none"
    DEMOTE = "demote"                  # reprioritization
    THROTTLE = "throttle"              # request throttling
    SUSPEND = "suspend"                # pause outright (suspension)
    KILL_AND_RESUBMIT = "kill_and_resubmit"
    RELEASE = "release"                # undo controls once goals recover


@dataclass
class Observations:
    """Monitor output."""

    time: float
    attainment: Dict[str, float]        # workload -> fraction of goals met
    memory_pressure: float
    conflict_ratio: float
    running: int
    queued: int


@dataclass
class Symptoms:
    """Analyzer output."""

    missing_workloads: List[str]
    overloaded: bool
    problematic: List[Query]
    total_missing_importance: int = 0


class MonitorStage:
    """Collects SLA attainment and system-level state."""

    def observe(self, context: ManagerContext) -> Observations:
        attainment = context.metrics.attainment(context.slas, context.now)
        return Observations(
            time=context.now,
            attainment=attainment,
            memory_pressure=context.engine.memory_pressure(),
            conflict_ratio=min(context.engine.conflict_ratio(), 1e6),
            running=context.engine.running_count,
            queued=context.manager.queued_count if context.manager else 0,
        )


class AnalyzeStage:
    """Derives symptoms from observations."""

    def __init__(
        self,
        problem_priority: int = 1,
        problem_work: float = 10.0,
        problem_age: float = 5.0,
        progress_indicator: Optional[ProgressIndicator] = None,
    ) -> None:
        self.problem_priority = problem_priority
        self.problem_work = problem_work
        self.problem_age = problem_age
        self.progress = progress_indicator or SpeedAwareProgressIndicator()

    def analyze(
        self, observations: Observations, context: ManagerContext
    ) -> Symptoms:
        missing = [
            workload
            for workload, attained in observations.attainment.items()
            if attained < 1.0
        ]
        total_importance = sum(
            context.importance_of(workload) for workload in missing
        )
        overloaded = (
            observations.memory_pressure > 1.2
            or observations.conflict_ratio > 1.5
        )
        problematic = []
        for query in context.engine.iter_running():
            if query.priority > self.problem_priority:
                continue
            started = query.start_time if query.start_time is not None else observations.time
            age = observations.time - started
            if age < self.problem_age:
                continue
            if query.true_cost.total_work < self.problem_work:
                continue
            if self.progress.work_done(query, context) > 0.9:
                continue  # nearly done: controlling it frees little
            problematic.append(query)
        problematic.sort(
            key=lambda q: q.estimated_cost.total_work, reverse=True
        )
        return Symptoms(
            missing_workloads=missing,
            overloaded=overloaded,
            problematic=problematic,
            total_missing_importance=total_importance,
        )


class PlanStage:
    """Utility-scored action selection."""

    def __init__(
        self,
        progress_indicator: Optional[ProgressIndicator] = None,
    ) -> None:
        self.progress = progress_indicator or SpeedAwareProgressIndicator()

    def action_utilities(
        self, symptoms: Symptoms, context: ManagerContext
    ) -> Dict[LoopAction, float]:
        """Utility of each action under the current symptoms."""
        utilities = {action: 0.0 for action in LoopAction}
        if not symptoms.missing_workloads:
            utilities[LoopAction.RELEASE] = 0.5
            utilities[LoopAction.NONE] = 0.4
            return utilities
        if not symptoms.problematic:
            utilities[LoopAction.NONE] = 0.1
            return utilities
        need = float(symptoms.total_missing_importance)
        victim = symptoms.problematic[0]
        done = self.progress.work_done(victim, context)
        remaining = 1.0 - done
        # freed resources scale with the victim's remaining footprint
        footprint = min(1.0, victim.true_cost.total_work / 40.0)
        utilities[LoopAction.DEMOTE] = need * 0.4 * footprint
        utilities[LoopAction.THROTTLE] = need * 0.6 * footprint
        # suspension frees everything but pays overhead
        utilities[LoopAction.SUSPEND] = need * 0.85 * footprint - 0.1
        # kill frees everything immediately but wastes completed work
        utilities[LoopAction.KILL_AND_RESUBMIT] = (
            need * footprint - 1.5 * done - 0.2
        )
        if symptoms.overloaded:
            utilities[LoopAction.SUSPEND] += 0.3
            utilities[LoopAction.KILL_AND_RESUBMIT] += 0.3
        return utilities

    def plan(self, symptoms: Symptoms, context: ManagerContext) -> LoopAction:
        utilities = self.action_utilities(symptoms, context)
        return max(utilities, key=lambda a: (utilities[a], a.value))


class ExecuteStage:
    """Imposes the chosen action through the engine/manager."""

    def __init__(self, throttle_factor: float = 0.2, resubmit_delay: float = 20.0):
        self.throttle_factor = throttle_factor
        self.resubmit_delay = resubmit_delay
        self._suspended: List[int] = []

    def execute(
        self,
        action: LoopAction,
        symptoms: Symptoms,
        context: ManagerContext,
    ) -> Optional[int]:
        """Apply ``action``; returns the affected query id (if any)."""
        engine = context.engine
        if action is LoopAction.RELEASE:
            released = None
            for qid in list(self._suspended):
                if engine.is_running(qid):
                    engine.resume(qid)
                    released = qid
                self._suspended.remove(qid)
            for query in engine.running_queries():
                if engine.throttle_of(query.query_id) < 1.0:
                    engine.resume(query.query_id)
                    released = query.query_id
            return released
        if action is LoopAction.NONE or not symptoms.problematic:
            return None
        victim = symptoms.problematic[0]
        qid = victim.query_id
        if not engine.is_running(qid):
            return None
        if action is LoopAction.DEMOTE:
            engine.set_weight(qid, max(0.05, engine.weight_of(qid) / 2.0))
        elif action is LoopAction.THROTTLE:
            engine.set_throttle(qid, self.throttle_factor)
        elif action is LoopAction.SUSPEND:
            engine.pause(qid)
            self._suspended.append(qid)
        elif action is LoopAction.KILL_AND_RESUBMIT:
            engine.kill(qid)
            if context.manager is not None:
                context.manager.resubmit(
                    victim.clone_for_resubmit(), delay=self.resubmit_delay
                )
        return qid


class AutonomicLoop(ExecutionController):
    """Monitor → Analyze → Plan → Execute, once per control tick."""

    TECHNIQUE_FEATURES = frozenset(
        {
            Feature.ACTS_AT_RUNTIME,
            Feature.USES_FEEDBACK_CONTROLLER,
            Feature.USES_UTILITY_FUNCTIONS,
            Feature.CHANGES_RUNNING_PRIORITY,
            Feature.PAUSES_RUNNING_REQUEST,
            Feature.TERMINATES_RUNNING_REQUEST,
            Feature.RESUBMITS_AFTER_KILL,
        }
    )

    def __init__(
        self,
        monitor: Optional[MonitorStage] = None,
        analyzer: Optional[AnalyzeStage] = None,
        planner: Optional[PlanStage] = None,
        effector: Optional[ExecuteStage] = None,
    ) -> None:
        self.monitor = monitor or MonitorStage()
        self.analyzer = analyzer or AnalyzeStage()
        self.planner = planner or PlanStage()
        self.effector = effector or ExecuteStage()
        #: (time, action, affected query id) decision log
        self.decisions: List[Tuple[float, LoopAction, Optional[int]]] = []

    def control(self, context: ManagerContext) -> None:
        observations = self.monitor.observe(context)
        symptoms = self.analyzer.analyze(observations, context)
        action = self.planner.plan(symptoms, context)
        affected = self.effector.execute(action, symptoms, context)
        if action is not LoopAction.NONE or affected is not None:
            self.decisions.append((context.now, action, affected))

    def actions_taken(self) -> Dict[LoopAction, int]:
        counts: Dict[LoopAction, int] = {}
        for _, action, _ in self.decisions:
            counts[action] = counts.get(action, 0) + 1
        return counts
