#!/usr/bin/env python3
"""The §5.3 vision, running: an autonomic MAPE loop managing a server.

A gold workload with a tight SLA shares the machine with waves of
problematic ad-hoc queries.  The AutonomicLoop monitors SLA attainment,
analyzes which running queries are problematic, plans the most
effective technique by utility (demote / throttle / suspend / kill) and
executes it — then releases controls when the goals recover.

The script prints the loop's decision log so you can watch the planner
pick techniques as the mix shifts.

Run:  python examples/autonomic_manager.py
"""

from repro import MachineSpec, Simulator, SLASet, WorkloadManager, response_time_sla
from repro.control.loop import AnalyzeStage, AutonomicLoop, ExecuteStage
from repro.workloads.generator import Scenario
from repro.workloads.models import (
    Constant,
    Exponential,
    OpenArrivals,
    RequestClass,
    WorkloadSpec,
)

HORIZON = 180.0


def build_scenario() -> Scenario:
    gold = WorkloadSpec(
        name="gold",
        request_classes=(
            (
                RequestClass(
                    "gold-q",
                    cpu=Exponential(0.25),
                    io=Exponential(0.1),
                    memory_mb=Constant(16.0),
                ),
                1.0,
            ),
        ),
        arrivals=OpenArrivals(rate=1.0),
        priority=4,
    )
    adhoc = WorkloadSpec(
        name="adhoc",
        request_classes=(
            (
                RequestClass(
                    "monster",
                    cpu=Constant(300.0),
                    io=Constant(50.0),
                    memory_mb=Constant(128.0),
                ),
                1.0,
            ),
        ),
        arrivals=OpenArrivals(
            rate=0.0,
            phases=((20.0, 0.08), (60.0, 0.0), (110.0, 0.08), (150.0, 0.0)),
        ),
        priority=1,
    )
    return Scenario(specs=(gold, adhoc), horizon=HORIZON)


def run(with_loop: bool):
    sim = Simulator(seed=7)
    loop = AutonomicLoop(
        analyzer=AnalyzeStage(problem_age=2.0, problem_work=10.0),
        effector=ExecuteStage(resubmit_delay=80.0),
    )
    manager = WorkloadManager(
        sim,
        machine=MachineSpec(cpu_capacity=1.0, disk_capacity=2.0, memory_mb=2048.0),
        execution_controllers=[loop] if with_loop else [],
        slas=SLASet([response_time_sla("gold", average=1.0, importance=4)]),
        control_period=2.0,
        weight_fn=lambda q: 1.0,
    )
    generator = build_scenario().build(
        sim, manager.submit, sessions=manager.sessions
    )
    manager.add_completion_listener(generator.notify_done)
    manager.run(HORIZON, drain=0.0)
    return manager, loop, sim


def main() -> None:
    print("Without the autonomic loop:")
    manager, _, sim = run(with_loop=False)
    print(" ", manager.metrics.summary_line("gold", sim.now))
    baseline_rt = manager.metrics.stats_for("gold").mean_response_time()

    print("\nWith the autonomic loop (Monitor->Analyze->Plan->Execute):")
    manager, loop, sim = run(with_loop=True)
    print(" ", manager.metrics.summary_line("gold", sim.now))
    managed_rt = manager.metrics.stats_for("gold").mean_response_time()
    attainment = manager.metrics.attainment(manager.slas, sim.now)
    print(f"  gold SLA attainment: {attainment.get('gold', 0.0):.0%}")

    print("\nLoop decision log (first 20 interventions):")
    shown = 0
    for time, action, affected in loop.decisions:
        if action.value in ("none",):
            continue
        target = f" -> query {affected}" if affected is not None else ""
        print(f"  t={time:6.1f}s  {action.value}{target}")
        shown += 1
        if shown >= 20:
            break

    print("\nActions taken:", {a.value: n for a, n in loop.actions_taken().items()})
    print(f"\nGold mean response time: {baseline_rt:.2f}s -> {managed_rt:.2f}s")


if __name__ == "__main__":
    main()
