#!/usr/bin/env python3
"""A/B policy lab: compare management policies on an identical trace.

Records a consolidation scenario under an unmanaged baseline, then
replays the *exact same request stream* (same costs, arrival times,
optimizer estimates) under two candidates:

* a hand-tuned threshold stack (BI concurrency throttle), and
* the §5.2-inspired :class:`CapacityAwareAdmission`, whose thresholds
  are derived from a live capacity estimate instead of manual knobs.

Run:  python examples/ab_policy_lab.py
"""

from repro import MachineSpec, Simulator, WorkloadManager
from repro.core.capacity import CapacityAwareAdmission, CapacityEstimator
from repro.reporting.figures import ascii_bar_chart
from repro.scheduling.queues import MultiQueueScheduler
from repro.workloads.generator import Scenario, bi_workload, oltp_workload
from repro.workloads.replay import ab_compare

MACHINE = MachineSpec(cpu_capacity=4.0, disk_capacity=2.0, memory_mb=2048.0)


def scenario() -> Scenario:
    return Scenario(
        specs=(
            oltp_workload(rate=10.0, priority=3),
            bi_workload(
                rate=0.2, priority=1, median_cpu=8.0, median_io=15.0,
                memory_low=300.0, memory_high=900.0,
            ),
        ),
        horizon=90.0,
    )


def baseline(sim: Simulator) -> WorkloadManager:
    return WorkloadManager(sim, machine=MACHINE)


def hand_tuned(sim: Simulator) -> WorkloadManager:
    return WorkloadManager(
        sim,
        machine=MACHINE,
        scheduler=MultiQueueScheduler(per_workload_mpl={"bi": 2}),
    )


def capacity_aware(sim: Simulator) -> WorkloadManager:
    return WorkloadManager(
        sim,
        machine=MACHINE,
        admission=CapacityAwareAdmission(
            estimator=CapacityEstimator(overload_memory=1.0),
            protected_priority=3,
        ),
    )


def main() -> None:
    results = {}
    base, tuned = ab_compare(baseline, hand_tuned, scenario(), seed=31)
    results["baseline"] = base
    results["hand-tuned throttle"] = tuned
    _, capacity = ab_compare(baseline, capacity_aware, scenario(), seed=31)
    results["capacity-aware"] = capacity

    print("Same request stream, three policies:\n")
    p95s = {}
    for name, manager in results.items():
        oltp = manager.metrics.stats_for("oltp")
        bi = manager.metrics.stats_for("bi")
        p95s[name] = oltp.percentile_response_time(95.0)
        print(f"=== {name} ===")
        print(" ", manager.metrics.summary_line("oltp", 180.0))
        print(" ", manager.metrics.summary_line("bi", 180.0))
        print()

    print(
        ascii_bar_chart(
            p95s, title="OLTP p95 on the identical trace", unit="s"
        )
    )
    print(
        "\nThe capacity-aware gate reaches hand-tuned protection without "
        "any manually set thresholds (paper §5.2)."
    )


if __name__ == "__main__":
    main()
