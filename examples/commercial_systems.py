#!/usr/bin/env python3
"""Configure the three Table 4 systems and watch them manage the same mix.

Each commercial model (§4.1) is configured in its own vocabulary —
DB2 workloads/thresholds, SQL Server pools/groups/classifier functions,
Teradata filters/throttles/workload definitions — compiled onto the
framework, and run against an identical OLTP + BI consolidation
scenario.  The Teradata run additionally demonstrates the Workload
Analyzer: it mines the DB2 run's query log (as a stand-in DBQL) and
prints recommended workload definitions.

Run:  python examples/commercial_systems.py
"""

from repro import MachineSpec, Simulator
from repro.core.policy import ThresholdAction, ThresholdKind
from repro.systems.db2 import DB2Threshold, DB2Workload, DB2WorkloadManagerConfig
from repro.systems.sqlserver import (
    ResourceGovernorConfig,
    ResourcePool,
    WorkloadGroup,
)
from repro.systems.teradata import (
    QueryResourceFilter,
    TeradataASMConfig,
    TeradataWorkloadAnalyzer,
    TeradataWorkloadDefinition,
)
from repro.workloads.generator import Scenario, bi_workload, oltp_workload

HORIZON = 90.0
MACHINE = MachineSpec(cpu_capacity=4.0, disk_capacity=2.0, memory_mb=2048.0)


def scenario() -> Scenario:
    return Scenario(
        specs=(
            oltp_workload(rate=8.0, priority=3, application="order-entry"),
            bi_workload(rate=0.25, priority=1, application="analytics"),
        ),
        horizon=HORIZON,
    )


def run(bundle):
    sim = Simulator(seed=99)
    manager = bundle.create_manager(sim, machine=MACHINE, control_period=2.0)
    generator = scenario().build(sim, manager.submit, sessions=manager.sessions)
    manager.add_completion_listener(generator.notify_done)
    manager.run(HORIZON, drain=30.0)
    print(f"\n=== {bundle.name} ===")
    for workload in sorted(manager.metrics.workloads()):
        print(" ", manager.metrics.summary_line(workload, sim.now))
    print(f"  admission rejections: {manager.rejected_count}")
    return manager


def main() -> None:
    db2 = DB2WorkloadManagerConfig(
        workloads=(
            DB2Workload(name="orders", application="order-entry", priority=3),
            DB2Workload(name="analytics", application="analytics", priority=1),
        ),
        thresholds=(
            DB2Threshold(ThresholdKind.ESTIMATED_COST, 150.0, ThresholdAction.REJECT),
            DB2Threshold(
                ThresholdKind.CONCURRENCY, 2, ThresholdAction.QUEUE,
                workload="analytics",
            ),
            DB2Threshold(ThresholdKind.ELAPSED_TIME, 30.0, ThresholdAction.DEMOTE),
        ),
    )
    db2_manager = run(db2.build())

    sqlserver = ResourceGovernorConfig(
        pools=(
            ResourcePool("default"),
            ResourcePool("apps", min_percent=60.0),
            ResourcePool("bi", max_percent=25.0),
        ),
        groups=(
            WorkloadGroup("default", "default"),
            WorkloadGroup("app-group", "apps", importance=3),
            WorkloadGroup("bi-group", "bi", importance=1, group_max_requests=2),
        ),
        classifier=lambda query, session: (
            "bi-group"
            if session and session.attributes.application == "analytics"
            else "app-group"
        ),
        query_governor_cost_limit=150.0,
    )
    run(sqlserver.build())

    teradata = TeradataASMConfig(
        definitions=(
            TeradataWorkloadDefinition(
                name="tactical", application="order-entry",
                priority=3, allocation_weight=4.0,
            ),
            TeradataWorkloadDefinition(
                name="analytics", application="analytics",
                priority=1, allocation_weight=1.0, throttle=2,
            ),
        ),
        resource_filters=(
            QueryResourceFilter("no-monsters", max_estimated_work=150.0),
        ),
    )
    run(teradata.build())

    print("\n=== Teradata Workload Analyzer over the recorded query log ===")
    analyzer = TeradataWorkloadAnalyzer(min_group_size=10)
    for recommendation in analyzer.analyze(db2_manager.query_log):
        print(
            f"  recommend workload {recommendation.name!r}: "
            f"{recommendation.record_count} queries, mean work "
            f"{recommendation.mean_work:.2f}s, priority "
            f"{recommendation.suggested_priority}, goal "
            f"{recommendation.response_time_goal:.0f}s"
        )


if __name__ == "__main__":
    main()
