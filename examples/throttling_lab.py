#!/usr/bin/env python3
"""Throttling lab: Parekh's PI utility throttling and Powley's query
throttling controllers side by side (paper §4.2.2).

An on-line backup utility and large ad-hoc queries degrade a production
workload; the lab runs each surveyed controller and prints its control
trajectory — the throttle level over time — so you can see the PI ramp,
the step controller's bisection, and the black-box model's probing.

Run:  python examples/throttling_lab.py
"""

from repro import MachineSpec, Simulator, WorkloadManager
from repro.execution.throttling import (
    QueryThrottlingController,
    ThrottleMethod,
    UtilityThrottlingController,
)
from repro.reporting.figures import ascii_line_chart
from repro.workloads.generator import Scenario, utility_workload
from repro.workloads.models import (
    Constant,
    Exponential,
    OpenArrivals,
    RequestClass,
    WorkloadSpec,
)

HORIZON = 90.0
MACHINE = MachineSpec(cpu_capacity=2.0, disk_capacity=1.0, memory_mb=4096.0)


def production() -> WorkloadSpec:
    return WorkloadSpec(
        name="prod",
        request_classes=(
            (
                RequestClass(
                    "prod-q", cpu=Exponential(0.05), io=Exponential(0.4),
                    memory_mb=Constant(8.0),
                ),
                1.0,
            ),
        ),
        arrivals=OpenArrivals(rate=1.2),
        priority=3,
    )


def big_queries() -> WorkloadSpec:
    return WorkloadSpec(
        name="adhoc",
        request_classes=(
            (
                RequestClass(
                    "big", cpu=Constant(5.0), io=Constant(120.0),
                    memory_mb=Constant(64.0),
                ),
                1.0,
            ),
        ),
        arrivals=OpenArrivals(rate=0.0, phases=((5.0, 0.04),)),
        priority=1,
    )


def run(name, controller, background):
    sim = Simulator(seed=5)
    manager = WorkloadManager(
        sim,
        machine=MACHINE,
        execution_controllers=[controller],
        control_period=1.0,
        weight_fn=lambda q: 1.0,
    )
    scenario = Scenario(specs=(production(), background), horizon=HORIZON)
    generator = scenario.build(sim, manager.submit, sessions=manager.sessions)
    manager.add_completion_listener(generator.notify_done)
    manager.run(HORIZON, drain=0.0)

    print(f"\n=== {name} ===")
    print(" ", manager.metrics.summary_line("prod", sim.now))
    history = controller.level_history
    if history:
        chart = ascii_line_chart(
            [t for t, _ in history],
            {"throttle": [level for _, level in history]},
            title=f"{name}: throttle level over time",
            x_label="time (s)",
            y_label="sleep fraction",
            height=8,
            width=56,
        )
        print(chart)


def main() -> None:
    run(
        "PI utility throttling (Parekh et al.)",
        UtilityThrottlingController(
            degradation_target=0.15, baseline_velocity=0.9
        ),
        utility_workload(count=2, at=5.0, io_seconds=200.0),
    )
    run(
        "Step-controller query throttling (Powley et al.)",
        QueryThrottlingController(
            velocity_goal=0.75, controller="step", large_query_work=20.0
        ),
        big_queries(),
    )
    run(
        "Black-box model query throttling (Powley et al.)",
        QueryThrottlingController(
            velocity_goal=0.75, controller="blackbox", large_query_work=20.0
        ),
        big_queries(),
    )
    run(
        "Interrupt-method throttling (one long pause per period)",
        QueryThrottlingController(
            velocity_goal=0.75,
            controller="step",
            method=ThrottleMethod.INTERRUPT,
            large_query_work=20.0,
        ),
        big_queries(),
    )


if __name__ == "__main__":
    main()
