#!/usr/bin/env python3
"""Quickstart: run a mixed workload through an unmanaged server.

Builds the paper's motivating scenario — OLTP transactions, BI queries
and a report batch consolidated onto one simulated database server —
runs it with no workload management, and prints per-workload
performance plus the taxonomy the library implements.

Run:  python examples/quickstart.py
"""

from repro import (
    Simulator,
    WorkloadManager,
    MachineSpec,
    mixed_scenario,
    render_figure1,
)


def main() -> None:
    sim = Simulator(seed=42)
    manager = WorkloadManager(
        sim,
        machine=MachineSpec(cpu_capacity=4.0, disk_capacity=2.0, memory_mb=2048.0),
    )

    scenario = mixed_scenario(horizon=120.0, oltp_rate=8.0, bi_rate=0.1)
    generator = scenario.build(sim, manager.submit, sessions=manager.sessions)
    manager.add_completion_listener(generator.notify_done)

    print("Running 120 simulated seconds of consolidated mixed workload...")
    manager.run(scenario.horizon, drain=120.0)

    print(f"\nSimulated time: {sim.now:.0f}s   queries generated: "
          f"{generator.generated_count}")
    print("\nPer-workload performance (no workload management):")
    for workload in sorted(manager.metrics.workloads()):
        print(" ", manager.metrics.summary_line(workload, sim.now))

    sample = manager.metrics.latest_sample()
    if sample:
        print(
            f"\nLast monitor sample: cpu={sample.cpu_utilization:.0%} "
            f"disk={sample.disk_utilization:.0%} "
            f"memory pressure={sample.memory_pressure:.2f}"
        )

    print("\nThe taxonomy this library implements (paper Figure 1):\n")
    print(render_figure1())
    print(
        "\nNext: examples/consolidation_protection.py shows what the "
        "taxonomy's techniques do to these numbers."
    )


if __name__ == "__main__":
    main()
