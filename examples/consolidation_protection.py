#!/usr/bin/env python3
"""The paper's §1 story, end to end: consolidation hurts OLTP, and a
workload-management stack fixes it.

Three configurations of the same overloaded server (12/s OLTP + heavy
BI) are compared:

1. **uncontrolled** — the consolidated server with no management;
2. **thresholds** — DB2/Teradata-style static controls: cost-threshold
   admission, per-workload concurrency throttles;
3. **full stack** — thresholds plus execution control: large-query
   throttling and priority aging.

Run:  python examples/consolidation_protection.py
"""

from repro import MachineSpec, Simulator, SLASet, WorkloadManager, response_time_sla
from repro.admission.base import PriorityExemptAdmission
from repro.admission.threshold import ThresholdAdmission
from repro.core.policy import (
    AdmissionPolicy,
    Threshold,
    ThresholdAction,
    ThresholdKind,
)
from repro.execution.reprioritization import PriorityAgingController
from repro.execution.throttling import QueryThrottlingController
from repro.reporting.figures import ascii_bar_chart
from repro.scheduling.queues import MultiQueueScheduler
from repro.workloads.generator import Scenario, bi_workload, oltp_workload

HORIZON = 90.0
MACHINE = MachineSpec(cpu_capacity=4.0, disk_capacity=2.0, memory_mb=2048.0)


def scenario() -> Scenario:
    return Scenario(
        specs=(
            oltp_workload(rate=12.0, priority=3),
            bi_workload(
                rate=0.25, priority=1, median_cpu=10.0, median_io=20.0,
                memory_low=300.0, memory_high=900.0,
            ),
        ),
        horizon=HORIZON,
    )


def run(name, admission=None, scheduler=None, controllers=()):
    sim = Simulator(seed=2024)
    manager = WorkloadManager(
        sim,
        machine=MACHINE,
        admission=admission,
        scheduler=scheduler,
        execution_controllers=list(controllers),
        slas=SLASet(
            [
                response_time_sla("oltp", average=0.2, p95=0.5, importance=3),
                response_time_sla("bi", average=600.0, importance=1),
            ]
        ),
        control_period=2.0,
    )
    generator = scenario().build(sim, manager.submit, sessions=manager.sessions)
    manager.add_completion_listener(generator.notify_done)
    manager.run(HORIZON, drain=60.0)
    oltp = manager.metrics.stats_for("oltp")
    bi = manager.metrics.stats_for("bi")
    attainment = manager.metrics.attainment(manager.slas, sim.now)
    print(f"\n--- {name} ---")
    print(" ", manager.metrics.summary_line("oltp", sim.now))
    print(" ", manager.metrics.summary_line("bi", sim.now))
    print(f"  OLTP SLA attainment: {attainment.get('oltp', 0.0):.0%}")
    return {
        "oltp_p95": oltp.percentile_response_time(95.0),
        "bi_done": bi.completions,
    }


def main() -> None:
    results = {}
    results["uncontrolled"] = run("uncontrolled")

    threshold_admission = PriorityExemptAdmission(
        ThresholdAdmission(AdmissionPolicy(reject_over_cost=200.0)),
        exempt_priority=3,
    )
    results["thresholds"] = run(
        "thresholds (cost gate + BI concurrency throttle)",
        admission=threshold_admission,
        scheduler=MultiQueueScheduler(per_workload_mpl={"bi": 2}),
    )

    results["full stack"] = run(
        "full stack (+ throttling + priority aging)",
        admission=threshold_admission,
        scheduler=MultiQueueScheduler(per_workload_mpl={"bi": 2}),
        controllers=[
            QueryThrottlingController(
                velocity_goal=0.8, large_query_work=20.0, controller="step"
            ),
            PriorityAgingController(
                thresholds=[
                    Threshold(
                        ThresholdKind.ELAPSED_TIME, 60.0, ThresholdAction.DEMOTE
                    )
                ]
            ),
        ],
    )

    print()
    print(
        ascii_bar_chart(
            {name: row["oltp_p95"] for name, row in results.items()},
            title="OLTP p95 response time by configuration",
            unit="s",
        )
    )
    speedup = results["uncontrolled"]["oltp_p95"] / results["full stack"]["oltp_p95"]
    print(f"\nOLTP p95 improvement from workload management: {speedup:.0f}x")


if __name__ == "__main__":
    main()
