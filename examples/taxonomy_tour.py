#!/usr/bin/env python3
"""Tour of the executable taxonomy: Figure 1, Tables 1-5, and
classification of your own technique descriptions.

The taxonomy is data, not prose: this script renders every paper
artifact from the registry + classification engine, then shows how to
describe a *new* technique (here: a hypothetical "pause heavy queries
when replication lag grows" feature) and where the classifier files it.

Run:  python examples/taxonomy_tour.py
"""

from repro import all_tables, render_figure1
from repro.core.classify import classify_component, classify_features
from repro.core.registry import ApproachDescriptor, Feature
from repro.execution.throttling import QueryThrottlingController


def main() -> None:
    print(render_figure1(annotate_descriptions=True))
    print()
    print(all_tables())

    print("\n--- classifying a new technique description ---")
    new_technique = ApproachDescriptor(
        name="Replication-lag throttle",
        citation="[hypothetical]",
        mechanism="Pauses heavy analytic queries while replica lag exceeds "
        "a threshold, resuming them when replication catches up.",
        features=frozenset(
            {
                Feature.ACTS_AT_RUNTIME,
                Feature.PAUSES_RUNNING_REQUEST,
                Feature.USES_THRESHOLDS,
                Feature.THRESHOLD_ON_MONITOR_METRICS,
            }
        ),
    )
    classes = classify_features(set(new_technique.features))
    print(f"{new_technique.name!r} classifies as:")
    for technique_class in classes:
        print(f"  - {technique_class.display_name}")

    print("\n--- classifying running library code ---")
    controller = QueryThrottlingController()
    classes = classify_component(controller)
    print(
        f"{type(controller).__name__} classifies as: "
        + ", ".join(c.display_name for c in classes)
    )


if __name__ == "__main__":
    main()
