"""Tests for utility and query throttling."""

import pytest

from repro.core.manager import WorkloadManager
from repro.core.sla import SLASet, response_time_sla
from repro.engine.query import QueryState, StatementType
from repro.engine.resources import MachineSpec
from repro.errors import ConfigurationError
from repro.execution.throttling import (
    QueryThrottlingController,
    ThrottleMethod,
    UtilityThrottlingController,
)

from tests.conftest import make_query


def _manager(sim, controllers, machine=None, control_period=1.0, slas=None):
    # Neutral weights: throttling is studied in isolation from the
    # priority-based fair sharing that would otherwise mask it.
    return WorkloadManager(
        sim,
        machine=machine
        or MachineSpec(cpu_capacity=1, disk_capacity=2, memory_mb=4096),
        execution_controllers=controllers,
        control_period=control_period,
        slas=slas,
        weight_fn=lambda q: 1.0,
    )


class TestUtilityThrottling:
    def test_utilities_throttled_when_production_degrades(self, sim):
        controller = UtilityThrottlingController(
            degradation_target=0.1, baseline_velocity=0.9
        )
        manager = _manager(
            sim,
            [controller],
            machine=MachineSpec(cpu_capacity=2, disk_capacity=1, memory_mb=4096),
        )
        utility = make_query(
            cpu=5.0, io=50.0, statement_type=StatementType.UTILITY, sql="utilities:backup"
        )
        manager.submit(utility)
        production = make_query(cpu=0.0, io=20.0, sql="prod:q", priority=3)
        manager.submit(production)
        manager.run(horizon=10.0, drain=0.0)
        assert controller.throttle_level > 0.0
        assert manager.engine.throttle_of(utility.query_id) < 1.0
        # production is never throttled
        assert manager.engine.throttle_of(production.query_id) == 1.0

    def test_no_throttle_when_production_healthy(self, sim):
        controller = UtilityThrottlingController(
            degradation_target=0.5, baseline_velocity=0.5
        )
        manager = _manager(
            sim,
            [controller],
            machine=MachineSpec(cpu_capacity=8, disk_capacity=8, memory_mb=4096),
        )
        manager.submit(make_query(cpu=10.0, io=0.0, sql="prod:q"))
        manager.submit(
            make_query(
                cpu=10.0,
                io=0.0,
                statement_type=StatementType.UTILITY,
                sql="utilities:backup",
            )
        )
        manager.run(horizon=5.0, drain=0.0)
        assert controller.throttle_level == pytest.approx(0.0, abs=0.05)

    def test_workload_name_marks_utility(self, sim):
        controller = UtilityThrottlingController(utility_workloads=("maint",))
        query = make_query(sql="maint:reorg")
        query.workload_name = "maint"
        assert controller._is_utility(query)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UtilityThrottlingController(baseline_velocity=0.0)

    def test_throttle_level_history_recorded(self, sim):
        controller = UtilityThrottlingController()
        manager = _manager(sim, [controller])
        manager.submit(make_query(cpu=10.0, io=0.0, sql="prod:q"))
        manager.run(horizon=3.0, drain=0.0)
        assert len(controller.level_history) == 3


class TestQueryThrottlingStep:
    def test_large_low_priority_query_throttled(self, sim):
        controller = QueryThrottlingController(
            velocity_goal=0.7,
            protected_priority=3,
            max_victim_priority=1,
            large_query_work=5.0,
            controller="step",
        )
        manager = _manager(sim, [controller])
        big = make_query(cpu=100.0, io=0.0, priority=1)
        manager.submit(big)
        vip = make_query(cpu=30.0, io=0.0, priority=3)
        manager.submit(vip)  # equal weights: vip at half speed -> 0.5 < 0.7
        manager.run(horizon=15.0, drain=0.0)
        assert controller.throttle_level > 0.0
        assert manager.engine.throttle_of(big.query_id) < 1.0
        assert manager.engine.throttle_of(vip.query_id) == 1.0

    def test_throttling_restores_protected_velocity(self, sim):
        controller = QueryThrottlingController(
            velocity_goal=0.7, controller="step", large_query_work=5.0
        )
        manager = _manager(sim, [controller], control_period=0.5)
        big = make_query(cpu=200.0, io=0.0, priority=1)
        manager.submit(big)
        vip = make_query(cpu=20.0, io=0.0, priority=3)
        manager.submit(vip)
        manager.run(horizon=60.0, drain=0.0)
        assert vip.state is QueryState.COMPLETED
        # with the big query throttled hard, vip runs near full speed
        # after the controller converges; velocity comfortably above the
        # no-control value of ~0.5 (equal weights)
        assert vip.execution_velocity(sim.now) > 0.55

    def test_small_queries_not_victims(self, sim):
        controller = QueryThrottlingController(
            large_query_work=50.0, controller="step"
        )
        manager = _manager(sim, [controller])
        small = make_query(cpu=5.0, io=0.0, priority=1)
        vip = make_query(cpu=100.0, io=0.0, priority=3)
        manager.submit(small)
        manager.submit(vip)
        manager.run(horizon=5.0, drain=0.0)
        assert manager.engine.throttle_of(small.query_id) == 1.0

    def test_invalid_controller_kind(self):
        with pytest.raises(ConfigurationError):
            QueryThrottlingController(controller="pid")


class TestQueryThrottlingBlackBox:
    def test_blackbox_converges_toward_goal(self, sim):
        controller = QueryThrottlingController(
            velocity_goal=0.7, controller="blackbox", large_query_work=5.0
        )
        manager = _manager(sim, [controller], control_period=1.0)
        big = make_query(cpu=300.0, io=0.0, priority=1)
        vip = make_query(cpu=100.0, io=0.0, priority=3)
        manager.submit(big)
        manager.submit(vip)
        manager.run(horizon=40.0, drain=0.0)
        assert controller.throttle_level > 0.0
        assert len(controller.level_history) >= 30


class TestInterruptThrottle:
    def test_interrupt_pauses_then_resumes(self, sim):
        controller = QueryThrottlingController(
            velocity_goal=0.9,
            controller="step",
            method=ThrottleMethod.INTERRUPT,
            large_query_work=5.0,
        )
        manager = _manager(sim, [controller], control_period=1.0)
        big = make_query(cpu=100.0, io=0.0, priority=1)
        vip = make_query(cpu=20.0, io=0.0, priority=3)
        manager.submit(big)
        manager.submit(vip)
        sim.run_until(1.0)  # first control tick -> pause scheduled
        assert manager.engine.throttle_of(big.query_id) == 0.0
        manager.run(horizon=10.0, drain=0.0)
        # the pause ended: big is either resumed or re-paused by a later
        # tick, but it made progress in between
        assert manager.engine.progress_of(big.query_id) > 0.0
