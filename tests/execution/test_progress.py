"""Unit tests for query progress indicators."""

import pytest

from repro.core.manager import WorkloadManager
from repro.engine.resources import MachineSpec
from repro.execution.progress import (
    OperatorBoundaryProgressIndicator,
    OptimizerCostProgressIndicator,
    SpeedAwareProgressIndicator,
)

from tests.conftest import make_query, staged_plan


def _manager(sim):
    return WorkloadManager(
        sim, machine=MachineSpec(cpu_capacity=4, disk_capacity=4, memory_mb=4096)
    )


class TestSpeedAware:
    def test_work_done_matches_fluid_progress(self, sim):
        manager = _manager(sim)
        query = make_query(cpu=10.0, io=0.0)
        manager.submit(query)
        sim.run_until(4.0)
        indicator = SpeedAwareProgressIndicator()
        assert indicator.work_done(query, manager.context) == pytest.approx(0.4)

    def test_remaining_seconds_from_current_speed(self, sim):
        manager = _manager(sim)
        query = make_query(cpu=10.0, io=0.0)
        manager.submit(query)
        sim.run_until(4.0)
        indicator = SpeedAwareProgressIndicator()
        assert indicator.remaining_seconds(query, manager.context) == pytest.approx(
            6.0
        )

    def test_paused_query_infinite_remaining(self, sim):
        manager = _manager(sim)
        query = make_query(cpu=10.0, io=0.0)
        manager.submit(query)
        sim.run_until(1.0)
        manager.engine.pause(query.query_id)
        indicator = SpeedAwareProgressIndicator()
        assert indicator.remaining_seconds(query, manager.context) == float("inf")

    def test_not_running_returns_none(self, sim):
        manager = _manager(sim)
        indicator = SpeedAwareProgressIndicator()
        assert indicator.remaining_seconds(make_query(), manager.context) is None


class TestOperatorBoundary:
    def test_progress_floored_to_boundary(self, sim):
        manager = _manager(sim)
        query = make_query(cpu=10.0, io=0.0, plan=staged_plan())
        manager.submit(query)
        sim.run_until(4.0)  # fluid progress 0.4 -> inside op 1 (0.3..0.5)
        indicator = OperatorBoundaryProgressIndicator()
        assert indicator.work_done(query, manager.context) == pytest.approx(0.3)

    def test_remaining_extrapolates_observed_rate(self, sim):
        manager = _manager(sim)
        query = make_query(cpu=10.0, io=0.0, plan=staged_plan())
        manager.submit(query)
        sim.run_until(5.0)  # boundary 0.5 reached at exactly t=5
        indicator = OperatorBoundaryProgressIndicator()
        remaining = indicator.remaining_seconds(query, manager.context)
        assert remaining == pytest.approx(5.0, rel=0.05)

    def test_before_first_boundary_falls_back_to_estimate(self, sim):
        manager = _manager(sim)
        query = make_query(cpu=10.0, io=0.0, plan=staged_plan())
        manager.submit(query)
        sim.run_until(1.0)  # inside op 0
        indicator = OperatorBoundaryProgressIndicator()
        assert indicator.remaining_seconds(query, manager.context) == pytest.approx(
            10.0
        )


class TestOptimizerCost:
    def test_work_done_tracks_estimate(self, sim):
        manager = _manager(sim)
        query = make_query(cpu=10.0, io=0.0)
        manager.submit(query)
        sim.run_until(5.0)
        indicator = OptimizerCostProgressIndicator()
        assert indicator.work_done(query, manager.context) == pytest.approx(0.5)

    def test_underestimated_query_reads_as_done(self, sim):
        """The classic failure: estimate 1s, reality 100s."""
        manager = _manager(sim)
        query = make_query(cpu=100.0, io=0.0, est_cpu=1.0)
        manager.submit(query)
        sim.run_until(2.0)
        indicator = OptimizerCostProgressIndicator()
        assert indicator.work_done(query, manager.context) == 1.0
        assert indicator.remaining_seconds(query, manager.context) == 0.0
        # whereas the speed-aware indicator knows better
        true_indicator = SpeedAwareProgressIndicator()
        assert true_indicator.work_done(query, manager.context) == pytest.approx(
            0.02
        )

    def test_zero_estimate_counts_as_done(self, sim):
        manager = _manager(sim)
        query = make_query(cpu=1.0, io=0.0, est_cpu=0.0, est_io=0.0)
        indicator = OptimizerCostProgressIndicator()
        assert indicator.work_done(query, manager.context) == 1.0
