"""Tests for query kill rules and the fuzzy execution controller."""

import pytest

from repro.core.manager import WorkloadManager
from repro.core.policy import Threshold, ThresholdAction, ThresholdKind
from repro.engine.query import QueryState
from repro.engine.resources import MachineSpec
from repro.errors import ConfigurationError
from repro.execution.cancellation import (
    KillRule,
    QueryKillController,
    elapsed_time_kill,
)
from repro.execution.krompass import FuzzyExecutionController, _ramp

from tests.conftest import make_query


def _manager(sim, controllers, control_period=1.0):
    return WorkloadManager(
        sim,
        machine=MachineSpec(cpu_capacity=4, disk_capacity=4, memory_mb=4096),
        execution_controllers=controllers,
        control_period=control_period,
    )


class TestKillRules:
    def test_long_runner_killed(self, sim):
        controller = QueryKillController([elapsed_time_kill(limit=5.0)])
        manager = _manager(sim, [controller])
        hog = make_query(cpu=100.0, io=0.0)
        manager.submit(hog)
        manager.run(horizon=7.0, drain=0.0)
        assert hog.state is QueryState.KILLED
        assert controller.kill_events
        assert manager.metrics.stats_for(None).kills == 1

    def test_short_queries_spared(self, sim):
        controller = QueryKillController([elapsed_time_kill(limit=5.0)])
        manager = _manager(sim, [controller])
        ok = make_query(cpu=2.0, io=0.0)
        manager.submit(ok)
        manager.run(horizon=7.0, drain=0.0)
        assert ok.state is QueryState.COMPLETED

    def test_kill_and_resubmit_requeues_clone(self, sim):
        controller = QueryKillController(
            [elapsed_time_kill(limit=2.0, resubmit=True, resubmit_delay=1.0)]
        )
        manager = _manager(sim, [controller])
        hog = make_query(cpu=4.0, io=0.0)
        manager.submit(hog)
        manager.run(horizon=12.0, drain=0.0)
        assert hog.state is QueryState.KILLED
        # the clone was resubmitted... and killed again (same rule), so
        # at least one extra submission happened
        assert manager.submitted_count >= 2
        assert controller.kill_events[0][2] is True

    def test_priority_guard(self, sim):
        controller = QueryKillController(
            [elapsed_time_kill(limit=2.0, max_priority=1)]
        )
        manager = _manager(sim, [controller])
        vip = make_query(cpu=10.0, io=0.0, priority=3)
        peasant = make_query(cpu=10.0, io=0.0, priority=1)
        manager.submit(vip)
        manager.submit(peasant)
        manager.run(horizon=5.0, drain=30.0)
        assert peasant.state is QueryState.KILLED
        assert vip.state is QueryState.COMPLETED

    def test_progress_guard_spares_nearly_done(self, sim):
        controller = QueryKillController(
            [elapsed_time_kill(limit=5.0, spare_over_progress=0.8)]
        )
        manager = _manager(sim, [controller])
        # 6s query: at the 5s threshold it is 83% done -> spared (§5.2)
        nearly = make_query(cpu=6.0, io=0.0)
        manager.submit(nearly)
        manager.run(horizon=8.0, drain=0.0)
        assert nearly.state is QueryState.COMPLETED

    def test_cpu_time_threshold(self, sim):
        rule = KillRule(
            threshold=Threshold(
                ThresholdKind.CPU_TIME, 2.0, ThresholdAction.STOP_EXECUTION
            )
        )
        controller = QueryKillController([rule])
        manager = _manager(sim, [controller])
        burner = make_query(cpu=10.0, io=0.0)
        manager.submit(burner)
        manager.run(horizon=5.0, drain=0.0)
        assert burner.state is QueryState.KILLED

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            QueryKillController([])
        with pytest.raises(ConfigurationError):
            KillRule(
                threshold=Threshold(
                    ThresholdKind.ELAPSED_TIME, 1.0, ThresholdAction.DEMOTE
                )
            )


class TestFuzzyRamp:
    def test_ramp_shape(self):
        assert _ramp(0.0, 1.0, 2.0) == 0.0
        assert _ramp(1.5, 1.0, 2.0) == pytest.approx(0.5)
        assert _ramp(3.0, 1.0, 2.0) == 1.0

    def test_degenerate_ramp(self):
        assert _ramp(5.0, 2.0, 2.0) == 1.0
        assert _ramp(1.0, 2.0, 2.0) == 0.0


class TestFuzzyController:
    def _controller(self):
        return FuzzyExecutionController(
            long_running_onset=2.0, long_running_full=10.0, max_priority=2
        )

    def test_assessment_components(self, sim):
        controller = self._controller()
        manager = _manager(sim, [controller])
        hog = make_query(cpu=200.0, io=0.0, priority=1)
        manager.submit(hog)
        sim.run_until(6.0)
        assessment = controller.assess(hog, manager.context)
        assert 0.0 < assessment.long_running < 1.0
        assert assessment.low_priority == 1.0
        assert assessment.little_progress > 0.9
        assert assessment.score > 0.0

    def test_high_priority_never_touched(self, sim):
        controller = self._controller()
        manager = _manager(sim, [controller])
        vip = make_query(cpu=500.0, io=0.0, priority=3)
        manager.submit(vip)
        manager.run(horizon=30.0, drain=0.0)
        assert vip.state is QueryState.RUNNING
        assert controller.actions == []

    def test_problem_query_eventually_killed(self, sim):
        controller = self._controller()
        manager = _manager(sim, [controller])
        hog = make_query(cpu=2000.0, io=0.0, priority=1)
        manager.submit(hog)
        manager.run(horizon=60.0, drain=0.0)
        kinds = {action for _, _, action in controller.actions}
        assert hog.state is QueryState.KILLED
        assert "kill" in kinds or "kill_and_resubmit" in kinds

    def test_moderate_problem_reprioritized_first(self, sim):
        controller = FuzzyExecutionController(
            long_running_onset=1.0,
            long_running_full=100.0,
            reprioritize_band=(0.05, 0.6),
            resubmit_band=(0.9, 0.95),
            max_priority=2,
        )
        manager = _manager(sim, [controller])
        hog = make_query(cpu=100.0, io=0.0, priority=1)
        manager.submit(hog)
        manager.run(horizon=20.0, drain=0.0)
        kinds = [action for _, _, action in controller.actions]
        assert "reprioritize" in kinds
        assert manager.engine.weight_of(hog.query_id) < 1.0

    def test_reprioritization_bounded(self, sim):
        controller = FuzzyExecutionController(
            long_running_onset=0.5,
            long_running_full=50.0,
            reprioritize_band=(0.01, 0.6),
            resubmit_band=(0.95, 0.99),
        )
        manager = _manager(sim, [controller], control_period=0.5)
        hog = make_query(cpu=1000.0, io=0.0, priority=1)
        manager.submit(hog)
        manager.run(horizon=30.0, drain=0.0)
        halvings = sum(
            1 for _, qid, a in controller.actions if a == "reprioritize"
        )
        assert halvings <= 3
        assert manager.engine.weight_of(hog.query_id) >= 0.05
