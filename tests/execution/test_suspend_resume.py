"""Tests for suspend/resume planning and the controller."""

import pytest

from repro.core.manager import FCFSDispatcher, WorkloadManager
from repro.engine.query import PlanOperator, QueryPlan, QueryState
from repro.engine.resources import MachineSpec
from repro.execution.suspend_resume import (
    SuspendResumeController,
    SuspendStrategy,
    plan_suspension,
)

from tests.conftest import make_query, staged_plan


class TestPlanning:
    def _query(self):
        return make_query(cpu=100.0, io=0.0, plan=staged_plan(state_mb=200.0))

    def test_dump_state_keeps_progress(self):
        query = self._query()
        plan = plan_suspension(query, 0.6, SuspendStrategy.DUMP_STATE)
        assert plan.resume_progress == pytest.approx(0.6)
        assert plan.suspend_cost > 0
        # dump and read are symmetric; no re-execution
        assert plan.resume_cost == pytest.approx(plan.suspend_cost)

    def test_go_back_cheap_suspend_expensive_resume(self):
        query = self._query()
        plan = plan_suspension(query, 0.6, SuspendStrategy.GO_BACK)
        assert plan.suspend_cost == 0.0
        # falls back to the earliest stateful operator's start (0.3)
        assert plan.resume_progress == pytest.approx(0.3)
        assert plan.resume_cost == pytest.approx(0.3 * 100.0)

    def test_paper_tradeoff_goback_vs_dumpstate(self):
        """GoBack: lower suspend cost, higher resume cost than DumpState."""
        query = self._query()
        go_back = plan_suspension(query, 0.6, SuspendStrategy.GO_BACK)
        dump = plan_suspension(query, 0.6, SuspendStrategy.DUMP_STATE)
        assert go_back.suspend_cost < dump.suspend_cost
        assert go_back.resume_cost > dump.resume_cost

    def test_optimal_never_worse_than_either(self):
        query = self._query()
        optimal = plan_suspension(query, 0.6, SuspendStrategy.OPTIMAL)
        go_back = plan_suspension(query, 0.6, SuspendStrategy.GO_BACK)
        dump = plan_suspension(query, 0.6, SuspendStrategy.DUMP_STATE)
        assert optimal.total_overhead <= go_back.total_overhead + 1e-9
        assert optimal.total_overhead <= dump.total_overhead + 1e-9

    def test_optimal_respects_suspend_budget(self):
        query = self._query()
        budget = 1.0
        plan = plan_suspension(
            query, 0.6, SuspendStrategy.OPTIMAL, suspend_cost_budget=budget
        )
        assert plan.suspend_cost <= budget + 1e-9

    def test_unsatisfiable_budget_falls_back_to_goback(self):
        query = make_query(
            cpu=10.0,
            io=0.0,
            plan=QueryPlan(
                operators=(
                    PlanOperator("hash", 0.5, state_mb=1e6, blocking=True),
                    PlanOperator("probe", 0.5, state_mb=0.0),
                )
            ),
        )
        plan = plan_suspension(
            query, 0.6, SuspendStrategy.OPTIMAL, suspend_cost_budget=0.0
        )
        assert plan.suspend_cost == 0.0

    def test_early_progress_little_state(self):
        query = self._query()
        plan = plan_suspension(query, 0.1, SuspendStrategy.DUMP_STATE)
        # only operator 0 active; it has no state
        assert plan.suspend_cost == 0.0
        assert plan.resume_progress == pytest.approx(0.1)

    def test_invalid_progress(self):
        with pytest.raises(ValueError):
            plan_suspension(self._query(), 1.5)


class TestController:
    def _build(self, sim, strategy=SuspendStrategy.DUMP_STATE):
        controller = SuspendResumeController(
            protected_priority=3,
            max_victim_priority=1,
            strategy=strategy,
            min_victim_work=1.0,
            resume_when_idle_below=2,
        )
        manager = WorkloadManager(
            sim,
            machine=MachineSpec(cpu_capacity=1, disk_capacity=4, memory_mb=4096),
            scheduler=FCFSDispatcher(),
            execution_controllers=[controller],
            control_period=0.5,
        )
        return controller, manager

    def test_victim_suspended_under_pressure(self, sim):
        controller, manager = self._build(sim)
        victim = make_query(cpu=50.0, io=0.0, priority=1, plan=staged_plan())
        manager.submit(victim)
        sim.run_until(18.0)  # victim at ~36% progress
        vip = make_query(cpu=5.0, io=0.0, priority=3)
        manager.submit(vip)  # running slowly -> pressure
        manager.run(horizon=22.0, drain=0.0)
        assert victim.state in (QueryState.SUSPENDED, QueryState.RUNNING)
        # within a few ticks the suspension must have happened
        assert controller.suspend_events
        assert victim.suspend_count >= 1

    def test_suspension_speeds_up_protected_work(self, sim):
        controller, manager = self._build(sim)
        victim = make_query(cpu=500.0, io=0.0, priority=1, plan=staged_plan())
        manager.submit(victim)
        sim.run_until(10.0)
        vip = make_query(cpu=5.0, io=0.0, priority=3)
        manager.submit(vip)
        manager.run(horizon=30.0, drain=0.0)
        assert vip.state is QueryState.COMPLETED
        # vip held the whole machine once the victim was evicted: its
        # response time is near nominal despite the huge victim
        assert vip.response_time < 9.0

    def test_victim_resumed_when_quiet(self, sim):
        controller, manager = self._build(sim)
        victim = make_query(cpu=20.0, io=0.0, priority=1, plan=staged_plan())
        manager.submit(victim)
        sim.run_until(5.0)
        vip = make_query(cpu=2.0, io=0.0, priority=3)
        manager.submit(vip)
        manager.run(horizon=60.0, drain=60.0)
        # vip done, victim resumed and eventually completed
        assert vip.state is QueryState.COMPLETED
        assert victim.state is QueryState.COMPLETED
        assert controller.resume_events

    def test_nearly_done_victims_spared(self, sim):
        controller, manager = self._build(sim)
        victim = make_query(cpu=10.0, io=0.0, priority=1, plan=staged_plan())
        manager.submit(victim)
        sim.run_until(9.5)  # 95% done; remaining work 0.5 < min_victim_work
        vip = make_query(cpu=5.0, io=0.0, priority=3)
        manager.submit(vip)
        manager.run(horizon=12.0, drain=30.0)
        assert victim.state is QueryState.COMPLETED
        assert not controller.suspend_events
