"""Tests for priority aging and economic resource allocation."""

import pytest

from repro.core.manager import WorkloadManager
from repro.core.policy import Threshold, ThresholdAction, ThresholdKind
from repro.engine.resources import MachineSpec
from repro.errors import ConfigurationError
from repro.execution.economic import EconomicResourceAllocator
from repro.execution.reprioritization import (
    PriorityAgingController,
    ServiceClassLadder,
)

from tests.conftest import make_query


def _manager(sim, controllers, control_period=1.0, machine=None):
    return WorkloadManager(
        sim,
        machine=machine
        or MachineSpec(cpu_capacity=2, disk_capacity=2, memory_mb=4096),
        execution_controllers=controllers,
        control_period=control_period,
    )


class TestLadder:
    def test_default_ladder(self):
        ladder = ServiceClassLadder()
        assert ladder.top == "high"
        assert ladder.below("high") == "medium"
        assert ladder.below("low") is None
        assert ladder.weight_of("medium") == 2.0

    def test_weights_must_decrease(self):
        with pytest.raises(ConfigurationError):
            ServiceClassLadder(levels=(("a", 1.0), ("b", 2.0)))

    def test_needs_two_levels(self):
        with pytest.raises(ConfigurationError):
            ServiceClassLadder(levels=(("only", 1.0),))

    def test_unknown_level(self):
        with pytest.raises(KeyError):
            ServiceClassLadder().weight_of("nope")


class TestPriorityAging:
    def _controller(self, limit=2.0):
        return PriorityAgingController(
            thresholds=[
                Threshold(ThresholdKind.ELAPSED_TIME, limit, ThresholdAction.DEMOTE)
            ],
            demote_cooldown=1.5,
        )

    def test_long_runner_demoted_step_by_step(self, sim):
        controller = self._controller(limit=2.0)
        manager = _manager(sim, [controller])
        hog = make_query(cpu=60.0, io=0.0)
        manager.submit(hog)
        manager.run(horizon=3.0, drain=0.0)
        assert hog.service_class == "medium"
        assert hog.demotions == 1
        assert manager.engine.weight_of(hog.query_id) == 2.0
        manager2_events = len(controller.demotion_events)
        assert manager2_events == 1

    def test_cooldown_limits_demotion_rate(self, sim):
        controller = self._controller(limit=0.5)
        manager = _manager(sim, [controller], control_period=0.5)
        hog = make_query(cpu=60.0, io=0.0)
        manager.submit(hog)
        manager.run(horizon=2.1, drain=0.0)
        # violations every 0.5s but cooldown 1.5s -> at most 2 demotions
        assert hog.demotions <= 2

    def test_stops_at_ladder_bottom(self, sim):
        controller = self._controller(limit=0.1)
        manager = _manager(sim, [controller], control_period=1.0)
        hog = make_query(cpu=600.0, io=0.0)
        manager.submit(hog)
        manager.run(horizon=20.0, drain=0.0)
        assert hog.service_class == "low"
        assert hog.demotions == 2

    def test_short_queries_untouched(self, sim):
        controller = self._controller(limit=5.0)
        manager = _manager(sim, [controller])
        short = make_query(cpu=0.5, io=0.0)
        manager.submit(short)
        manager.run(horizon=3.0, drain=0.0)
        assert short.demotions == 0

    def test_rows_returned_threshold(self, sim):
        controller = PriorityAgingController(
            thresholds=[
                Threshold(
                    ThresholdKind.ROWS_RETURNED, 100.0, ThresholdAction.DEMOTE
                )
            ]
        )
        manager = _manager(sim, [controller])
        # 10000 rows: crosses 100 returned rows at 1% progress
        chatty = make_query(cpu=30.0, io=0.0, rows=10_000)
        manager.submit(chatty)
        manager.run(horizon=2.0, drain=0.0)
        assert chatty.demotions >= 1

    def test_non_demote_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            PriorityAgingController(
                thresholds=[
                    Threshold(
                        ThresholdKind.ELAPSED_TIME,
                        1.0,
                        ThresholdAction.STOP_EXECUTION,
                    )
                ]
            )

    def test_demotion_frees_resources_for_others(self, sim):
        controller = self._controller(limit=1.0)
        manager = _manager(
            sim,
            [controller],
            machine=MachineSpec(cpu_capacity=1, disk_capacity=4, memory_mb=4096),
        )
        hog = make_query(cpu=30.0, io=0.0)
        manager.submit(hog)
        sim.run_until(2.5)  # hog demoted to medium (weight 2)
        newcomer = make_query(cpu=4.0, io=0.0, priority=4)
        manager.submit(newcomer)
        # weight 4 vs 2: newcomer gets 2/3 of the core
        assert manager.engine.speed_of(newcomer.query_id) == pytest.approx(
            (4 / 6) / 4.0
        )


class TestEconomicAllocation:
    def test_shares_track_importance(self, sim):
        allocator = EconomicResourceAllocator(importance={"gold": 3, "lead": 1})
        manager = _manager(
            sim,
            [allocator],
            machine=MachineSpec(cpu_capacity=1, disk_capacity=4, memory_mb=4096),
        )
        gold = make_query(cpu=50.0, io=0.0, sql="gold:q")
        lead = make_query(cpu=50.0, io=0.0, sql="lead:q")
        manager.submit(gold)
        manager.submit(lead)
        manager.run(horizon=2.0, drain=0.0)
        gold_weight = manager.engine.weight_of(gold.query_id)
        lead_weight = manager.engine.weight_of(lead.query_id)
        assert gold_weight / lead_weight == pytest.approx(3.0)
        assert manager.engine.speed_of(gold.query_id) == pytest.approx(
            3.0 * manager.engine.speed_of(lead.query_id)
        )

    def test_wealth_splits_across_workload_queries(self, sim):
        allocator = EconomicResourceAllocator(importance={"gold": 2, "lead": 2})
        manager = _manager(sim, [allocator])
        queries = [make_query(cpu=50.0, io=0.0, sql="gold:q") for _ in range(2)]
        queries.append(make_query(cpu=50.0, io=0.0, sql="lead:q"))
        for query in queries:
            manager.submit(query)
        manager.run(horizon=2.0, drain=0.0)
        # gold's wealth is split over 2 queries -> each gets half of lead's
        gold_each = manager.engine.weight_of(queries[0].query_id)
        lead_each = manager.engine.weight_of(queries[2].query_id)
        assert lead_each / gold_each == pytest.approx(2.0)

    def test_policy_change_reallocates_at_next_tick(self, sim):
        allocator = EconomicResourceAllocator(importance={"a": 1, "b": 1})
        manager = _manager(sim, [allocator])
        a = make_query(cpu=50.0, io=0.0, sql="a:q")
        b = make_query(cpu=50.0, io=0.0, sql="b:q")
        manager.submit(a)
        manager.submit(b)
        sim.run_until(1.0)
        assert manager.engine.weight_of(a.query_id) == pytest.approx(
            manager.engine.weight_of(b.query_id)
        )
        allocator.set_importance("a", 4)
        sim.run_until(2.0)
        assert manager.engine.weight_of(a.query_id) == pytest.approx(
            4.0 * manager.engine.weight_of(b.query_id)
        )

    def test_importance_falls_back_to_sla(self, sim):
        from repro.core.sla import SLASet, response_time_sla

        allocator = EconomicResourceAllocator()
        manager = WorkloadManager(
            sim,
            machine=MachineSpec(cpu_capacity=2, disk_capacity=2, memory_mb=4096),
            execution_controllers=[allocator],
            slas=SLASet([response_time_sla("vip", average=1.0, importance=5)]),
        )
        vip = make_query(cpu=50.0, io=0.0, sql="vip:q")
        pleb = make_query(cpu=50.0, io=0.0, sql="pleb:q")
        manager.submit(vip)
        manager.submit(pleb)
        manager.run(horizon=1.0, drain=0.0)
        assert manager.engine.weight_of(vip.query_id) == pytest.approx(
            5.0 * manager.engine.weight_of(pleb.query_id)
        )

    def test_history_recorded(self, sim):
        allocator = EconomicResourceAllocator(importance={"a": 1})
        manager = _manager(sim, [allocator])
        manager.submit(make_query(cpu=10.0, io=0.0, sql="a:q"))
        manager.run(horizon=2.0, drain=0.0)
        assert allocator.allocation_history
        assert allocator.workload_share("a") is not None

    def test_invalid_importance(self):
        allocator = EconomicResourceAllocator()
        with pytest.raises(ValueError):
            allocator.set_importance("x", 0)

    def test_idle_system_noop(self, sim):
        allocator = EconomicResourceAllocator()
        manager = _manager(sim, [allocator])
        manager.run(horizon=2.0, drain=0.0)
        assert allocator.allocation_history == []
