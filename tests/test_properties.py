"""Cross-cutting property-based tests (hypothesis).

These drive whole-pipeline invariants that unit tests can't state
locally:

* conservation — every submitted query is accounted for exactly once
  (completed, rejected, killed, or still in flight);
* no resource leaks — after all work drains, buffer pool and lock table
  are empty;
* timing sanity — end >= start >= submit for every completion, and
  velocity ∈ [0, 1];
* fair-share sanity — total engine resource usage never exceeds
  capacity under arbitrary weight/throttle churn;
* determinism — identical seeds produce identical outcome streams.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.manager import FCFSDispatcher, WorkloadManager
from repro.engine.executor import EngineConfig
from repro.engine.query import QueryState
from repro.engine.resources import MachineSpec, ResourceKind
from repro.engine.simulator import Simulator

from tests.conftest import make_query

# query description: (cpu, io, mem, locks, priority, arrival offset)
query_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=5.0),
    st.floats(min_value=0.0, max_value=5.0),
    st.floats(min_value=0.0, max_value=600.0),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=1, max_value=4),
    st.floats(min_value=0.0, max_value=20.0),
)


def _run_pipeline(rows, mpl=None, hot_set=50, seed=1):
    sim = Simulator(seed=seed)
    manager = WorkloadManager(
        sim,
        machine=MachineSpec(cpu_capacity=2.0, disk_capacity=2.0, memory_mb=512.0),
        engine_config=EngineConfig(hot_set_size=hot_set),
        scheduler=FCFSDispatcher(max_concurrency=mpl),
        control_period=1.0,
    )
    queries = []
    for cpu, io, mem, locks, priority, offset in rows:
        query = make_query(
            cpu=cpu, io=io, mem=mem, locks=locks, priority=priority, sql="wl:q"
        )
        queries.append(query)
        sim.schedule_at(offset, lambda q=query: manager.submit(q))
    manager.run(horizon=25.0, drain=400.0)
    return manager, queries, sim


class TestConservation:
    @given(st.lists(query_strategy, min_size=1, max_size=25))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_every_query_accounted_for_exactly_once(self, rows):
        manager, queries, sim = _run_pipeline(rows)
        terminal = 0
        for query in queries:
            # every query is terminal, or demonstrably still in flight
            # (adversarial instances — tiny memory pool, abort storms —
            # can legitimately outlast any fixed window)
            if query.state in (
                QueryState.COMPLETED,
                QueryState.REJECTED,
                QueryState.KILLED,
            ):
                terminal += 1
            else:
                in_engine = manager.engine.is_running(query.query_id)
                in_queue = query in manager.scheduler.queued_queries()
                pending_resubmit = query.state is QueryState.ABORTED
                assert in_engine or in_queue or pending_resubmit, query
                if in_engine:
                    # in flight means still advancing: positive speed or
                    # a pending wake-up (lock wait / reaper event)
                    entry = manager.engine._running[query.query_id]
                    assert (
                        entry.speed > 0
                        or entry.blocked
                        or sim.pending_events() > 0
                    ), query
        stats = manager.metrics.stats_for("wl")
        assert stats.completions == sum(
            1 for q in queries if q.state is QueryState.COMPLETED
        )
        # exactly one log record per terminal disposition
        assert len(manager.query_log) == terminal

    @given(st.lists(query_strategy, min_size=1, max_size=25))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_no_resource_leaks_after_drain(self, rows):
        manager, _, _ = _run_pipeline(rows)
        # resources reconcile exactly with in-flight work: committed
        # memory belongs to running queries and every held lock belongs
        # to a registered running transaction (nothing orphaned)
        running = manager.engine.running_queries()
        expected_memory = sum(q.true_cost.memory_mb for q in running)
        assert manager.engine.buffer_pool.committed_mb == pytest.approx(
            expected_memory
        )
        running_ids = {q.query_id for q in running}
        lock_manager = manager.engine.lock_manager
        for item, holder in lock_manager._holders.items():
            assert holder in running_ids, f"orphaned lock {item} -> {holder}"
        if not running:
            assert lock_manager.locks_held() == 0

    @given(st.lists(query_strategy, min_size=1, max_size=20))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_timing_monotonicity_and_velocity_bounds(self, rows):
        manager, queries, sim = _run_pipeline(rows)
        for query in queries:
            if query.state is not QueryState.COMPLETED:
                continue
            assert query.submit_time is not None
            assert query.start_time is not None
            assert query.end_time is not None
            assert query.submit_time <= query.start_time + 1e-9
            assert query.start_time <= query.end_time + 1e-9
            # completion can never beat the unloaded duration (modulo
            # the engine's 1ns instant-completion epsilon and restarts)
            served = query.end_time - query.start_time
            floor = query.true_cost.nominal_duration * (1 - 1e-6) - 1e-9
            assert served >= floor or query.restarts > 0
            velocity = query.execution_velocity(sim.now)
            assert 0.0 <= velocity <= 1.0


class TestMplInvariant:
    @given(
        st.lists(query_strategy, min_size=3, max_size=20),
        st.integers(min_value=1, max_value=4),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_running_count_never_exceeds_mpl(self, rows, mpl):
        sim = Simulator(seed=2)
        manager = WorkloadManager(
            sim,
            machine=MachineSpec(cpu_capacity=2.0, disk_capacity=2.0, memory_mb=512.0),
            scheduler=FCFSDispatcher(max_concurrency=mpl),
        )
        peak = [0]
        original_start = manager.engine.start

        def tracking_start(query, weight=1.0):
            original_start(query, weight)
            peak[0] = max(peak[0], manager.engine.running_count)

        manager.engine.start = tracking_start
        for cpu, io, mem, locks, priority, offset in rows:
            query = make_query(cpu=cpu, io=io, mem=mem, priority=priority)
            sim.schedule_at(offset, lambda q=query: manager.submit(q))
        manager.run(horizon=25.0, drain=200.0)
        assert peak[0] <= mpl


class TestEngineCapacity:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=10.0),   # cpu
                st.floats(min_value=0.0, max_value=10.0),   # io
                st.floats(min_value=0.1, max_value=8.0),    # weight
                st.floats(min_value=0.0, max_value=1.0),    # throttle
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_instantaneous_usage_within_capacity(self, rows):
        from repro.engine.executor import ExecutionEngine

        sim = Simulator(seed=3)
        engine = ExecutionEngine(
            sim, MachineSpec(cpu_capacity=3.0, disk_capacity=2.0, memory_mb=1e6)
        )
        for cpu, io, weight, throttle in rows:
            query = make_query(cpu=cpu, io=io, mem=1.0)
            query.transition(QueryState.SUBMITTED)
            query.submit_time = sim.now
            engine.start(query, weight=weight)
            engine.set_throttle(query.query_id, throttle)
        for kind, capacity in (
            (ResourceKind.CPU, 3.0),
            (ResourceKind.DISK, 2.0),
        ):
            assert engine.resources[kind].instantaneous_usage <= capacity + 1e-6


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_outcome(self, seed):
        def run():
            rows = [
                (0.5, 0.5, 50.0, 2, 2, 1.0),
                (2.0, 0.1, 100.0, 0, 1, 0.5),
                (0.1, 1.5, 10.0, 4, 3, 2.0),
            ]
            manager, queries, sim = _run_pipeline(rows, seed=seed)
            return [
                (q.state.value, q.end_time) for q in queries
            ]

        assert run() == run()
