"""Unit tests for policies, thresholds and control types (Table 1)."""

import pytest

from repro.core.policy import (
    AdmissionPolicy,
    ControlType,
    ExecutionPolicy,
    ExecutionRule,
    SchedulingPolicy,
    Threshold,
    ThresholdAction,
    ThresholdKind,
    WorkloadManagementPolicy,
)
from repro.errors import PolicyError


class TestControlTypes:
    def test_three_control_types(self):
        assert len(ControlType) == 3

    def test_admission_control_point_is_arrival(self):
        assert "arrival" in ControlType.ADMISSION_CONTROL.control_point.lower()

    def test_scheduling_control_point_is_pre_execution(self):
        assert (
            "prior to sending"
            in ControlType.SCHEDULING.control_point.lower()
        )

    def test_execution_control_point_is_runtime(self):
        assert (
            "during execution"
            in ControlType.EXECUTION_CONTROL.control_point.lower()
        )

    def test_policies_derive_from_workload_management_policy(self):
        for control in ControlType:
            assert "workload management policy" in control.associated_policy.lower()


class TestThreshold:
    def test_violation(self):
        threshold = Threshold(
            ThresholdKind.ELAPSED_TIME, 10.0, ThresholdAction.STOP_EXECUTION
        )
        assert threshold.violated_by(11.0)
        assert not threshold.violated_by(10.0)
        assert not threshold.violated_by(None)

    def test_negative_limit_rejected(self):
        with pytest.raises(PolicyError):
            Threshold(ThresholdKind.ELAPSED_TIME, -1.0, ThresholdAction.REJECT)

    def test_describe(self):
        threshold = Threshold(
            ThresholdKind.ROWS_RETURNED, 500.0, ThresholdAction.DEMOTE
        )
        text = threshold.describe()
        assert "rows_returned" in text and "demote" in text


class TestExecutionRule:
    def test_applies_to_all_by_default(self):
        rule = ExecutionRule(
            threshold=Threshold(
                ThresholdKind.ELAPSED_TIME, 5.0, ThresholdAction.THROTTLE
            )
        )
        assert rule.applies_to("anything")
        assert rule.applies_to(None)

    def test_workload_scoping(self):
        rule = ExecutionRule(
            threshold=Threshold(
                ThresholdKind.ELAPSED_TIME, 5.0, ThresholdAction.THROTTLE
            ),
            applies_to_workloads=("bi",),
        )
        assert rule.applies_to("bi")
        assert not rule.applies_to("oltp")

    def test_execution_policy_filters_rules(self):
        rule_bi = ExecutionRule(
            threshold=Threshold(
                ThresholdKind.ELAPSED_TIME, 5.0, ThresholdAction.THROTTLE
            ),
            applies_to_workloads=("bi",),
        )
        rule_all = ExecutionRule(
            threshold=Threshold(
                ThresholdKind.CPU_TIME, 50.0, ThresholdAction.STOP_EXECUTION
            )
        )
        policy = ExecutionPolicy(rules=(rule_bi, rule_all))
        assert policy.rules_for("oltp") == [rule_all]
        assert policy.rules_for("bi") == [rule_bi, rule_all]


class TestAdmissionPolicy:
    def test_cost_limit_constant(self):
        policy = AdmissionPolicy(reject_over_cost=100.0)
        assert policy.cost_limit_at(0.0) == 100.0
        assert policy.cost_limit_at(1e6) == 100.0

    def test_period_overrides(self):
        # nights (0-21600s of each day) allow heavier queries
        policy = AdmissionPolicy(
            reject_over_cost=50.0,
            period_overrides=((0.0, 21_600.0, 500.0),),
        )
        assert policy.cost_limit_at(3_600.0) == 500.0        # night
        assert policy.cost_limit_at(50_000.0) == 50.0        # day
        assert policy.cost_limit_at(86_400.0 + 100.0) == 500.0  # next night

    def test_no_limit_when_unset(self):
        assert AdmissionPolicy().cost_limit_at(0.0) is None


class TestSchedulingPolicy:
    def test_workload_limit_lookup(self):
        policy = SchedulingPolicy(per_workload_concurrency=(("bi", 2),))
        assert policy.workload_limit("bi") == 2
        assert policy.workload_limit("oltp") is None


class TestWorkloadManagementPolicy:
    def test_admission_for_falls_back_to_default(self):
        special = AdmissionPolicy(reject_over_cost=10.0)
        policy = WorkloadManagementPolicy(
            default_admission=AdmissionPolicy(reject_over_cost=99.0),
            admission_by_workload=(("bi", special),),
        )
        assert policy.admission_for("bi") is special
        assert policy.admission_for("oltp").reject_over_cost == 99.0
