"""Integration tests for the WorkloadManager pipeline."""

import pytest

from repro.core.interfaces import (
    AdmissionController,
    AdmissionDecision,
    ExecutionController,
    ManagerContext,
)
from repro.core.manager import (
    AcceptAllAdmission,
    FCFSDispatcher,
    TagCharacterizer,
    WorkloadManager,
)
from repro.core.sla import SLASet, response_time_sla
from repro.engine.query import Query, QueryState
from repro.engine.resources import MachineSpec
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError

from tests.conftest import make_query


def _manager(sim, **kwargs):
    kwargs.setdefault(
        "machine", MachineSpec(cpu_capacity=2.0, disk_capacity=2.0, memory_mb=2048)
    )
    return WorkloadManager(sim, **kwargs)


class TestSubmission:
    def test_submit_runs_and_completes(self, sim):
        manager = _manager(sim)
        query = make_query(cpu=1.0, io=0.0, sql="wl:txn")
        manager.submit(query)
        manager.run(horizon=0.0, drain=5.0)
        assert query.state is QueryState.COMPLETED
        assert manager.metrics.stats_for("wl").completions == 1

    def test_tag_characterizer_assigns_workload(self, sim):
        manager = _manager(sim)
        query = make_query(sql="sales:lookup")
        manager.submit(query)
        assert query.workload_name == "sales"

    def test_tag_characterizer_without_tag(self, sim):
        manager = _manager(sim)
        query = make_query(sql="")
        manager.submit(query)
        assert query.workload_name is None

    def test_registered_workload_sets_priority(self, sim):
        manager = _manager(sim)
        manager.register_workload("vip", priority=5)
        query = make_query(sql="vip:q")
        manager.submit(query)
        assert query.priority == 5

    def test_sla_importance_sets_priority(self, sim):
        slas = SLASet([response_time_sla("gold", average=1.0, importance=4)])
        manager = _manager(sim, slas=slas)
        query = make_query(sql="gold:q")
        manager.submit(query)
        assert query.priority == 4

    def test_submit_time_stamped(self, sim):
        manager = _manager(sim)
        sim.schedule_at(3.0, lambda: manager.submit(make_query(cpu=0.1, io=0.0)))
        sim.run_until(3.0)
        assert manager.submitted_count == 1


class TestRejection:
    class _RejectAll(AdmissionController):
        def decide(self, query, context):
            return AdmissionDecision.reject("no")

    def test_rejection_recorded_and_terminal(self, sim):
        manager = _manager(sim, admission=self._RejectAll())
        notified = []
        manager.add_completion_listener(lambda q: notified.append(q.query_id))
        query = make_query(sql="wl:q")
        decision = manager.submit(query)
        assert decision.outcome.value == "reject"
        assert query.state is QueryState.REJECTED
        assert manager.rejected_count == 1
        assert manager.metrics.stats_for("wl").rejections == 1
        assert notified == [query.query_id]
        assert len(manager.query_log) == 1


class TestDelay:
    class _DelayOnce(AdmissionController):
        def __init__(self):
            self.calls = 0

        def decide(self, query, context):
            self.calls += 1
            if self.calls == 1:
                return AdmissionDecision.delay("wait")
            return AdmissionDecision.accept("go")

    def test_delayed_query_retried_on_tick(self, sim):
        admission = self._DelayOnce()
        manager = _manager(sim, admission=admission, control_period=0.5)
        query = make_query(cpu=0.2, io=0.0)
        manager.submit(query)
        assert manager.queued_count == 1
        manager.run(horizon=2.0, drain=5.0)
        assert query.state is QueryState.COMPLETED
        assert admission.calls == 2


class TestDispatch:
    def test_fcfs_mpl_limits_concurrency(self, sim):
        manager = _manager(sim, scheduler=FCFSDispatcher(max_concurrency=2))
        for _ in range(5):
            manager.submit(make_query(cpu=1.0, io=0.0))
        assert manager.running_count == 2
        assert manager.queued_count == 3
        manager.run(horizon=0.0, drain=30.0)
        assert manager.metrics.stats_for(None).completions == 5

    def test_invalid_mpl_rejected(self):
        with pytest.raises(ConfigurationError):
            FCFSDispatcher(max_concurrency=0)

    def test_weight_fn_uses_priority_by_default(self, sim):
        manager = _manager(sim)
        high = make_query(cpu=10.0, io=0.0, priority=4)
        low = make_query(cpu=10.0, io=0.0, priority=1)
        manager.submit(high)
        manager.submit(low)
        assert manager.engine.weight_of(high.query_id) == 4.0
        assert manager.engine.weight_of(low.query_id) == 1.0

    def test_custom_weight_fn(self, sim):
        manager = _manager(sim, weight_fn=lambda q: 7.0)
        query = make_query(cpu=1.0, io=0.0)
        manager.submit(query)
        assert manager.engine.weight_of(query.query_id) == 7.0

    def test_scheduler_remove_supports_kill_in_queue(self, sim):
        manager = _manager(sim, scheduler=FCFSDispatcher(max_concurrency=1))
        first = make_query(cpu=5.0, io=0.0)
        second = make_query(cpu=5.0, io=0.0)
        manager.submit(first)
        manager.submit(second)
        removed = manager.scheduler.remove(second.query_id)
        assert removed is second
        assert manager.queued_count == 0


class TestAbortResubmission:
    def test_wait_die_victims_are_resubmitted_and_finish(self, sim):
        from repro.engine.executor import EngineConfig

        manager = WorkloadManager(
            sim,
            machine=MachineSpec(cpu_capacity=4.0, disk_capacity=4.0, memory_mb=2048),
            engine_config=EngineConfig(hot_set_size=1),
        )
        first = make_query(cpu=5.0, io=0.0, locks=1)
        manager.submit(first)
        sim.run_until(2.6)
        second = make_query(cpu=1.0, io=0.0, locks=1)
        manager.submit(second)
        manager.run(horizon=3.0, drain=30.0)
        assert first.state is QueryState.COMPLETED
        assert second.state is QueryState.COMPLETED
        assert second.restarts >= 1
        assert manager.metrics.stats_for(None).aborts >= 1


class TestControlTick:
    class _Recorder(ExecutionController):
        def __init__(self):
            self.ticks = []

        def control(self, context: ManagerContext) -> None:
            self.ticks.append(context.now)

    def test_controllers_run_each_period(self, sim):
        recorder = self._Recorder()
        manager = _manager(
            sim, execution_controllers=[recorder], control_period=1.0
        )
        manager.run(horizon=3.5, drain=0.0)
        assert recorder.ticks == [1.0, 2.0, 3.0]

    def test_system_samples_collected(self, sim):
        manager = _manager(sim, control_period=1.0)
        manager.submit(make_query(cpu=10.0, io=0.0))
        manager.run(horizon=2.0, drain=0.0)
        sample = manager.metrics.latest_sample()
        assert sample is not None
        assert sample.running == 1
        assert sample.cpu_utilization > 0

    def test_add_execution_controller_later(self, sim):
        manager = _manager(sim)
        recorder = self._Recorder()
        manager.add_execution_controller(recorder)
        manager.run(horizon=1.0, drain=0.0)
        assert recorder.ticks == [1.0]

    def test_shutdown_stops_tick(self, sim):
        manager = _manager(sim, control_period=1.0)
        manager.shutdown()
        sim.run()
        assert sim.now < 1.0


class TestListeners:
    def test_completion_listener_called_for_completed(self, sim):
        manager = _manager(sim)
        done = []
        manager.add_completion_listener(lambda q: done.append(q.state))
        manager.submit(make_query(cpu=0.1, io=0.0))
        manager.run(horizon=0.0, drain=2.0)
        assert done == [QueryState.COMPLETED]

    def test_kill_notifies_listeners(self, sim):
        manager = _manager(sim)
        done = []
        manager.add_completion_listener(lambda q: done.append(q.state))
        query = make_query(cpu=100.0, io=0.0)
        manager.submit(query)
        sim.run_until(1.0)
        manager.engine.kill(query.query_id)
        assert done == [QueryState.KILLED]
        assert manager.metrics.stats_for(None).kills == 1
