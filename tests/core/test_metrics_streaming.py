"""Streaming-metrics behaviour: append-only completion times, cached
statistic views, sliding-window throughput, and sample bisection.

These pin the hot-path rewrite of :mod:`repro.core.metrics`: results
must be *identical* to the naive compute-on-every-read implementation
(the caches only memoize, never approximate), and the append-only
monotonicity contract must be enforced in debug mode.
"""

import bisect

import numpy as np
import pytest

from repro.core.metrics import MetricsCollector, SystemSample
from tests.conftest import make_query


def _finished_query(submit=0.0, start=0.5, end=2.0):
    query = make_query(cpu=1.0, io=1.0, workload="wl")
    query.submit_time = submit
    query.start_time = start
    query.end_time = end
    return query


class TestAppendOnlyCompletionTimes:
    def test_completion_times_stay_sorted_under_monotone_recording(self):
        collector = MetricsCollector()
        times = [0.5, 1.0, 1.0, 3.25, 7.5]
        for now in times:
            collector.record_completion(_finished_query(end=now), now)
        stats = collector.stats_for("wl")
        assert stats.completion_times == sorted(stats.completion_times)
        assert stats.completion_times == times

    def test_non_monotone_completion_asserts_in_debug(self):
        collector = MetricsCollector()
        collector.record_completion(_finished_query(end=5.0), 5.0)
        with pytest.raises(AssertionError, match="backwards"):
            collector.record_completion(_finished_query(end=1.0), 1.0)


class TestCachedStatistics:
    def test_mean_and_percentile_track_appends(self):
        collector = MetricsCollector()
        rng = np.random.default_rng(42)
        now = 0.0
        for _ in range(50):
            now += float(rng.uniform(0.01, 1.0))
            query = _finished_query(submit=now - 1.5, start=now - 1.0, end=now)
            collector.record_completion(query, now)
            stats = collector.stats_for("wl")
            # Every read must equal the from-scratch numpy computation,
            # including reads repeated between appends (cache hits).
            for _ in range(2):
                assert stats.mean_response_time() == float(
                    np.mean(stats.response_times)
                )
                assert stats.percentile_response_time(95.0) == float(
                    np.percentile(stats.response_times, 95.0)
                )
                assert stats.mean_queue_delay() == float(
                    np.mean(stats.queue_delays)
                )

    def test_empty_series_return_none(self):
        collector = MetricsCollector()
        stats = collector.stats_for("empty")
        assert stats.mean_response_time() is None
        assert stats.percentile_response_time(99.0) is None
        assert stats.mean_velocity() is None
        assert stats.mean_queue_delay() is None

    def test_distinct_percentiles_cached_independently(self):
        collector = MetricsCollector()
        for now in (1.0, 2.0, 3.0, 4.0):
            collector.record_completion(_finished_query(end=now), now)
        stats = collector.stats_for("wl")
        p50 = stats.percentile_response_time(50.0)
        p95 = stats.percentile_response_time(95.0)
        assert p50 == float(np.percentile(stats.response_times, 50.0))
        assert p95 == float(np.percentile(stats.response_times, 95.0))
        assert p50 != p95 or len(set(stats.response_times)) == 1


class TestSlidingWindowThroughput:
    def _naive(self, times, window, now):
        if window <= 0 or now <= 0:
            return 0.0
        start = max(0.0, now - window)
        lo = bisect.bisect_right(times, start)
        return (len(times) - lo) / min(window, now)

    def test_matches_bisect_for_monotone_and_regressing_queries(self):
        collector = MetricsCollector()
        stats = collector.stats_for("wl")
        rng = np.random.default_rng(7)
        now = 0.0
        queries = []
        for _ in range(300):
            now += float(rng.uniform(0.0, 0.5))
            if rng.uniform() < 0.6:
                collector.record_completion(_finished_query(end=now), now)
            # interleave reads at several window sizes, including a
            # non-monotone (earlier-than-last) query that must fall
            # back to a fresh bisect
            for window in (1.0, 10.0, 60.0):
                queries.append((window, now))
            if rng.uniform() < 0.15 and now > 5.0:
                queries.append((10.0, now - 4.0))
            while queries:
                window, at = queries.pop()
                assert stats.throughput(window, at) == self._naive(
                    stats.completion_times, window, at
                ), f"window={window} now={at}"

    def test_zero_window_and_zero_now(self):
        collector = MetricsCollector()
        stats = collector.stats_for("wl")
        collector.record_completion(_finished_query(end=1.0), 1.0)
        assert stats.throughput(0.0, 10.0) == 0.0
        assert stats.throughput(10.0, 0.0) == 0.0

    def test_existing_semantics_preserved(self):
        # mirrors tests/core/test_metrics.py: completions at 1,2,3,50
        collector = MetricsCollector()
        for now in (1.0, 2.0, 3.0, 50.0):
            collector.record_completion(_finished_query(end=now), now)
        stats = collector.stats_for("wl")
        assert stats.throughput(window=10.0, now=50.0) == pytest.approx(0.1)


class TestSampleBisection:
    @staticmethod
    def _sample(t):
        return SystemSample(
            time=t,
            cpu_utilization=0.5,
            disk_utilization=0.5,
            memory_pressure=0.0,
            conflict_ratio=0.0,
            running=1,
            queued=0,
        )

    def test_since_filter_matches_linear_scan(self):
        collector = MetricsCollector()
        times = [0.0, 0.5, 1.0, 1.0, 2.5, 4.0]
        for t in times:
            collector.record_sample(self._sample(t))
        for since in (0.0, 0.25, 0.5, 1.0, 3.0, 5.0):
            got = collector.samples(since)
            want = [s for s in collector._samples if s.time >= since]
            assert got == want

    def test_non_monotone_samples_fall_back_to_linear(self):
        collector = MetricsCollector()
        for t in (1.0, 3.0, 2.0, 4.0):  # out of order on purpose
            collector.record_sample(self._sample(t))
        got = collector.samples(2.5)
        want = [s for s in collector._samples if s.time >= 2.5]
        assert got == want
        assert len(got) == 2
