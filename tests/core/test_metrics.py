"""Unit tests for the metrics collector."""

import pytest

from repro.core.metrics import MetricsCollector, SystemSample
from repro.core.sla import ObjectiveKind, SLASet, response_time_sla
from repro.engine.query import QueryState

from tests.conftest import make_query


def _completed(cpu=1.0, io=1.0, submit=0.0, start=0.0, end=2.0, workload="wl"):
    query = make_query(cpu=cpu, io=io, workload=workload)
    query.transition(QueryState.SUBMITTED)
    query.submit_time = submit
    query.transition(QueryState.QUEUED)
    query.transition(QueryState.RUNNING)
    query.start_time = start
    query.transition(QueryState.COMPLETED)
    query.end_time = end
    return query


class TestWorkloadStats:
    def test_completion_records_response_time(self):
        metrics = MetricsCollector()
        metrics.record_completion(_completed(end=2.0), now=2.0)
        stats = metrics.stats_for("wl")
        assert stats.completions == 1
        assert stats.mean_response_time() == pytest.approx(2.0)

    def test_percentiles(self):
        metrics = MetricsCollector()
        for end in range(1, 101):
            metrics.record_completion(_completed(end=float(end)), now=float(end))
        stats = metrics.stats_for("wl")
        assert stats.percentile_response_time(95.0) == pytest.approx(95.05, abs=0.5)

    def test_velocity_recorded(self):
        metrics = MetricsCollector()
        # nominal 1s (max of cpu/io), took 2s -> velocity 0.5
        metrics.record_completion(_completed(cpu=1.0, io=1.0, end=2.0), now=2.0)
        assert metrics.stats_for("wl").mean_velocity() == pytest.approx(0.5)

    def test_queue_delay_recorded(self):
        metrics = MetricsCollector()
        metrics.record_completion(_completed(start=1.5, end=3.0), now=3.0)
        assert metrics.stats_for("wl").mean_queue_delay() == pytest.approx(1.5)

    def test_counters(self):
        metrics = MetricsCollector()
        query = make_query(workload="wl")
        metrics.record_rejection(query)
        metrics.record_kill(query)
        metrics.record_abort(query)
        metrics.record_suspension(query)
        stats = metrics.stats_for("wl")
        assert (stats.rejections, stats.kills, stats.aborts, stats.suspensions) == (
            1,
            1,
            1,
            1,
        )

    def test_unassigned_bucket(self):
        metrics = MetricsCollector()
        metrics.record_rejection(make_query())
        assert metrics.stats_for(None).rejections == 1

    def test_windowed_throughput(self):
        metrics = MetricsCollector()
        for end in (1.0, 2.0, 3.0, 50.0):
            metrics.record_completion(_completed(end=end), now=end)
        stats = metrics.stats_for("wl")
        assert stats.throughput(window=10.0, now=50.0) == pytest.approx(0.1)
        assert stats.overall_throughput(now=50.0) == pytest.approx(4 / 50.0)

    def test_empty_stats_return_none(self):
        stats = MetricsCollector().stats_for("nobody")
        assert stats.mean_response_time() is None
        assert stats.percentile_response_time(95) is None
        assert stats.mean_velocity() is None


class TestSystemSamples:
    def test_samples_accumulate(self):
        metrics = MetricsCollector()
        for t in (1.0, 2.0):
            metrics.record_sample(
                SystemSample(t, 0.5, 0.5, 1.0, 1.0, running=2, queued=0)
            )
        assert len(metrics.samples()) == 2
        assert metrics.latest_sample().time == 2.0
        assert metrics.samples(since=1.5)[0].time == 2.0

    def test_latest_none_when_empty(self):
        assert MetricsCollector().latest_sample() is None


class TestAttainment:
    def test_attainment_fractions(self):
        metrics = MetricsCollector()
        metrics.record_completion(_completed(end=2.0, workload="oltp"), now=2.0)
        slas = SLASet(
            [
                response_time_sla("oltp", average=5.0, velocity=0.9),
            ]
        )
        attainment = metrics.attainment(slas, now=2.0)
        # avg rt met (2 <= 5), velocity missed (0.5 < 0.9)
        assert attainment["oltp"] == pytest.approx(0.5)

    def test_no_data_means_zero_attainment(self):
        metrics = MetricsCollector()
        slas = SLASet([response_time_sla("quiet", average=1.0)])
        attainment = metrics.attainment(slas, now=10.0)
        assert attainment["quiet"] == 0.0

    def test_goalless_sla_not_reported(self):
        from repro.core.sla import ServiceLevelAgreement

        metrics = MetricsCollector()
        slas = SLASet([ServiceLevelAgreement(workload="nogoal")])
        assert metrics.attainment(slas, now=1.0) == {}

    def test_summary_line_readable(self):
        metrics = MetricsCollector()
        metrics.record_completion(_completed(end=2.0, workload="oltp"), now=2.0)
        line = metrics.summary_line("oltp", now=2.0)
        assert "oltp" in line and "rt_avg" in line and "xput" in line

    def test_summary_line_no_data(self):
        line = MetricsCollector().summary_line("ghost", now=1.0)
        assert "n=0" in line
