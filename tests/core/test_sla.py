"""Unit tests for SLAs and performance objectives."""

import pytest

from repro.core.sla import (
    ObjectiveKind,
    PerformanceObjective,
    ServiceLevelAgreement,
    SLASet,
    response_time_sla,
)
from repro.errors import PolicyError


class TestObjectiveValidation:
    def test_target_must_be_positive(self):
        with pytest.raises(PolicyError):
            PerformanceObjective(ObjectiveKind.AVERAGE_RESPONSE_TIME, 0.0)

    def test_percentile_objective_needs_percentile(self):
        with pytest.raises(PolicyError):
            PerformanceObjective(ObjectiveKind.PERCENTILE_RESPONSE_TIME, 5.0)

    def test_percentile_bounds(self):
        with pytest.raises(PolicyError):
            PerformanceObjective(
                ObjectiveKind.PERCENTILE_RESPONSE_TIME, 5.0, percentile=100.0
            )

    def test_non_percentile_objective_rejects_percentile(self):
        with pytest.raises(PolicyError):
            PerformanceObjective(
                ObjectiveKind.THROUGHPUT, 5.0, percentile=95.0
            )

    def test_velocity_cannot_exceed_one(self):
        with pytest.raises(PolicyError):
            PerformanceObjective(ObjectiveKind.VELOCITY, 1.5)


class TestSatisfaction:
    def test_response_time_is_upper_bound(self):
        objective = PerformanceObjective(ObjectiveKind.AVERAGE_RESPONSE_TIME, 2.0)
        assert objective.satisfied_by(1.5) is True
        assert objective.satisfied_by(2.5) is False

    def test_throughput_is_lower_bound(self):
        objective = PerformanceObjective(ObjectiveKind.THROUGHPUT, 10.0)
        assert objective.satisfied_by(12.0) is True
        assert objective.satisfied_by(8.0) is False

    def test_velocity_is_lower_bound(self):
        objective = PerformanceObjective(ObjectiveKind.VELOCITY, 0.8)
        assert objective.satisfied_by(0.9) is True
        assert objective.satisfied_by(0.5) is False

    def test_none_measurement_is_unknown(self):
        objective = PerformanceObjective(ObjectiveKind.VELOCITY, 0.8)
        assert objective.satisfied_by(None) is None

    def test_describe_mentions_kind(self):
        objective = PerformanceObjective(
            ObjectiveKind.PERCENTILE_RESPONSE_TIME, 5.0, percentile=95.0
        )
        assert "p95" in objective.describe()


class TestAgreement:
    def test_evaluate_maps_measurements(self):
        sla = ServiceLevelAgreement(
            workload="oltp",
            objectives=(
                PerformanceObjective(ObjectiveKind.AVERAGE_RESPONSE_TIME, 1.0),
                PerformanceObjective(ObjectiveKind.VELOCITY, 0.8),
            ),
            importance=3,
        )
        results = sla.evaluate(
            {
                ObjectiveKind.AVERAGE_RESPONSE_TIME: 0.5,
                ObjectiveKind.VELOCITY: 0.4,
            }
        )
        assert [r.satisfied for r in results] == [True, False]

    def test_non_goal_workload(self):
        sla = ServiceLevelAgreement(workload="adhoc")
        assert not sla.has_goals
        assert sla.evaluate({}) == []

    def test_importance_must_be_positive(self):
        with pytest.raises(PolicyError):
            ServiceLevelAgreement(workload="x", importance=0)

    def test_result_describe(self):
        sla = response_time_sla("oltp", average=1.0)
        result = sla.evaluate({ObjectiveKind.AVERAGE_RESPONSE_TIME: 2.0})[0]
        assert "MISSED" in result.describe()
        result = sla.evaluate({ObjectiveKind.AVERAGE_RESPONSE_TIME: 0.2})[0]
        assert "MET" in result.describe()


class TestSLASet:
    def test_lookup(self):
        slas = SLASet([response_time_sla("oltp", average=1.0, importance=3)])
        assert slas.get("oltp") is not None
        assert slas.get("other") is None
        assert slas.get(None) is None

    def test_duplicate_rejected(self):
        slas = SLASet([response_time_sla("oltp", average=1.0)])
        with pytest.raises(PolicyError):
            slas.add(response_time_sla("oltp", average=2.0))

    def test_importance_of(self):
        slas = SLASet([response_time_sla("oltp", average=1.0, importance=3)])
        assert slas.importance_of("oltp") == 3
        assert slas.importance_of("missing", default=2) == 2

    def test_iteration_and_len(self):
        slas = SLASet(
            [
                response_time_sla("a", average=1.0),
                response_time_sla("b", p95=5.0),
            ]
        )
        assert len(slas) == 2
        assert {sla.workload for sla in slas} == {"a", "b"}

    def test_builder_composes_objectives(self):
        sla = response_time_sla(
            "oltp", average=0.5, p95=1.0, velocity=0.8, importance=4
        )
        kinds = {objective.kind for objective in sla.objectives}
        assert kinds == {
            ObjectiveKind.AVERAGE_RESPONSE_TIME,
            ObjectiveKind.PERCENTILE_RESPONSE_TIME,
            ObjectiveKind.VELOCITY,
        }
        assert sla.importance == 4
