"""Tests that classification reproduces the paper's own conclusions.

The expected classifications below are taken verbatim from the paper's
§4.1.4 (commercial systems) and §4.2.5/Table 5 (research techniques).
"""

import importlib

import pytest

from repro.core.classify import (
    classify_component,
    classify_descriptor,
    classify_features,
    major_classes_of,
    suspension_superclass,
)
from repro.core.registry import (
    ADMISSION_APPROACHES,
    COMMERCIAL_SYSTEMS,
    EXECUTION_APPROACHES,
    PREDICTION_ADMISSION,
    RESEARCH_TECHNIQUES,
    Feature,
    all_descriptors,
)
from repro.core.taxonomy import TechniqueClass

T = TechniqueClass


def _by_name(descriptors, name):
    for descriptor in descriptors:
        if descriptor.name == name:
            return descriptor
    raise KeyError(name)


class TestTable2Classification:
    @pytest.mark.parametrize(
        "name",
        ["Query Cost", "MPLs", "Conflict Ratio", "Transaction Throughput", "Indicators"],
    )
    def test_every_admission_row_is_threshold_based(self, name):
        descriptor = _by_name(ADMISSION_APPROACHES, name)
        assert classify_descriptor(descriptor) == [T.THRESHOLD_BASED_ADMISSION]

    def test_prediction_admission_classifies_as_prediction_based(self):
        assert classify_descriptor(PREDICTION_ADMISSION) == [
            T.PREDICTION_BASED_ADMISSION
        ]

    def test_table2_threshold_bases_match_paper(self):
        bases = {d.name: d.threshold_basis for d in ADMISSION_APPROACHES}
        assert bases == {
            "Query Cost": "System Parameter",
            "MPLs": "System Parameter",
            "Conflict Ratio": "Performance Metric",
            "Transaction Throughput": "Performance Metric",
            "Indicators": "Monitor Metrics",
        }


class TestTable3Classification:
    def test_priority_aging_is_reprioritization(self):
        descriptor = _by_name(EXECUTION_APPROACHES, "Priority Aging")
        assert T.QUERY_REPRIORITIZATION in classify_descriptor(descriptor)

    def test_policy_driven_allocation_is_reprioritization(self):
        descriptor = _by_name(
            EXECUTION_APPROACHES, "Policy Driven Resource Allocation"
        )
        assert classify_descriptor(descriptor) == [T.QUERY_REPRIORITIZATION]

    def test_query_kill_is_cancellation(self):
        descriptor = _by_name(EXECUTION_APPROACHES, "Query Kill")
        assert classify_descriptor(descriptor) == [T.QUERY_CANCELLATION]

    def test_stop_and_restart_is_suspend_and_resume(self):
        descriptor = _by_name(EXECUTION_APPROACHES, "Query Stop-and-Restart")
        assert classify_descriptor(descriptor) == [T.SUSPEND_AND_RESUME]

    def test_throttling_is_request_throttling(self):
        descriptor = _by_name(EXECUTION_APPROACHES, "Request Throttling")
        assert classify_descriptor(descriptor) == [T.REQUEST_THROTTLING]

    def test_suspension_rollup(self):
        rolled = suspension_superclass(
            [T.REQUEST_THROTTLING, T.SUSPEND_AND_RESUME, T.QUERY_CANCELLATION]
        )
        assert rolled == [T.REQUEST_SUSPENSION, T.QUERY_CANCELLATION]


class TestTable4Classification:
    """Paper §4.1.4's identified techniques per system."""

    def test_db2_major_classes(self):
        descriptor = _by_name(COMMERCIAL_SYSTEMS, "IBM DB2 Workload Manager")
        assert major_classes_of(descriptor) == [
            T.WORKLOAD_CHARACTERIZATION,
            T.ADMISSION_CONTROL,
            T.EXECUTION_CONTROL,
        ]

    def test_db2_leaf_classes(self):
        descriptor = _by_name(COMMERCIAL_SYSTEMS, "IBM DB2 Workload Manager")
        leaves = classify_descriptor(descriptor)
        assert T.STATIC_CHARACTERIZATION in leaves
        assert T.THRESHOLD_BASED_ADMISSION in leaves
        assert T.QUERY_REPRIORITIZATION in leaves
        assert T.QUERY_CANCELLATION in leaves

    def test_sqlserver_leaf_classes(self):
        descriptor = _by_name(
            COMMERCIAL_SYSTEMS, "Microsoft SQL Server Resource/Query Governor"
        )
        leaves = classify_descriptor(descriptor)
        assert T.STATIC_CHARACTERIZATION in leaves
        assert T.THRESHOLD_BASED_ADMISSION in leaves
        assert T.QUERY_REPRIORITIZATION in leaves  # dynamic resource realloc
        assert T.QUERY_CANCELLATION not in leaves

    def test_teradata_leaf_classes(self):
        descriptor = _by_name(
            COMMERCIAL_SYSTEMS, "Teradata Active System Management"
        )
        leaves = classify_descriptor(descriptor)
        assert T.STATIC_CHARACTERIZATION in leaves
        assert T.THRESHOLD_BASED_ADMISSION in leaves
        assert T.QUERY_CANCELLATION in leaves

    def test_no_commercial_system_implements_scheduling(self):
        """§4.1.4: 'none of the systems implements any scheduling
        technique' — the key negative finding of Table 4."""
        for descriptor in COMMERCIAL_SYSTEMS:
            assert T.SCHEDULING not in major_classes_of(descriptor)


class TestTable5Classification:
    """Paper §4.2.5's classifications, row by row."""

    def test_niu_is_admission_and_scheduling(self):
        descriptor = _by_name(RESEARCH_TECHNIQUES, "Niu et al.")
        majors = major_classes_of(descriptor)
        assert T.ADMISSION_CONTROL in majors
        assert T.SCHEDULING in majors

    @pytest.mark.parametrize("name", ["Parekh et al.", "Powley et al."])
    def test_throttling_techniques(self, name):
        descriptor = _by_name(RESEARCH_TECHNIQUES, name)
        assert classify_descriptor(descriptor) == [T.REQUEST_THROTTLING]

    def test_chandramouli_is_suspend_and_resume(self):
        descriptor = _by_name(RESEARCH_TECHNIQUES, "Chandramouli et al.")
        assert classify_descriptor(descriptor) == [T.SUSPEND_AND_RESUME]

    def test_krompass_is_cancellation_and_reprioritization(self):
        descriptor = _by_name(RESEARCH_TECHNIQUES, "Krompass et al.")
        leaves = classify_descriptor(descriptor)
        assert T.QUERY_CANCELLATION in leaves
        assert T.QUERY_REPRIORITIZATION in leaves


class TestRegistryIntegrity:
    def test_every_descriptor_classifies_somewhere(self):
        for descriptor in all_descriptors():
            assert classify_descriptor(descriptor), descriptor.name

    def test_every_implementation_module_imports(self):
        """DESIGN.md inventory is machine-checked here."""
        for descriptor in all_descriptors():
            assert descriptor.implementation, descriptor.name
            module = importlib.import_module(descriptor.implementation)
            assert module is not None

    def test_descriptors_have_citations_and_mechanisms(self):
        for descriptor in all_descriptors():
            assert descriptor.citation.startswith("[")
            assert len(descriptor.mechanism) > 20

    def test_feature_values_unique(self):
        values = [feature.value for feature in Feature]
        assert len(values) == len(set(values))


class TestComponentClassification:
    """The taxonomy applied to this library's own running code."""

    def test_threshold_admission_component(self):
        from repro.admission.threshold import ThresholdAdmission

        assert classify_component(ThresholdAdmission()) == [
            T.THRESHOLD_BASED_ADMISSION
        ]

    def test_throttling_component(self):
        from repro.execution.throttling import UtilityThrottlingController

        assert classify_component(UtilityThrottlingController()) == [
            T.REQUEST_THROTTLING
        ]

    def test_suspend_resume_component(self):
        from repro.execution.suspend_resume import SuspendResumeController

        assert classify_component(SuspendResumeController()) == [
            T.SUSPEND_AND_RESUME
        ]

    def test_static_characterizer_component(self):
        from repro.characterization.static import StaticCharacterizer

        assert classify_component(StaticCharacterizer([])) == [
            T.STATIC_CHARACTERIZATION
        ]

    def test_dynamic_characterizer_component(self):
        from repro.characterization.dynamic import DynamicCharacterizer

        assert classify_component(DynamicCharacterizer()) == [
            T.DYNAMIC_CHARACTERIZATION
        ]

    def test_restructuring_component(self):
        from repro.core.manager import FCFSDispatcher
        from repro.scheduling.restructuring import RestructuringScheduler

        component = RestructuringScheduler(FCFSDispatcher())
        assert classify_component(component) == [T.QUERY_RESTRUCTURING]

    def test_unannotated_object_yields_nothing(self):
        assert classify_component(object()) == []

    def test_empty_features_classify_to_nothing(self):
        assert classify_features(set()) == []
