"""Tests for system capacity estimation (§5.2 extension)."""

import pytest

from repro.core.capacity import (
    CapacityAwareAdmission,
    CapacityEstimator,
    SystemState,
)
from repro.core.interfaces import AdmissionOutcome
from repro.core.manager import WorkloadManager
from repro.engine.resources import MachineSpec
from repro.engine.simulator import Simulator

from tests.conftest import make_query


def _manager(sim, admission=None, mem=1000.0):
    return WorkloadManager(
        sim,
        machine=MachineSpec(cpu_capacity=2.0, disk_capacity=2.0, memory_mb=mem),
        admission=admission,
    )


class TestEstimator:
    def test_idle_system_is_underloaded(self, sim):
        manager = _manager(sim)
        estimate = CapacityEstimator().estimate(manager.engine)
        assert estimate.state is SystemState.UNDERLOADED
        assert estimate.admits_new_work
        assert estimate.memory_headroom_mb == pytest.approx(1000.0)

    def test_busy_system_is_normal(self, sim):
        manager = _manager(sim)
        for _ in range(4):
            manager.submit(make_query(cpu=10.0, io=0.0, mem=100.0))
        estimate = CapacityEstimator().estimate(manager.engine)
        assert estimate.state is SystemState.NORMAL
        assert estimate.bottleneck_utilization > 0.5

    def test_memory_oversubscription_is_overloaded(self, sim):
        manager = _manager(sim)
        for _ in range(3):
            manager.submit(make_query(cpu=10.0, io=0.0, mem=500.0))
        estimate = CapacityEstimator().estimate(manager.engine)
        assert estimate.state is SystemState.OVERLOADED
        assert not estimate.admits_new_work
        assert estimate.memory_headroom_mb < 0

    def test_conflict_overload(self, sim, monkeypatch):
        manager = _manager(sim)
        monkeypatch.setattr(manager.engine, "conflict_ratio", lambda: 3.0)
        estimate = CapacityEstimator().estimate(manager.engine)
        assert estimate.state is SystemState.OVERLOADED

    def test_fits_accounts_for_estimated_memory(self, sim):
        manager = _manager(sim)
        manager.submit(make_query(cpu=10.0, io=0.0, mem=800.0))
        estimator = CapacityEstimator(overload_memory=1.0)
        small = make_query(cpu=1.0, io=0.0, mem=100.0)
        huge = make_query(cpu=1.0, io=0.0, mem=800.0)
        assert estimator.fits(manager.engine, small)
        assert not estimator.fits(manager.engine, huge)

    def test_fits_uses_estimates_not_true_cost(self, sim):
        manager = _manager(sim)
        estimator = CapacityEstimator(overload_memory=1.0)
        liar = make_query(cpu=1.0, io=0.0, mem=100.0)
        # optimizer thinks it needs 5GB
        from repro.engine.query import CostVector

        liar.estimated_cost = CostVector(1.0, 0.0, 5000.0)
        assert not estimator.fits(manager.engine, liar)

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityEstimator(overload_memory=0.0)


class TestCapacityAwareAdmission:
    def test_accepts_when_fitting(self, sim):
        admission = CapacityAwareAdmission()
        manager = _manager(sim, admission=admission)
        decision = admission.decide(
            make_query(cpu=1.0, io=0.0, mem=100.0, priority=1), manager.context
        )
        assert decision.outcome is AdmissionOutcome.ACCEPT

    def test_delays_low_priority_when_full(self, sim):
        admission = CapacityAwareAdmission(
            estimator=CapacityEstimator(overload_memory=1.0)
        )
        manager = _manager(sim, admission=admission)
        manager.engine.buffer_pool.reserve("hog", 950.0)
        decision = admission.decide(
            make_query(cpu=1.0, io=0.0, mem=200.0, priority=1), manager.context
        )
        assert decision.outcome is AdmissionOutcome.DELAY
        assert admission.delays == 1

    def test_protected_priority_always_admitted(self, sim):
        admission = CapacityAwareAdmission(protected_priority=3)
        manager = _manager(sim, admission=admission)
        manager.engine.buffer_pool.reserve("hog", 10_000.0)
        decision = admission.decide(
            make_query(cpu=1.0, io=0.0, mem=500.0, priority=3), manager.context
        )
        assert decision.outcome is AdmissionOutcome.ACCEPT

    def test_end_to_end_no_knob_tuning(self, sim):
        """The §5.2 pitch: protection without hand-set thresholds."""
        admission = CapacityAwareAdmission()
        manager = _manager(sim, admission=admission, mem=500.0)
        for index in range(10):
            query = make_query(cpu=2.0, io=1.0, mem=300.0, priority=1, sql="wl:q")
            sim.schedule_at(index * 0.2, lambda q=query: manager.submit(q))
        manager.run(horizon=3.0, drain=120.0)
        stats = manager.metrics.stats_for("wl")
        assert stats.completions == 10
        # memory never exceeded ~2 queries' worth concurrently: check
        # via the recorded samples
        for sample in manager.metrics.samples():
            assert sample.memory_pressure <= 1.3
