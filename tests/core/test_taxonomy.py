"""Structural tests for the taxonomy of Figure 1."""

import pytest

from repro.core.taxonomy import (
    TAXONOMY,
    TaxonomyNode,
    TechniqueClass,
    build_taxonomy,
    major_classes,
    node_for,
    render_tree,
)


class TestStructure:
    def test_root_is_workload_management_techniques(self):
        assert TAXONOMY.technique_class is TechniqueClass.ROOT

    def test_four_major_classes_in_paper_order(self):
        names = [node.technique_class for node in major_classes()]
        assert names == [
            TechniqueClass.WORKLOAD_CHARACTERIZATION,
            TechniqueClass.ADMISSION_CONTROL,
            TechniqueClass.SCHEDULING,
            TechniqueClass.EXECUTION_CONTROL,
        ]

    def test_characterization_subclasses(self):
        node = node_for(TechniqueClass.WORKLOAD_CHARACTERIZATION)
        children = {child.technique_class for child in node.children}
        assert children == {
            TechniqueClass.STATIC_CHARACTERIZATION,
            TechniqueClass.DYNAMIC_CHARACTERIZATION,
        }

    def test_admission_subclasses(self):
        node = node_for(TechniqueClass.ADMISSION_CONTROL)
        children = {child.technique_class for child in node.children}
        assert children == {
            TechniqueClass.THRESHOLD_BASED_ADMISSION,
            TechniqueClass.PREDICTION_BASED_ADMISSION,
        }

    def test_scheduling_subclasses(self):
        node = node_for(TechniqueClass.SCHEDULING)
        children = {child.technique_class for child in node.children}
        assert children == {
            TechniqueClass.QUEUE_MANAGEMENT,
            TechniqueClass.QUERY_RESTRUCTURING,
        }

    def test_execution_control_has_three_subclasses(self):
        node = node_for(TechniqueClass.EXECUTION_CONTROL)
        children = {child.technique_class for child in node.children}
        assert children == {
            TechniqueClass.QUERY_REPRIORITIZATION,
            TechniqueClass.QUERY_CANCELLATION,
            TechniqueClass.REQUEST_SUSPENSION,
        }

    def test_suspension_splits_into_throttling_and_suspend_resume(self):
        node = node_for(TechniqueClass.REQUEST_SUSPENSION)
        children = {child.technique_class for child in node.children}
        assert children == {
            TechniqueClass.REQUEST_THROTTLING,
            TechniqueClass.SUSPEND_AND_RESUME,
        }

    def test_every_enum_member_appears_exactly_once(self):
        seen = [node.technique_class for node in TAXONOMY.walk()]
        assert len(seen) == len(set(seen))
        assert set(seen) == set(TechniqueClass)

    def test_every_node_has_description_and_section(self):
        for node in TAXONOMY.walk():
            assert node.description
            assert node.paper_section.startswith("3")


class TestNavigation:
    def test_find(self):
        node = TAXONOMY.find(TechniqueClass.REQUEST_THROTTLING)
        assert node is not None
        assert node.is_leaf

    def test_find_missing_from_subtree(self):
        scheduling = node_for(TechniqueClass.SCHEDULING)
        assert scheduling.find(TechniqueClass.QUERY_CANCELLATION) is None

    def test_path_to_leaf(self):
        path = TAXONOMY.path_to(TechniqueClass.SUSPEND_AND_RESUME)
        assert [node.technique_class for node in path] == [
            TechniqueClass.ROOT,
            TechniqueClass.EXECUTION_CONTROL,
            TechniqueClass.REQUEST_SUSPENSION,
            TechniqueClass.SUSPEND_AND_RESUME,
        ]

    def test_depths(self):
        assert TAXONOMY.depth_of(TechniqueClass.ROOT) == 0
        assert TAXONOMY.depth_of(TechniqueClass.SCHEDULING) == 1
        assert TAXONOMY.depth_of(TechniqueClass.QUEUE_MANAGEMENT) == 2
        assert TAXONOMY.depth_of(TechniqueClass.REQUEST_THROTTLING) == 3

    def test_leaves(self):
        leaves = {node.technique_class for node in TAXONOMY.leaves()}
        assert TechniqueClass.STATIC_CHARACTERIZATION in leaves
        assert TechniqueClass.EXECUTION_CONTROL not in leaves
        assert TechniqueClass.REQUEST_SUSPENSION not in leaves
        assert len(leaves) == 10

    def test_build_taxonomy_fresh_copy_equal_structure(self):
        fresh = build_taxonomy()
        assert [n.technique_class for n in fresh.walk()] == [
            n.technique_class for n in TAXONOMY.walk()
        ]


class TestRendering:
    def test_render_contains_every_class_name(self):
        text = render_tree()
        for technique_class in TechniqueClass:
            assert technique_class.display_name in text

    def test_render_tree_shape(self):
        lines = render_tree().splitlines()
        assert lines[0] == "Workload Management Techniques"
        assert lines[1].startswith("├── ")
        assert lines[-1].strip().endswith("Query Suspend-and-Resume")
