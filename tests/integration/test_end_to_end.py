"""Scenario-level integration tests across the whole library."""

import pytest

from repro import (
    MachineSpec,
    Simulator,
    SLASet,
    WorkloadManager,
    mixed_scenario,
    response_time_sla,
)
from repro.admission.base import PriorityExemptAdmission
from repro.admission.threshold import ThresholdAdmission
from repro.core.manager import FCFSDispatcher
from repro.core.policy import AdmissionPolicy
from repro.engine.query import QueryState
from repro.execution.throttling import QueryThrottlingController
from repro.scheduling.queues import MultiQueueScheduler


def _machine():
    return MachineSpec(cpu_capacity=4.0, disk_capacity=4.0, memory_mb=4096.0)


def run_mix(seed=42, horizon=60.0, manager_kwargs=None):
    sim = Simulator(seed=seed)
    manager = WorkloadManager(sim, machine=_machine(), **(manager_kwargs or {}))
    scenario = mixed_scenario(horizon=horizon, oltp_rate=8.0, bi_rate=0.1)
    generator = scenario.build(sim, manager.submit, sessions=manager.sessions)
    manager.add_completion_listener(generator.notify_done)
    manager.run(horizon, drain=horizon)
    return sim, manager, generator


class TestUncontrolledBaseline:
    def test_mix_completes_and_is_deterministic(self):
        _, first, _ = run_mix(seed=5)
        _, second, _ = run_mix(seed=5)
        stats_a = first.metrics.stats_for("oltp")
        stats_b = second.metrics.stats_for("oltp")
        assert stats_a.completions == stats_b.completions
        assert stats_a.mean_response_time() == stats_b.mean_response_time()
        assert stats_a.completions > 200

    def test_different_seeds_differ(self):
        _, first, _ = run_mix(seed=1)
        _, second, _ = run_mix(seed=2)
        assert (
            first.metrics.stats_for("oltp").mean_response_time()
            != second.metrics.stats_for("oltp").mean_response_time()
        )

    def test_all_workloads_present(self):
        sim, manager, generator = run_mix()
        workloads = set(manager.metrics.workloads())
        assert {"oltp", "reports"} <= workloads
        # BI arrivals are rare and heavy; some may still be running at
        # the end of the window, but they were generated and admitted
        generated_tags = {"oltp", "bi", "reports"}
        seen = {r.workload for r in manager.query_log} | {
            q.workload_name for q in manager.engine.running_queries()
        }
        assert "bi" in seen or manager.queued_count > 0


class TestManagedStack:
    def test_full_stack_runs(self):
        """Admission + multi-queue scheduling + throttling together."""
        admission = PriorityExemptAdmission(
            ThresholdAdmission(AdmissionPolicy(reject_over_cost=500.0)),
            exempt_priority=3,
        )
        scheduler = MultiQueueScheduler(
            global_mpl=32, per_workload_mpl={"bi": 2, "reports": 4}
        )
        throttler = QueryThrottlingController(
            velocity_goal=0.7, large_query_work=20.0
        )
        slas = SLASet(
            [
                response_time_sla("oltp", average=0.5, importance=3),
                response_time_sla("reports", average=120.0, importance=2),
            ]
        )
        _, manager, _ = run_mix(
            manager_kwargs=dict(
                admission=admission,
                scheduler=scheduler,
                execution_controllers=[throttler],
                slas=slas,
            )
        )
        oltp = manager.metrics.stats_for("oltp")
        assert oltp.completions > 200
        assert oltp.mean_response_time() < 0.5

    def test_managed_beats_unmanaged_for_oltp(self):
        _, unmanaged, _ = run_mix(seed=9)
        scheduler = MultiQueueScheduler(per_workload_mpl={"bi": 1, "reports": 2})
        _, managed, _ = run_mix(
            seed=9, manager_kwargs=dict(scheduler=scheduler)
        )
        unmanaged_p95 = unmanaged.metrics.stats_for("oltp").percentile_response_time(95)
        managed_p95 = managed.metrics.stats_for("oltp").percentile_response_time(95)
        assert managed_p95 <= unmanaged_p95

    def test_query_log_covers_submissions(self):
        _, manager, generator = run_mix()
        # every generated query eventually reached a terminal state or
        # is still queued/running at the end of the window
        logged = len(manager.query_log)
        outstanding = manager.outstanding_work()
        assert logged + outstanding >= generator.generated_count - 5


class TestResourceAccounting:
    def test_no_resource_leaks_after_drain(self):
        _, manager, _ = run_mix()
        if manager.running_count == 0:
            assert manager.engine.buffer_pool.committed_mb == pytest.approx(0.0)
            assert manager.engine.lock_manager.locks_held() == 0

    def test_velocity_bounded(self):
        _, manager, _ = run_mix()
        for workload in manager.metrics.workloads():
            stats = manager.metrics.stats_for(workload)
            for velocity in stats.velocities:
                assert 0.0 <= velocity <= 1.0
