"""Unit tests for prediction-based admission control."""

import pytest

from repro.admission.prediction import (
    PredictionBasedAdmission,
    QueryFeatureExtractor,
    RuntimePredictor,
)
from repro.core.interfaces import AdmissionOutcome
from repro.core.manager import WorkloadManager
from repro.engine.query import QueryState
from repro.engine.resources import MachineSpec
from repro.engine.simulator import Simulator
from repro.workloads.traces import QueryLog

from tests.conftest import make_query


def _log_with(queries):
    log = QueryLog()
    for query in queries:
        query.transition(QueryState.SUBMITTED)
        query.submit_time = 0.0
        query.transition(QueryState.QUEUED)
        query.transition(QueryState.RUNNING)
        query.start_time = 0.0
        query.transition(QueryState.COMPLETED)
        query.end_time = query.true_cost.nominal_duration
        log.record_query(query)
    return log


def _training_queries():
    queries = []
    for index in range(80):
        # short OLTP: tag correlates with true cost
        q = make_query(cpu=0.05, io=0.05, est_cpu=0.05, est_io=0.05, sql="oltp:t")
        q.workload_name = "oltp"
        queries.append(q)
    for index in range(80):
        q = make_query(cpu=40.0, io=40.0, est_cpu=40.0, est_io=40.0, sql="bi:q")
        q.workload_name = "bi"
        queries.append(q)
    return queries


class TestFeatureExtractor:
    def test_vocabulary_one_hot(self):
        extractor = QueryFeatureExtractor()
        extractor.fit_vocabulary(["a", "b", "a", None])
        assert extractor.n_features == 5 + 3  # a, b, <unknown>
        query = make_query()
        query.workload_name = "b"
        row = extractor.features_for_query(query)
        assert row[5:] == [0.0, 1.0, 0.0]

    def test_unknown_workload_encodes_to_zeros(self):
        extractor = QueryFeatureExtractor()
        extractor.fit_vocabulary(["a"])
        query = make_query()
        query.workload_name = "zzz"
        row = extractor.features_for_query(query)
        assert row[5:] == [0.0]


class TestRuntimePredictor:
    @pytest.mark.parametrize("method", ["tree", "statistical"])
    def test_learns_workload_cost_separation(self, method):
        predictor = RuntimePredictor(method=method)
        trained = predictor.fit_from_log(_log_with(_training_queries()))
        assert trained == 160
        small = make_query(cpu=0.05, io=0.05)
        small.workload_name = "oltp"
        big = make_query(cpu=40.0, io=40.0)
        big.workload_name = "bi"
        assert predictor.predict_total_work(small) < 1.0
        assert predictor.predict_total_work(big) > 10.0

    def test_untrained_falls_back_to_estimate(self):
        predictor = RuntimePredictor()
        query = make_query(cpu=3.0, io=2.0)
        assert predictor.predict_total_work(query) == pytest.approx(5.0)

    def test_tree_corrects_biased_estimates(self):
        # optimizer underestimates BI by 10x; the tag still identifies it
        queries = []
        for _ in range(60):
            q = make_query(cpu=40.0, io=40.0, est_cpu=4.0, est_io=4.0, sql="bi:q")
            q.workload_name = "bi"
            queries.append(q)
        predictor = RuntimePredictor(method="tree")
        predictor.fit_from_log(_log_with(queries))
        probe = make_query(cpu=40.0, io=40.0, est_cpu=4.0, est_io=4.0)
        probe.workload_name = "bi"
        predicted = predictor.predict_total_work(probe)
        assert predicted > 40.0  # learned the truth, not the estimate

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            RuntimePredictor(method="magic")

    def test_fit_empty_log_is_noop(self):
        predictor = RuntimePredictor()
        assert predictor.fit_from_log(QueryLog()) == 0
        assert not predictor.trained


class TestPredictionAdmission:
    def test_untrained_uses_estimates(self, sim):
        admission = PredictionBasedAdmission(work_limit=10.0, min_training=5)
        manager = WorkloadManager(
            sim,
            machine=MachineSpec(cpu_capacity=4, disk_capacity=4, memory_mb=4096),
            admission=admission,
        )
        decision = admission.decide(make_query(cpu=50.0, io=0.0), manager.context)
        assert decision.outcome is AdmissionOutcome.REJECT
        assert admission.fallback_decisions == 1

    def test_trains_after_min_completions_and_rejects_big(self, sim):
        admission = PredictionBasedAdmission(
            work_limit=10.0, min_training=10, retrain_interval=1000
        )
        manager = WorkloadManager(
            sim,
            machine=MachineSpec(cpu_capacity=8, disk_capacity=8, memory_mb=4096),
            admission=admission,
        )
        # warm-up: cheap oltp queries whose estimates are fine
        for _ in range(15):
            manager.submit(make_query(cpu=0.05, io=0.0, sql="oltp:t"))
        manager.run(horizon=1.0, drain=10.0)
        assert admission.predictor.trained
        # a BI query the optimizer wildly underestimates but whose tag
        # is unseen -> prediction falls back to low values; same-tag
        # heavy history is the realistic case, covered above.  Here we
        # just assert the gate now uses predictions without crashing.
        decision = admission.decide(
            make_query(cpu=0.05, io=0.0, sql="oltp:t", workload="oltp"),
            manager.context,
        )
        assert decision.outcome is AdmissionOutcome.ACCEPT

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            PredictionBasedAdmission(work_limit=0.0)
